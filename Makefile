PYTHON ?= python
RUN := PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON)

# Tier-1 verification: the whole test + benchmark suite, collection included.
verify:
	$(RUN) -m pytest -x -q

# Benchmark tables only (the reproduction artefacts).
bench:
	$(RUN) -m pytest benchmarks/ --benchmark-only -s

# Docs verification: README and docs/ code blocks must parse and run.
verify-docs:
	$(RUN) -m pytest tests/test_docs.py -q

# Benchmark smoke: the whole benchmark suite in quick mode (small sizes, no
# --benchmark-only timing assertions) — proves every experiment still runs.
verify-bench:
	$(RUN) -m pytest benchmarks/ -q

# Evaluator benchmark: replay fast path vs legacy vs seed snapshot, the
# batched sweep vs single fast replay, per-point latency and serial-vs-pool
# identity; writes BENCH_eval.json.
bench-eval:
	$(RUN) -m pytest benchmarks/test_eval_speed.py -q -s

# Same, at dedicated problem sizes with the speedup targets asserted — the
# run that produces the BENCH_eval.json committed to the repository.
bench-eval-full:
	BENCH_EVAL_FULL=1 $(RUN) -m pytest benchmarks/test_eval_speed.py -q -s

# Store benchmark: jsonl vs binary append/load/query, O(tail) refresh and
# compaction shrink; writes BENCH_store.json (quick mode: 10^4 entries).
bench-store:
	$(RUN) -m pytest benchmarks/test_store_scale.py -q -s

# Same, at the dedicated 10^5-entry size with the load-speedup target
# asserted — the run that produces the BENCH_store.json committed to the
# repository.
bench-store-full:
	BENCH_STORE_FULL=1 $(RUN) -m pytest benchmarks/test_store_scale.py -q -s

# Streaming benchmark: bounded-memory ingestion throughput, the
# peak-memory-vs-segment-size bound, and segmented-vs-oneshot identity;
# writes BENCH_stream.json (quick mode: 10^5 events).
bench-stream:
	$(RUN) -m pytest benchmarks/test_stream_scale.py -q -s

# Same, at the dedicated 10^6-event log size — the run that produces the
# BENCH_stream.json committed to the repository.
bench-stream-full:
	BENCH_STREAM_FULL=1 $(RUN) -m pytest benchmarks/test_stream_scale.py -q -s

# Search-quality benchmark: the surrogate portfolio's hypervolume-vs-
# evaluations curves against the exhaustive ground truth, with hard gates
# (every strategy >= 95% HV at a 5% budget, portfolio best at 1%);
# writes BENCH_search.json.
bench-search:
	$(RUN) -m pytest benchmarks/test_search_quality.py -q -s

# Same, additionally grinding the real VTC decoder trace through the
# protocol (full exhaustive sweep of its 6480-point space).
bench-search-full:
	BENCH_SEARCH_FULL=1 $(RUN) -m pytest benchmarks/test_search_quality.py -q -s

# Streaming verification: the segmented replay and the windowed analysis
# must be byte-identical to the one-shot batch path (the property tests),
# and a CLI `dmexplore windows` artefact must carry the same records as
# the plain `dmexplore explore` artefact for the same experiment (the two
# may differ only in the database name and the cache counters — windowed
# replay profiles every point exactly once, so there is no memo section).
STREAM_DIR := .stream-demo
verify-stream:
	$(RUN) -m pytest tests/test_stream.py -q
	rm -rf $(STREAM_DIR) && mkdir -p $(STREAM_DIR)
	$(RUN) -m repro explore --workload diurnal --space smoke --seed 1 \
	  --out $(STREAM_DIR)/explore.json
	$(RUN) -m repro windows --workload diurnal --space smoke --seed 1 \
	  --window-events 500 --out $(STREAM_DIR)/windows.json
	$(RUN) -c 'import json; e = json.load(open("$(STREAM_DIR)/explore.json")); w = json.load(open("$(STREAM_DIR)/windows.json")); s = w.pop("windows"); assert s["count"] >= 1 and s["windows"]; e.pop("cache", None); w["name"] = e["name"]; assert w == e, "windowed records differ from the plain sweep"; print("windowed exploration carries the plain sweep records (and a windows section)")'
	rm -rf $(STREAM_DIR)

# Store-format verification: the same exploration run against a jsonl and a
# binary store must produce byte-identical artefacts, cold and warm, across
# a conversion round trip and across compaction.  CI runs the same flow.
STORE_DIR := .store-demo
verify-store:
	rm -rf $(STORE_DIR) && mkdir -p $(STORE_DIR)
	$(RUN) -m repro explore --workload uniform --space smoke --seed 1 \
	  --store $(STORE_DIR)/store.jsonl --out $(STORE_DIR)/jsonl-cold.json
	$(RUN) -m repro explore --workload uniform --space smoke --seed 1 \
	  --store $(STORE_DIR)/store.bin --store-format binary \
	  --out $(STORE_DIR)/binary-cold.json
	cmp $(STORE_DIR)/jsonl-cold.json $(STORE_DIR)/binary-cold.json
	$(RUN) -m repro explore --workload uniform --space smoke --seed 1 \
	  --store $(STORE_DIR)/store.jsonl --out $(STORE_DIR)/jsonl-warm.json
	$(RUN) -m repro explore --workload uniform --space smoke --seed 1 \
	  --store $(STORE_DIR)/store.bin --store-format binary \
	  --out $(STORE_DIR)/binary-warm.json
	cmp $(STORE_DIR)/jsonl-warm.json $(STORE_DIR)/binary-warm.json
	$(RUN) -m repro store convert $(STORE_DIR)/store.jsonl \
	  $(STORE_DIR)/converted.bin --format binary
	$(RUN) -m repro store convert $(STORE_DIR)/converted.bin \
	  $(STORE_DIR)/roundtrip.jsonl --format jsonl
	cmp $(STORE_DIR)/store.jsonl $(STORE_DIR)/roundtrip.jsonl
	$(RUN) -m repro store compact $(STORE_DIR)/store.bin
	$(RUN) -m repro store info $(STORE_DIR)/store.bin
	$(RUN) -m repro explore --workload uniform --space smoke --seed 1 \
	  --store $(STORE_DIR)/store.bin --store-format binary \
	  --out $(STORE_DIR)/binary-compacted.json
	cmp $(STORE_DIR)/binary-warm.json $(STORE_DIR)/binary-compacted.json
	@echo "jsonl and binary stores produce byte-identical artefacts, across conversion and compaction"
	rm -rf $(STORE_DIR)

# Distributed-story verification: three shard runs, merged, must reproduce
# the single-run exhaustive database byte-identically.  CI runs the same
# flow with the shards on separate matrix workers.
SHARD_DIR := .shard-demo
verify-shards:
	rm -rf $(SHARD_DIR) && mkdir -p $(SHARD_DIR)
	for k in 1 2 3; do \
	  $(RUN) -m repro explore --workload uniform --space smoke --seed 1 \
	    --shard $$k/3 --out $(SHARD_DIR)/shard$$k.json || exit 1; \
	done
	$(RUN) -m repro merge $(SHARD_DIR)/shard1.json $(SHARD_DIR)/shard2.json \
	  $(SHARD_DIR)/shard3.json --out $(SHARD_DIR)/merged.json
	$(RUN) -m repro explore --workload uniform --space smoke --seed 1 \
	  --out $(SHARD_DIR)/full.json
	cmp $(SHARD_DIR)/merged.json $(SHARD_DIR)/full.json
	@echo "3-shard merge reproduces the single-run database byte-identically"
	rm -rf $(SHARD_DIR)

# Distributed-service verification: the in-process protocol/unit tests
# plus the 3-process cluster fault matrix — clean run, killed-and-restarted
# worker, expired-and-re-leased lease, torn store write — each asserting
# the cluster artefact is byte-identical to the single-host run.  CI runs
# the cluster file as a with/without-worker-kill matrix.
verify-cluster:
	$(RUN) -m pytest tests/test_distrib.py tests/test_distrib_cluster.py -q

# Declarative-experiment verification: the default spec emitted by
# `dmexplore spec` must dry-run, run, and produce a database byte-identical
# to the equivalent legacy `dmexplore explore` flag invocation — for the
# exhaustive and one heuristic strategy.  CI runs the same flow.
SPEC_DIR := .spec-demo
verify-spec:
	rm -rf $(SPEC_DIR) && mkdir -p $(SPEC_DIR)
	$(RUN) -m repro spec --out $(SPEC_DIR)/experiment.json
	$(RUN) -m repro run $(SPEC_DIR)/experiment.json --dry-run > $(SPEC_DIR)/resolved.json
	$(RUN) -m repro run $(SPEC_DIR)/experiment.json \
	  --set workload.name=uniform --set space.name=smoke --set seed=1 \
	  --out $(SPEC_DIR)/run.json
	$(RUN) -m repro explore --workload uniform --space smoke --seed 1 \
	  --out $(SPEC_DIR)/flags.json
	cmp $(SPEC_DIR)/run.json $(SPEC_DIR)/flags.json
	$(RUN) -m repro run $(SPEC_DIR)/experiment.json \
	  --set workload.name=uniform --set space.name=smoke --set seed=1 \
	  --set strategy.name=random --set strategy.params.budget=6 \
	  --out $(SPEC_DIR)/run-random.json
	$(RUN) -m repro explore --workload uniform --space smoke --seed 1 \
	  --strategy random --budget 6 --out $(SPEC_DIR)/flags-random.json
	cmp $(SPEC_DIR)/run-random.json $(SPEC_DIR)/flags-random.json
	@echo "spec-driven runs reproduce the flag invocations byte-identically"
	rm -rf $(SPEC_DIR)

.PHONY: verify bench bench-eval bench-eval-full bench-store bench-store-full bench-stream bench-stream-full bench-search bench-search-full verify-docs verify-bench verify-shards verify-cluster verify-spec verify-store verify-stream
