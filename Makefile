PYTHON ?= python

# Tier-1 verification: the whole test + benchmark suite, collection included.
verify:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -x -q

# Benchmark tables only (the reproduction artefacts).
bench:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

.PHONY: verify bench
