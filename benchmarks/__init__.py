"""Benchmark harness package.

Making ``benchmarks/`` a real package lets its modules use
``from .common import ...`` under pytest's default (prepend) import mode:
pytest imports each ``benchmarks/test_*.py`` as ``benchmarks.test_*`` with
the repository root on ``sys.path`` (the root ``conftest.py`` lives there),
so the relative imports resolve and ``python -m pytest -x -q`` collects the
suite instead of dying with "attempted relative import with no known parent
package".
"""
