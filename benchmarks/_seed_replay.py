"""Executable snapshot of the *seed* evaluation hot path.

The columnar-replay PR rewrote the whole profiling hot path: the replay
loop (compiled columnar traces + inline fixed-pool kernels), the composed
allocator's dispatch (memoised size→pool routing table instead of a
per-event ``accepts()`` scan), the pool counter updates (direct attribute
arithmetic instead of AccessCounter/PoolStats helper calls), and the LIFO
free list (O(1) tail storage instead of O(n) head insertion).

``BENCH_eval.json`` must state the win of that rewrite against what the
repository actually shipped before it — code that only exists in git
history.  This module keeps a faithful, verbatim copy of the seed
implementations (behaviour-identical, performance-faithful) so the
benchmark can execute both generations side by side and assert they still
produce byte-identical metrics.  Nothing outside ``benchmarks/`` imports
this module.
"""

from __future__ import annotations

from repro.allocator.blocks import Block
from repro.allocator.composed import ComposedAllocator
from repro.allocator.errors import InvalidRequestError, OutOfMemoryError
from repro.allocator.freelist import FreeList, LIFOFreeList
from repro.allocator.pool import FixedSizePool, GeneralPool
from repro.allocator.pool import gross_block_size
from repro.profiling.metrics import MetricSet, ProfileResult
from repro.profiling.profiler import Profiler

__all__ = ["SeedProfiler", "seedify_allocator"]


class SeedLIFOFreeList(FreeList):
    """The seed LIFO list: newest-first storage, O(n) head insertion."""

    policy_name = "lifo"

    def push(self, block: Block) -> None:
        self._blocks.insert(0, block)
        self.last_insertion_visits = 1

    def pop_front(self) -> Block:
        if not self._blocks:
            raise IndexError("pop from empty free list")
        return self._blocks.pop(0)


class SeedFixedSizePool(FixedSizePool):
    """Seed ``allocate``/``free``: helper-method counters, no inlining."""

    def allocate(self, size: int) -> int:
        self._check_size(size)
        if not self.accepts(size):
            self.stats.failed_allocs += 1
            raise InvalidRequestError(
                f"pool '{self.name}' only serves blocks up to {self.block_size} bytes, "
                f"got request for {size}"
            )
        if len(self.free_list) > 0:
            block = self.free_list.pop_front()
            self.stats.accesses.read(1)
            self.stats.accesses.write(1)
            self.stats.free_list_visits += 1
        else:
            try:
                chunk = self._grow(self.gross_size)
            except OutOfMemoryError:
                self.stats.failed_allocs += 1
                raise
            block = Block(chunk.address, self.gross_size, pool_name=self.name)
            carved = 1
            offset = chunk.address + self.gross_size
            while offset + self.gross_size <= chunk.end:
                self.free_list.push(
                    Block(offset, self.gross_size, pool_name=self.name)
                )
                offset += self.gross_size
                carved += 1
            self.stats.accesses.write(carved)
        self.stats.accesses.write(1)
        self._register_live(block, size)
        return block.address

    def free(self, address: int) -> None:
        block = self._take_live(address)
        self.stats.accesses.read(1)
        self.stats.accesses.write(1)
        self.free_list.push(block)


class SeedGeneralPool(GeneralPool):
    """Seed ``allocate``/``free``: helper-method counters throughout."""

    def allocate(self, size: int) -> int:
        self._check_size(size)
        if not self.accepts(size):
            self.stats.failed_allocs += 1
            raise InvalidRequestError(
                f"pool '{self.name}' only serves blocks up to {self.max_block_size} bytes, "
                f"got request for {size}"
            )
        gross = gross_block_size(size, self.alignment)
        result = self.fit.select(self.free_list, gross)
        self.stats.accesses.read(result.visits)
        self.stats.free_list_visits += result.visits
        if result.found:
            block = result.block
            self.free_list.remove(block)
            self.stats.accesses.write(1)
            split = self.splitting.split(block, gross)
            if split.did_split:
                self.stats.splits += 1
                self.stats.accesses.write(split.writes)
                self.free_list.push(split.remainder)
                self.stats.accesses.read(self.free_list.last_insertion_visits)
                self.stats.accesses.write(1)
                block = split.allocated
        else:
            block = self._grow_and_carve(gross)
        self.stats.accesses.write(1)
        self._register_live(block, size)
        return block.address

    def free(self, address: int) -> None:
        block = self._take_live(address)
        self.stats.accesses.read(1)
        outcome = self.coalescing.on_free(block, self.free_list, self._may_merge)
        self.stats.accesses.read(outcome.reads)
        self.stats.accesses.write(outcome.writes)
        self.stats.coalesces += outcome.merges
        self.free_list.push(outcome.block)
        self.stats.accesses.read(self.free_list.last_insertion_visits)
        self.stats.accesses.write(1)
        maintenance = self.coalescing.maintenance(self.free_list, self._may_merge)
        if maintenance is not None:
            self.stats.accesses.read(maintenance.reads)
            self.stats.accesses.write(maintenance.writes)
            self.stats.coalesces += maintenance.merges


class SeedComposedAllocator(ComposedAllocator):
    """Seed ``malloc``: per-event ``accepts()`` scan over the pool bank."""

    def malloc(self, size: int) -> int:
        self._dispatch_accesses += 1
        last_oom: OutOfMemoryError | None = None
        for pool in self.pools:
            if not pool.accepts(size):
                continue
            try:
                address = pool.allocate(size)
            except OutOfMemoryError as exc:
                last_oom = exc
                continue
            self._owner_of[address] = pool
            return address
        if last_oom is not None:
            raise last_oom
        raise OutOfMemoryError(size, pool=self.name)


class SeedProfiler(Profiler):
    """Seed ``run``/``_collect``: event-object loop, full-trace recount."""

    def run(self, allocator, trace, configuration_id=""):
        address_of = {}
        payload_accesses_by_pool = {}
        oom_failures = 0
        footprint_timeline = []

        for event in trace:
            if event.is_alloc:
                try:
                    address = allocator.malloc(event.size)
                except OutOfMemoryError:
                    oom_failures += 1
                    if self.options.fail_on_oom:
                        raise
                    continue
                address_of[event.request_id] = address
                owner = allocator.owner_of(address)
                if owner is not None:
                    payload_accesses_by_pool[owner.name] = (
                        payload_accesses_by_pool.get(owner.name, 0.0)
                        + event.size * self.options.payload_access_factor
                    )
            else:
                address = address_of.pop(event.request_id, None)
                if address is None:
                    continue
                allocator.free(address)
            if self.options.track_footprint_timeline:
                footprint_timeline.append(
                    (event.timestamp, allocator.total_footprint)
                )

        result = self._seed_collect(
            allocator, trace, configuration_id, payload_accesses_by_pool
        )
        result.per_pool["__profile__"] = {
            "oom_failures": oom_failures,
            "footprint_timeline_points": len(footprint_timeline),
        }
        if self.options.track_footprint_timeline:
            result.per_pool["__timeline__"] = footprint_timeline
        return result

    def _seed_collect(
        self, allocator, trace, configuration_id, payload_accesses_by_pool
    ) -> ProfileResult:
        from repro.memhier.access import breakdown_accesses, footprint_by_level

        breakdown = breakdown_accesses(allocator, self.mapping)
        footprints = footprint_by_level(allocator, self.mapping, peak=True)
        allocator_accesses = breakdown.total
        for pool_name, payload_accesses in payload_accesses_by_pool.items():
            module = self.mapping.module_of(pool_name)
            level = breakdown.level(module.name)
            level.reads += int(payload_accesses / 2)
            level.writes += int(payload_accesses / 2)

        result = ProfileResult(
            configuration_id=configuration_id or allocator.name,
            trace_name=trace.name,
        )
        # The seed re-iterated the entire trace just to count operations.
        operation_count = sum(1 for _ in trace)
        result.operation_count = operation_count
        result.leaked_blocks = allocator.live_blocks

        total_energy = self.energy_model.total_energy_nj(
            breakdown, footprints, operation_count
        )
        total_cycles = self.energy_model.execution_cycles(breakdown, operation_count)
        result.totals = MetricSet(
            accesses=allocator_accesses,
            footprint=sum(footprints.values()),
            energy_nj=total_energy,
            cycles=total_cycles,
        )
        for module in self.mapping.hierarchy:
            level = result.level(module.name)
            accesses = breakdown.levels.get(module.name)
            if accesses is not None:
                level.reads = accesses.reads
                level.writes = accesses.writes
            level.footprint = footprints.get(module.name, 0)
            level.energy_nj = module.energy_for(level.reads, level.writes)
        for pool in allocator.pools:
            result.per_pool[pool.name] = pool.stats.snapshot()
            result.per_pool[pool.name]["module"] = self.mapping.module_of(
                pool.name
            ).name
        return result


def seedify_allocator(allocator: ComposedAllocator) -> ComposedAllocator:
    """Downgrade a freshly built allocator to the seed implementations.

    Swaps the classes of the composed allocator and its fixed/general pools
    to the seed snapshots above and replaces stock LIFO free lists with the
    seed O(n) variant.  Only valid on an unused allocator (empty free lists,
    no live blocks) — which is exactly what the factory hands out.
    """
    if allocator.live_blocks or any(
        len(getattr(pool, "free_list", ())) for pool in allocator.pools
    ):
        raise ValueError("seedify_allocator needs a freshly built allocator")
    for pool in allocator.pools:
        if type(pool) is FixedSizePool:
            pool.__class__ = SeedFixedSizePool
        elif type(pool) is GeneralPool:
            pool.__class__ = SeedGeneralPool
        if type(getattr(pool, "free_list", None)) is LIFOFreeList:
            pool.free_list = SeedLIFOFreeList()
    allocator.__class__ = SeedComposedAllocator
    return allocator
