"""Shared fixtures and calibration constants for the benchmark harness.

Every benchmark regenerates one table/figure-equivalent of the paper (see
DESIGN.md section 4 and EXPERIMENTS.md).  The constants here are the
workload sizes and the per-case-study CPU-overhead calibration used across
all benchmarks, so that the numbers printed by different benchmarks are
comparable with each other.

Benchmarks run each exploration exactly once (``benchmark.pedantic`` with a
single round): the measured quantity is the end-to-end tool runtime, and the
printed tables are the reproduction artefacts.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.exploration import ExplorationEngine, ExplorationSettings
from repro.core.space import compact_parameter_space, default_parameter_space
from repro.memhier.energy import EnergyModel
from repro.memhier.hierarchy import embedded_two_level
from repro.workloads.easyport import EasyportWorkload
from repro.workloads.vtc import VTCWorkload

#: Random seed shared by every benchmark (the paper's publication year).
SEED = 2006

#: Easyport workload size used by the benchmarks.
EASYPORT_PACKETS = 1200

#: VTC texture size used by the benchmarks.
VTC_IMAGE_SIZE = 176

#: Number of configurations sampled from the full 12 960-point space for the
#: headline case-study benchmarks (exhaustive exploration of the full space
#: takes tens of minutes in pure Python; the sample preserves the ranges and
#: the Pareto structure).
FULL_SPACE_SAMPLE = 300

#: Cycles of application CPU work between DM operations, per case study.
#: Easyport (packet forwarding) does comparatively little work per packet;
#: the VTC decoder performs heavy wavelet arithmetic per decoded object.
EASYPORT_CPU_CYCLES_PER_OP = 3000
VTC_CPU_CYCLES_PER_OP = 20_000


@lru_cache(maxsize=None)
def easyport_trace(packets: int = EASYPORT_PACKETS):
    """The canonical Easyport benchmark trace (cached across benchmarks)."""
    return EasyportWorkload(packets=packets).generate(seed=SEED)


@lru_cache(maxsize=None)
def vtc_trace(image_size: int = VTC_IMAGE_SIZE):
    """The canonical VTC benchmark trace (cached across benchmarks)."""
    return VTCWorkload(image_width=image_size, image_height=image_size).generate(seed=SEED)


def easyport_engine(sample: int | None = FULL_SPACE_SAMPLE, compact: bool = False):
    """Exploration engine for the Easyport case study."""
    hierarchy = embedded_two_level()
    space = compact_parameter_space() if compact else default_parameter_space()
    settings = ExplorationSettings(sample=None if compact else sample, sample_seed=SEED)
    energy_model = EnergyModel(hierarchy, cpu_overhead_cycles=EASYPORT_CPU_CYCLES_PER_OP)
    return ExplorationEngine(
        space,
        easyport_trace(),
        hierarchy=hierarchy,
        settings=settings,
        energy_model=energy_model,
    )


def vtc_engine(sample: int | None = FULL_SPACE_SAMPLE, compact: bool = False):
    """Exploration engine for the VTC case study."""
    hierarchy = embedded_two_level()
    space = compact_parameter_space(max_dedicated_pools=3) if compact else default_parameter_space(3)
    settings = ExplorationSettings(sample=None if compact else sample, sample_seed=SEED)
    energy_model = EnergyModel(hierarchy, cpu_overhead_cycles=VTC_CPU_CYCLES_PER_OP)
    return ExplorationEngine(
        space,
        vtc_trace(),
        hierarchy=hierarchy,
        settings=settings,
        energy_model=energy_model,
    )


def print_table(title: str, rows: list[tuple], header: tuple) -> None:
    """Print a small aligned table with a title (benchmark report output)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[col])), max((len(str(row[col])) for row in rows), default=0))
        for col in range(len(header))
    ]
    print("  ".join(str(header[col]).ljust(widths[col]) for col in range(len(header))))
    for row in rows:
        print("  ".join(str(row[col]).ljust(widths[col]) for col in range(len(header))))
