"""Experiment ABL-POLICY (design-choice ablation, DESIGN.md §4).

Not a table of the paper itself, but the ablation its methodology implies:
hold everything else fixed and sweep one parameter axis at a time, to show
which axes move which metrics.  This is the evidence behind the paper's
choice of parameter set (pool count, placement, fit, free-list order,
coalescing, splitting, chunk size).

Run with ``pytest benchmarks/test_ablation_policies.py --benchmark-only -s``.
"""

import pytest

from repro.core.space import default_parameter_space

from .common import easyport_engine, print_table

#: The configuration every sweep starts from.
BASE_POINT = {
    "num_dedicated_pools": 3,
    "dedicated_pool_kind": "fixed",
    "dedicated_pool_placement": "scratchpad",
    "general_free_list": "lifo",
    "general_fit": "first_fit",
    "general_coalescing": "immediate",
    "general_splitting": "always",
    "chunk_size": 8192,
}


@pytest.fixture(scope="module")
def engine():
    return easyport_engine(sample=None, compact=True)


def sweep_axis(engine, axis):
    """Profile the base point with every value of ``axis`` substituted."""
    space = default_parameter_space()
    results = []
    for value in space.parameter(axis).values:
        point = dict(BASE_POINT)
        point[axis] = value
        record = engine.run_point(point, label=f"abl_{axis}_{value}")
        results.append((value, record))
    return results


AXES = [
    "num_dedicated_pools",
    "dedicated_pool_placement",
    "general_free_list",
    "general_fit",
    "general_coalescing",
    "general_splitting",
    "chunk_size",
]


def test_single_axis_ablation(benchmark, engine):
    def run_all_sweeps():
        return {axis: sweep_axis(engine, axis) for axis in AXES}

    sweeps = benchmark.pedantic(run_all_sweeps, rounds=1, iterations=1)

    for axis, results in sweeps.items():
        rows = [
            (str(value),
             record.metrics.accesses,
             record.metrics.footprint,
             f"{record.metrics.energy_nj / 1e3:.1f}",
             record.metrics.cycles)
            for value, record in results
        ]
        print_table(
            f"Ablation: sweep of '{axis}' (all other parameters fixed)",
            rows,
            ("value", "accesses", "footprint(B)", "energy(uJ)", "cycles"),
        )

    # Shape assertions for the key axes.
    by_pools = {value: record for value, record in sweeps["num_dedicated_pools"]}
    most_pools = max(by_pools)
    assert by_pools[most_pools].metrics.accesses < by_pools[0].metrics.accesses, (
        "dedicated pools must cut allocator accesses"
    )

    by_placement = {value: record for value, record in sweeps["dedicated_pool_placement"]}
    assert (
        by_placement["scratchpad"].metrics.energy_nj < by_placement["main"].metrics.energy_nj
    ), "scratchpad mapping must cut energy"

    by_coalescing = {value: record for value, record in sweeps["general_coalescing"]}
    assert (
        by_coalescing["immediate"].metrics.footprint <= by_coalescing["never"].metrics.footprint
    ), "coalescing must not increase footprint"
    assert (
        by_coalescing["never"].metrics.accesses <= by_coalescing["immediate"].metrics.accesses
    ), "skipping coalescing must not increase accesses"

    by_fit = {value: record for value, record in sweeps["general_fit"]}
    assert by_fit["first_fit"].metrics.accesses <= by_fit["worst_fit"].metrics.accesses, (
        "an exhaustive fit scan cannot be cheaper than first fit"
    )
