"""Experiment ABL-BASELINE (paper §1 motivation).

The paper motivates the exploration by contrasting custom allocators with
"the very restricted group of a few OS-based DM allocators".  This benchmark
profiles the three OS-style baselines (Kingsley power-of-two, dlmalloc-style
best fit, naive single free list) on both case-study traces and compares
them against the best Pareto-optimal custom configuration found by the
exploration.

Run with ``pytest benchmarks/test_baseline_comparison.py --benchmark-only -s``.
"""

import pytest

from repro.allocator.baselines import BASELINE_BUILDERS
from repro.core.tradeoff import TradeoffAnalysis
from repro.memhier.energy import EnergyModel
from repro.memhier.hierarchy import flat_main_memory
from repro.memhier.mapping import PoolMapping
from repro.profiling.profiler import Profiler

from .common import (
    EASYPORT_CPU_CYCLES_PER_OP,
    easyport_engine,
    easyport_trace,
    print_table,
)


def profile_baseline(name, trace):
    """Profile one OS-style baseline on ``trace`` (everything in DRAM)."""
    allocator = BASELINE_BUILDERS[name]()
    hierarchy = flat_main_memory()
    mapping = PoolMapping(hierarchy)
    for pool in allocator.pools:
        mapping.place_pool(pool.name, hierarchy.background_module.name)
    profiler = Profiler(
        mapping,
        energy_model=EnergyModel(hierarchy, cpu_overhead_cycles=EASYPORT_CPU_CYCLES_PER_OP),
    )
    return profiler.run(allocator, trace, configuration_id=name)


@pytest.fixture(scope="module")
def custom_front():
    engine = easyport_engine(sample=None, compact=True)
    database = engine.explore()
    return TradeoffAnalysis(database)


def test_baselines_versus_custom_configurations(benchmark, custom_front):
    trace = easyport_trace()

    def run_all_baselines():
        return {name: profile_baseline(name, trace) for name in sorted(BASELINE_BUILDERS)}

    baselines = benchmark.pedantic(run_all_baselines, rounds=1, iterations=1)

    best_accesses = custom_front.best_configuration("accesses")
    best_energy = custom_front.best_configuration("energy_nj")
    best_footprint = custom_front.best_configuration("footprint")

    rows = []
    for name, result in baselines.items():
        rows.append(
            (name,
             result.totals.accesses,
             result.totals.footprint,
             f"{result.totals.energy_nj / 1e3:.1f}",
             result.totals.cycles)
        )
    rows.append(
        ("custom (min accesses)",
         best_accesses.metrics.accesses,
         best_accesses.metrics.footprint,
         f"{best_accesses.metrics.energy_nj / 1e3:.1f}",
         best_accesses.metrics.cycles)
    )
    rows.append(
        ("custom (min energy)",
         best_energy.metrics.accesses,
         best_energy.metrics.footprint,
         f"{best_energy.metrics.energy_nj / 1e3:.1f}",
         best_energy.metrics.cycles)
    )
    rows.append(
        ("custom (min footprint)",
         best_footprint.metrics.accesses,
         best_footprint.metrics.footprint,
         f"{best_footprint.metrics.energy_nj / 1e3:.1f}",
         best_footprint.metrics.cycles)
    )
    print_table(
        "OS-style baselines vs Pareto-optimal custom configurations (Easyport)",
        rows,
        ("allocator", "accesses", "footprint(B)", "energy(uJ)", "cycles"),
    )

    # Shape assertions: the custom access-optimal configuration beats the
    # dlmalloc-style and naive baselines on accesses outright and is at
    # least competitive with the Kingsley allocator (which is itself an
    # O(1)-per-operation design); the custom energy-optimal configuration
    # beats every baseline on energy (baselines cannot use the scratchpad).
    for name, result in baselines.items():
        slack = 1.1 if name == "kingsley" else 1.0
        assert best_accesses.metrics.accesses < result.totals.accesses * slack, name
        assert best_energy.metrics.energy_nj < result.totals.energy_nj, name
    # And no baseline leaks or fails.
    for result in baselines.values():
        assert result.leaked_blocks == 0
        assert result.per_pool["__profile__"]["oom_failures"] == 0
