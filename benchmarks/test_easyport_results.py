"""Experiment EASYPORT-RANGE / EASYPORT-PARETO15 / EASYPORT-GAINS (paper §3).

Regenerates the Easyport case-study figures: the metric ranges across all
explored configurations ("a range in the total memory footprint of a factor
11 and for the memory accesses of a factor 54"), the number of
Pareto-optimal configurations ("15 Pareto-optimal configurations"), and the
improvement factors / percentage decreases within the Pareto-optimal set
(footprint /2.9, accesses /4.1, energy -71.74 %, execution time -27.92 %).

Run with ``pytest benchmarks/test_easyport_results.py --benchmark-only -s``.
"""

import pytest

from repro.core.tradeoff import TradeoffAnalysis

from .common import FULL_SPACE_SAMPLE, easyport_engine, print_table

#: Paper-reported values, for the side-by-side table.
PAPER = {
    "footprint_range_factor": 11.0,
    "accesses_range_factor": 54.0,
    "pareto_count": 15,
    "footprint_pareto_factor": 2.9,
    "accesses_pareto_factor": 4.1,
    "energy_pareto_percent": 71.74,
    "cycles_pareto_percent": 27.92,
}


@pytest.fixture(scope="module")
def easyport_analysis():
    engine = easyport_engine(sample=FULL_SPACE_SAMPLE)
    database = engine.explore()
    return database, TradeoffAnalysis(database)


def test_easyport_case_study(benchmark, easyport_analysis):
    database, _ = easyport_analysis

    def run_exploration():
        # Re-run a reduced exploration so the benchmark measures the tool's
        # end-to-end runtime per configuration without repeating the full
        # sweep on every benchmark round.
        engine = easyport_engine(sample=25)
        return engine.explore()

    sampled = benchmark.pedantic(run_exploration, rounds=1, iterations=1)
    assert len(sampled) == 25

    analysis = TradeoffAnalysis(database)
    accesses = analysis.metric_tradeoff("accesses")
    footprint = analysis.metric_tradeoff("footprint")
    energy = analysis.metric_tradeoff("energy_nj")
    cycles = analysis.metric_tradeoff("cycles")

    rows = [
        ("explored configurations", len(database), "12960 (full space)"),
        ("feasible configurations", len(database.feasible_records()), "-"),
        ("Pareto-optimal configurations", analysis.pareto_count, PAPER["pareto_count"]),
        ("accesses range (all configs)", f"x{accesses.overall_range_factor:.1f}",
         f"x{PAPER['accesses_range_factor']}"),
        ("footprint range (all configs)", f"x{footprint.overall_range_factor:.1f}",
         f"x{PAPER['footprint_range_factor']}"),
        ("accesses gain within Pareto set", f"x{accesses.pareto_gain_factor:.2f}",
         f"x{PAPER['accesses_pareto_factor']}"),
        ("footprint gain within Pareto set", f"x{footprint.pareto_gain_factor:.2f}",
         f"x{PAPER['footprint_pareto_factor']}"),
        ("memory energy decrease within Pareto set", f"{energy.pareto_gain_percent:.2f}%",
         f"{PAPER['energy_pareto_percent']}%"),
        ("execution time decrease within Pareto set", f"{cycles.pareto_gain_percent:.2f}%",
         f"{PAPER['cycles_pareto_percent']}%"),
    ]
    print_table(
        "Easyport case study (paper section 3, first study)",
        rows,
        ("quantity", "measured", "paper"),
    )

    # Shape assertions: the qualitative structure of the paper's result.
    assert analysis.pareto_count >= 5, "a non-trivial Pareto front must exist"
    assert accesses.overall_range_factor > 5.0, "accesses must span a large range"
    assert footprint.overall_range_factor > 3.0, "footprint must span a large range"
    assert accesses.pareto_gain_factor > 1.3, "accesses must still trade off within the front"
    assert footprint.pareto_gain_factor > 1.3, "footprint must still trade off within the front"
    assert energy.pareto_gain_percent > 30.0, "energy savings must be substantial"
    assert 5.0 < cycles.pareto_gain_percent < 80.0, "time savings must be present but diluted"

    # Who wins: the access-optimal Pareto point uses dedicated pools, the
    # footprint-optimal one uses fewer (or equally many) pools.
    best_accesses = analysis.best_configuration("accesses")
    best_footprint = analysis.best_configuration("footprint")
    assert best_accesses.parameters["num_dedicated_pools"] > 0
    assert (
        best_footprint.parameters["num_dedicated_pools"]
        <= best_accesses.parameters["num_dedicated_pools"]
    )
    # The energy-optimal Pareto point maps its dedicated pools on the scratchpad.
    best_energy = analysis.best_configuration("energy_nj")
    assert best_energy.parameters["dedicated_pool_placement"] == "scratchpad"
