"""Experiment EVAL-SPEED: the columnar evaluation fast path.

Every explored configuration costs one full trace replay — the paper's
"simulation of our dynamic application" step, the dominant cost the DATE'06
flow prunes and parallelises around.  This benchmark measures that kernel
across the three generations that exist in this repository:

* **seed** — the original hot path (event-object loop, per-event
  ``accepts()`` dispatch scan, helper-method counters, O(n) LIFO free
  list), kept as an executable snapshot in :mod:`benchmarks._seed_replay`;
* **legacy** — the current event-object loop
  (``ProfilerOptions(fast_replay=False)``), which already benefits from the
  allocator-level rewrites (routing table, O(1) LIFO, inlined counters);
* **fast** — the compiled columnar replay (the default);
* **batched** — the batch replay engine
  (:class:`repro.profiling.batch.BatchReplayEngine`), which amortises one
  trace sweep across every configuration of an exhaustive sweep by sharing
  pool-group simulations.

All generations must produce byte-identical metrics; the headline targets
are **fast ≥ 5× seed** on the replay microbenchmark and **batched ≥ 10×
single fast** per point on the exhaustive compact-space sweep.  Results are
written to ``BENCH_eval.json`` in the repository root — the baseline future
performance PRs are measured against; the CI bench-smoke job asserts the
``batched.identical_metrics`` flag and uploads the file as an artifact.

Sizing: 30 000 Easyport packets (8 000 for the sweep) in dedicated
benchmark runs (``--benchmark-only``), 12 000 (2 000) in plain test /
CI-smoke runs.

Run with ``pytest benchmarks/test_eval_speed.py --benchmark-only -s``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.configuration import configuration_from_point
from repro.core.exploration import (
    ExplorationEngine,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.core.factory import AllocatorFactory
from repro.core.space import compact_parameter_space, smoke_parameter_space
from repro.memhier.hierarchy import embedded_two_level
from repro.profiling.batch import BatchReplayEngine
from repro.profiling.profiler import Profiler, ProfilerOptions
from repro.workloads.easyport import EasyportWorkload

from ._seed_replay import SeedProfiler, seedify_allocator
from .common import SEED, print_table

#: Where the machine-readable results land (repository root).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_eval.json"

#: The replay-loop speedup the columnar fast path must deliver over the
#: seed implementation (the PR 5 acceptance target).
TARGET_SPEEDUP_VS_SEED = 5.0

#: The per-point speedup the batch replay engine must deliver over the
#: single fast replay on an exhaustive standard-space sweep (the PR 6
#: acceptance target, asserted in dedicated benchmark runs).
TARGET_BATCHED_SPEEDUP = 10.0

#: Representative configuration: dedicated fixed pools for the hot sizes in
#: the scratchpad in front of a plain general pool — the paper's
#: methodology, and the shape explorations evaluate thousands of times.
REPLAY_POINT = {
    "num_dedicated_pools": 5,
    "dedicated_pool_kind": "fixed",
    "dedicated_pool_placement": "scratchpad",
    "general_free_list": "lifo",
    "general_fit": "first_fit",
    "general_coalescing": "never",
    "general_splitting": "never",
    "chunk_size": 4096,
}

#: Collected by the tests in this module, written once at module teardown.
_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def write_bench_json(request):
    """Write ``BENCH_eval.json`` after the module's measurements ran."""
    yield
    if not _RESULTS:  # pragma: no cover - nothing measured
        return
    dedicated = request.config.getoption("--benchmark-only", default=False)
    document = {
        "benchmark": "eval_speed",
        "mode": "benchmark" if dedicated else ("full" if _FULL_ENV else "quick"),
        "seed": SEED,
        **_RESULTS,
    }
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_PATH}")


#: ``BENCH_EVAL_FULL=1`` runs the full (dedicated-size, target-asserting)
#: measurements inside a plain pytest run, so one ``make bench-eval-full``
#: invocation produces a complete BENCH_eval.json — ``--benchmark-only``
#: would skip every test that does not use the ``benchmark`` fixture.
_FULL_ENV = bool(os.environ.get("BENCH_EVAL_FULL"))


def _packets(request) -> int:
    dedicated = request.config.getoption("--benchmark-only", default=False)
    return 30_000 if dedicated or _FULL_ENV else 12_000


def _configuration(trace, hierarchy):
    return configuration_from_point(
        REPLAY_POINT,
        hot_sizes=trace.hot_sizes(top=8),
        scratchpad_module=hierarchy.fastest.name,
        main_module=hierarchy.background_module.name,
    )


def _time_replay(factory, configuration, trace, make_profiler, prepare=None, rounds=5):
    """Best-of-N wall time of the replay *only*.

    The allocator is built (and optionally downgraded to the seed classes)
    outside the timed region — the microbenchmark measures the replay loop,
    not configuration construction — and a GC sweep runs before each round
    so one implementation's garbage is never charged to the next.
    """
    import gc

    best = float("inf")
    result = None
    for _ in range(rounds):
        built = factory.build(configuration)
        allocator = prepare(built.allocator) if prepare else built.allocator
        profiler = make_profiler(built.mapping)
        gc.collect()
        start = time.perf_counter()
        result = profiler.run(allocator, trace, "bench")
        best = min(best, time.perf_counter() - start)
    return best, result


def test_replay_loop_speedup(benchmark, request):
    """Replay microbenchmark: seed vs legacy vs compiled fast path.

    One trace, one representative configuration, three replay
    implementations; metrics must agree bit for bit, and the fast path must
    clear :data:`TARGET_SPEEDUP_VS_SEED` over the seed implementation.
    """
    trace = EasyportWorkload(packets=_packets(request)).generate(seed=SEED)
    events = len(trace)
    hierarchy = embedded_two_level()
    factory = AllocatorFactory(hierarchy)
    configuration = _configuration(trace, hierarchy)
    trace.compiled()  # compile once up front, as an exploration would

    seed_seconds, seed_result = _time_replay(
        factory, configuration, trace, SeedProfiler, prepare=seedify_allocator
    )
    legacy_seconds, legacy_result = _time_replay(
        factory,
        configuration,
        trace,
        lambda mapping: Profiler(mapping, options=ProfilerOptions(fast_replay=False)),
    )

    def fast_setup():
        import gc

        built = factory.build(configuration)
        gc.collect()
        return (built,), {}

    def fast_target(built):
        return Profiler(built.mapping).run(built.allocator, trace, "bench")

    fast_result = benchmark.pedantic(
        fast_target, setup=fast_setup, rounds=5, warmup_rounds=1
    )
    fast_seconds = benchmark.stats.stats.min

    # Byte-identity across all three generations.
    def as_bytes(result):
        return json.dumps(result.as_dict(), sort_keys=True, default=repr)

    assert as_bytes(fast_result) == as_bytes(legacy_result) == as_bytes(seed_result)

    speedup_seed = seed_seconds / fast_seconds
    speedup_legacy = legacy_seconds / fast_seconds
    dedicated = request.config.getoption("--benchmark-only", default=False)
    # Dedicated runs must clear the acceptance target.  Quick runs execute
    # on shared CI runners where wall-clock ratios can wobble, so they only
    # sanity-check the direction and *record* the ratio in BENCH_eval.json.
    floor = TARGET_SPEEDUP_VS_SEED if dedicated else 1.5
    _RESULTS["replay"] = {
        "events": events,
        "seed_events_per_s": round(events / seed_seconds),
        "legacy_events_per_s": round(events / legacy_seconds),
        "fast_events_per_s": round(events / fast_seconds),
        "speedup_vs_seed": round(speedup_seed, 2),
        "speedup_vs_legacy": round(speedup_legacy, 2),
        "target_vs_seed": TARGET_SPEEDUP_VS_SEED,
        # The floor this run was actually held to: the full target in
        # dedicated benchmark runs, a direction check in quick/CI runs —
        # so a quick-mode ratio below the headline target is not a
        # regression as long as it clears targets[mode].
        "targets": {"dedicated": TARGET_SPEEDUP_VS_SEED, "quick": 1.5},
        "target_this_mode": floor,
        "identical_metrics": True,
    }
    print_table(
        "Replay loop: seed vs legacy vs compiled fast path",
        [
            ("events", events, "-"),
            ("seed replay", f"{seed_seconds * 1e3:.1f} ms", f"{events / seed_seconds:,.0f} ev/s"),
            ("legacy loop", f"{legacy_seconds * 1e3:.1f} ms", f"{events / legacy_seconds:,.0f} ev/s"),
            ("compiled fast path", f"{fast_seconds * 1e3:.1f} ms", f"{events / fast_seconds:,.0f} ev/s"),
            ("speedup vs seed", f"x{speedup_seed:.2f}", f">= {TARGET_SPEEDUP_VS_SEED}"),
            ("speedup vs legacy loop", f"x{speedup_legacy:.2f}", "-"),
        ],
        ("quantity", "measured", "note"),
    )
    assert speedup_seed >= floor, (
        f"fast path is only x{speedup_seed:.2f} over the seed replay "
        f"(target x{floor})"
    )
    assert speedup_legacy > 1.0


def test_per_point_latency(request):
    """Per-point evaluation latency through the engine (the explore unit)."""
    trace = EasyportWorkload(packets=_packets(request) // 3).generate(seed=SEED)
    engine = ExplorationEngine(smoke_parameter_space(), trace)
    items = [
        (point, f"bench{index:03d}")
        for index, point in enumerate(engine.space.points())
    ]
    start = time.perf_counter()
    records = engine.evaluate_points(items)
    elapsed = time.perf_counter() - start
    per_point_ms = elapsed / len(items) * 1e3
    _RESULTS["per_point"] = {
        "points": len(items),
        "trace_events": len(trace),
        "serial_point_ms": round(per_point_ms, 3),
        "events_per_s": round(len(trace) * len(items) / elapsed),
    }
    print_table(
        "Per-point profiling latency (serial engine)",
        [
            ("points", len(items), "-"),
            ("trace events", len(trace), "-"),
            ("latency per point", f"{per_point_ms:.2f} ms", "-"),
            ("throughput", f"{len(trace) * len(items) / elapsed:,.0f} ev/s", "-"),
        ],
        ("quantity", "measured", "note"),
    )
    assert len(records) == len(items)


def test_batched_sweep_speedup(benchmark, request):
    """Exhaustive compact-space sweep: batch replay engine vs single fast.

    One trace, every point of the compact space.  The batch engine scores
    the whole sweep off shared pool-group simulations; the single fast
    replay profiles each point independently (the PR 5 state of the art).
    Metrics must match the single fast replay on *every* point and the
    legacy event loop on a sample — that is the ``identical_metrics`` flag
    the CI bench-smoke job asserts.
    """
    dedicated = (
        request.config.getoption("--benchmark-only", default=False) or _FULL_ENV
    )
    packets = 8_000 if dedicated else 2_000
    trace = EasyportWorkload(packets=packets).generate(seed=SEED)
    events = len(trace)
    hierarchy = embedded_two_level()
    factory = AllocatorFactory(hierarchy)
    hot_sizes = trace.hot_sizes(top=8)
    configurations = [
        configuration_from_point(
            point,
            hot_sizes=hot_sizes,
            scratchpad_module=hierarchy.fastest.name,
            main_module=hierarchy.background_module.name,
            label=f"sweep{index:05d}",
        )
        for index, point in enumerate(compact_parameter_space().points())
    ]
    trace.compiled()  # compile once up front, as an exploration would

    def as_bytes(result):
        return json.dumps(result.as_dict(), sort_keys=True, default=repr)

    # Batched sweep (best of N fresh engines: the engine's group caches are
    # the thing under test, so each round starts cold).
    holder: dict = {}

    def batched_setup():
        import gc

        holder["engine"] = BatchReplayEngine(trace, factory)
        gc.collect()
        return (), {}

    def batched_target():
        return holder["engine"].run_configurations(configurations)

    batched_results = benchmark.pedantic(
        batched_target, setup=batched_setup, rounds=3 if dedicated else 2
    )
    batched_seconds = benchmark.stats.stats.min
    engine = holder["engine"]

    # Single fast replay over the same sweep (one pass; it has no
    # cross-point state to warm).
    start = time.perf_counter()
    single_results = []
    for configuration in configurations:
        built = factory.build(configuration)
        profiler = Profiler(built.mapping)
        single_results.append(
            profiler.run(built.allocator, trace, configuration.configuration_id)
        )
    single_seconds = time.perf_counter() - start

    identical = all(
        as_bytes(batched) == as_bytes(single)
        for batched, single in zip(batched_results, single_results)
    )
    # Legacy event-loop oracle on a sample (it is ~2 orders slower than the
    # batched sweep, so sampling keeps the benchmark runnable).
    for index in range(0, len(configurations), max(1, len(configurations) // 8)):
        configuration = configurations[index]
        built = factory.build(configuration)
        profiler = Profiler(built.mapping, options=ProfilerOptions(fast_replay=False))
        legacy = profiler.run(built.allocator, trace, configuration.configuration_id)
        identical = identical and as_bytes(batched_results[index]) == as_bytes(legacy)

    points = len(configurations)
    speedup = single_seconds / batched_seconds
    _RESULTS["batched"] = {
        "space": "compact",
        "points": points,
        "events": events,
        "batched_s": round(batched_seconds, 3),
        "single_fast_s": round(single_seconds, 3),
        "batched_point_ms": round(batched_seconds / points * 1e3, 3),
        "single_point_ms": round(single_seconds / points * 1e3, 3),
        "batched_events_per_s": round(events * points / batched_seconds),
        "speedup_vs_single_fast": round(speedup, 2),
        "target_speedup": TARGET_BATCHED_SPEEDUP,
        # Per-mode floors: quick runs only direction-check (see the replay
        # section); compare speedup_vs_single_fast against targets[mode].
        "targets": {"dedicated": TARGET_BATCHED_SPEEDUP, "quick": 1.5},
        "target_this_mode": (
            TARGET_BATCHED_SPEEDUP if dedicated else 1.5
        ),
        "identical_metrics": identical,
        "batched_configurations": engine.batched_configurations,
        "fallback_configurations": engine.fallback_configurations,
    }
    print_table(
        "Batched sweep: batch replay engine vs single fast replay (compact space)",
        [
            ("points x events", f"{points} x {events}", "-"),
            ("batched sweep", f"{batched_seconds:.2f} s", f"{batched_seconds / points * 1e3:.2f} ms/pt"),
            ("single fast sweep", f"{single_seconds:.2f} s", f"{single_seconds / points * 1e3:.2f} ms/pt"),
            ("speedup per point", f"x{speedup:.1f}", f">= {TARGET_BATCHED_SPEEDUP} (dedicated)"),
            ("identical metrics", identical, "required"),
        ],
        ("quantity", "measured", "note"),
    )
    assert identical
    # Dedicated runs must clear the acceptance target; quick runs execute on
    # shared CI runners without NumPy, so they only check the direction.
    floor = TARGET_BATCHED_SPEEDUP if dedicated else 1.5
    assert speedup >= floor, (
        f"batched sweep is only x{speedup:.2f} over single fast replay "
        f"(target x{floor})"
    )


def test_serial_vs_pool_byte_identity_and_throughput(request, tmp_path):
    """The pooled backend must stay byte-identical — and never slower.

    The smoke space is below the pool's ``serial_threshold``, so the
    ``--jobs`` run takes the in-process fallback: the measured
    ``pool_speedup`` records that a small sweep pays (approximately)
    nothing for having requested workers — the 0.72x regression this
    replaces came from spinning up a pool that IPC-dispatched 8 points.
    """
    trace = EasyportWorkload(packets=_packets(request) // 3).generate(seed=SEED)
    space = smoke_parameter_space()

    serial_seconds = float("inf")
    pool_seconds = float("inf")
    serial_db = pool_db = None
    backend = ProcessPoolBackend(jobs=2)
    try:
        # Alternate rounds so machine-load drift hits both paths equally.
        for _ in range(2):
            start = time.perf_counter()
            serial_db = ExplorationEngine(space, trace, backend=SerialBackend()).explore()
            serial_seconds = min(serial_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            pool_db = ExplorationEngine(space, trace, backend=backend).explore()
            pool_seconds = min(pool_seconds, time.perf_counter() - start)
    finally:
        backend.close()

    serial_path, pool_path = tmp_path / "serial.json", tmp_path / "pool.json"
    serial_db.to_json(serial_path)
    pool_db.to_json(pool_path)
    identical = serial_path.read_bytes() == pool_path.read_bytes()

    _RESULTS["parallel"] = {
        "jobs": 2,
        "points": space.size(),
        "serial_s": round(serial_seconds, 3),
        "pool_s": round(pool_seconds, 3),
        "pool_speedup": round(serial_seconds / pool_seconds, 2),
        "serial_fallback": space.size() <= backend.serial_threshold,
        "identical_databases": identical,
    }
    print_table(
        "Serial vs process-pool exploration (smoke space)",
        [
            ("points", space.size(), "-"),
            ("serial", f"{serial_seconds:.2f} s", "-"),
            ("pool (2 workers)", f"{pool_seconds:.2f} s", "serial fallback"),
            ("byte-identical databases", identical, "required"),
        ],
        ("quantity", "measured", "note"),
    )
    assert identical
    # The fallback makes the pooled path the serial path plus a length
    # check; anything below this floor would mean the threshold regressed.
    assert serial_seconds / pool_seconds >= 0.8
