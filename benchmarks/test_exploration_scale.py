"""Experiment SCALE-10K (paper §1 / §2).

The paper's claim of scale: the automation gives designers "a real choice
between tens of thousands of highly customized DM allocators".  This
benchmark checks the size of the default parameter space, measures how fast
the tool enumerates it and constructs allocators from its points, measures
the per-configuration profiling cost — together these determine how long an
exhaustive run of the full space would take — and compares serial against
process-pool point evaluation, the knob that turns the paper's "night of
simulation" into ``wall-clock / cores``.

Run with ``pytest benchmarks/test_exploration_scale.py --benchmark-only -s``.
"""

import os
import time

import pytest

from repro.core.exploration import ProcessPoolBackend, SerialBackend
from repro.core.factory import AllocatorFactory
from repro.core.space import default_parameter_space
from repro.core.store import ResultStore
from repro.memhier.hierarchy import embedded_two_level

from .common import easyport_engine, easyport_trace, print_table

HOT_SIZES = [28, 44, 74, 492, 1500]


def test_space_enumeration_and_construction(benchmark):
    space = default_parameter_space()
    hierarchy = embedded_two_level()
    factory = AllocatorFactory(hierarchy)
    from repro.core.configuration import configuration_from_point

    sample = space.sample(200, seed=1)

    def build_sampled_allocators():
        built = 0
        for point in sample:
            configuration = configuration_from_point(point, HOT_SIZES)
            factory_result = factory.build(configuration)
            built += len(factory_result.allocator.pools)
        return built

    pools_built = benchmark(build_sampled_allocators)
    assert pools_built >= 200

    seconds = benchmark.stats.stats.mean
    per_configuration = seconds / len(sample)
    rows = [
        ("default parameter space size", space.size(), "tens of thousands"),
        ("parameters (arrays)", len(space), "-"),
        ("allocator construction time / configuration", f"{per_configuration * 1e3:.2f} ms", "-"),
        ("projected construction time, full space", f"{per_configuration * space.size():.0f} s", "-"),
    ]
    print_table("Exploration scale (paper section 1)", rows, ("quantity", "measured", "paper"))

    assert space.size() >= 10_000


def test_per_configuration_profiling_cost(benchmark):
    engine = easyport_engine(sample=None, compact=True)
    trace = easyport_trace()
    point = engine.space.point_at(0)

    record = benchmark(engine.run_point, point)

    seconds = benchmark.stats.stats.mean
    full_space = default_parameter_space().size()
    rows = [
        ("trace events profiled per configuration", len(trace), "-"),
        ("profiling time / configuration", f"{seconds * 1e3:.1f} ms", "-"),
        ("projected exhaustive run of the full space",
         f"{seconds * full_space / 60:.1f} min", "overnight simulation"),
    ]
    print_table("Per-configuration simulation cost", rows, ("quantity", "measured", "paper"))
    assert record.metrics.accesses > 0


def test_serial_vs_parallel_evaluation(benchmark, request):
    """Experiment PAR-BACKEND: wall-clock of serial vs process-pool evaluation.

    Evaluates the same batch of configurations through a
    :class:`SerialBackend` (timed directly) and a warmed
    :class:`ProcessPoolBackend` (the benchmarked quantity), checks the two
    backends agree metric-for-metric, and reports the speedup.  The speedup
    assertion only applies on multi-core machines **and** in dedicated
    benchmark runs (``--benchmark-only``): when the file executes as an
    ordinary test inside tier-1 CI, a loaded shared runner must not be able
    to fail the build on timing noise.
    """
    jobs = min(4, os.cpu_count() or 1)
    engine = easyport_engine(sample=None, compact=True)
    points = [engine.space.point_at(index) for index in range(24)]
    items = [(point, f"cfg{index:05d}") for index, point in enumerate(points)]

    serial_backend = SerialBackend()
    serial_start = time.perf_counter()
    serial_records = serial_backend.evaluate(engine, items)
    serial_seconds = time.perf_counter() - serial_start

    pool = ProcessPoolBackend(jobs=jobs)
    try:
        # Warm the pool outside the measured region: forking workers and
        # shipping the engine is a one-off cost an exploration pays once.
        # (Two items, because a one-item batch short-circuits to in-process
        # evaluation and would leave the pool cold.)
        pool.evaluate(engine, items[:2])
        parallel_records = benchmark.pedantic(
            pool.evaluate, args=(engine, items), rounds=1, iterations=1
        )
    finally:
        pool.close()
    parallel_seconds = benchmark.stats.stats.mean

    assert len(parallel_records) == len(serial_records)
    for serial_record, parallel_record in zip(serial_records, parallel_records):
        assert serial_record.metrics == parallel_record.metrics
        assert serial_record.configuration_id == parallel_record.configuration_id

    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    rows = [
        ("configurations evaluated", len(items), "-"),
        ("worker processes", jobs, "-"),
        ("serial wall-clock", f"{serial_seconds:.2f} s", "a night of simulation"),
        ("parallel wall-clock", f"{parallel_seconds:.2f} s", "-"),
        ("speedup", f"x{speedup:.2f}", "~linear in cores"),
    ]
    print_table(
        "Serial vs parallel point evaluation", rows, ("quantity", "measured", "paper")
    )
    dedicated_run = request.config.getoption("--benchmark-only", default=False)
    if dedicated_run and (os.cpu_count() or 1) >= 2 and jobs >= 2:
        # Generous bound: even half the ideal speedup clears it easily, but a
        # parallel path that regressed to serial-or-worse fails.
        assert parallel_seconds < serial_seconds * 0.9


def test_cold_vs_warm_result_store(benchmark, request, tmp_path):
    """Experiment STORE-WARM: wall-clock of a cold vs store-warmed exploration.

    Runs the same 24-configuration batch twice through fresh engines sharing
    one persistent :class:`ResultStore`: the first (cold) run profiles every
    point and persists it; the second (warm, the benchmarked quantity) runs
    in a new engine whose in-memory cache is empty — exactly the situation
    of a re-started exploration — and must answer every point from the store
    with **zero** fresh profiler evaluations.  The printed speedup is the
    incremental-exploration payoff tracked in the perf trajectory.
    """
    store_path = tmp_path / "results.jsonl"
    cold_engine = easyport_engine(sample=None, compact=True)
    cold_engine.store = ResultStore(store_path)
    points = [cold_engine.space.point_at(index) for index in range(24)]
    items = [(point, f"cfg{index:05d}") for index, point in enumerate(points)]

    cold_start = time.perf_counter()
    cold_records = cold_engine.evaluate_points(items)
    cold_seconds = time.perf_counter() - cold_start
    cold_engine.store.close()
    assert cold_engine.cache_misses == len(items)

    warm_engine = easyport_engine(sample=None, compact=True)

    def warm_run():
        # Open the store inside the measured region: parsing the JSON-lines
        # file back is part of the price of resuming a run.
        warm_engine.clear_cache()
        warm_engine.store = ResultStore(store_path)
        try:
            return warm_engine.evaluate_points(items)
        finally:
            warm_engine.store.close()

    warm_records = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_seconds = benchmark.stats.stats.mean

    # The warm run performed zero fresh profiler evaluations ...
    assert warm_engine.cache_misses == 0
    assert warm_engine.store_hits == len(items)
    # ... and returned the same results.
    for cold_record, warm_record in zip(cold_records, warm_records):
        assert cold_record.metrics == warm_record.metrics
        assert cold_record.configuration_id == warm_record.configuration_id

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    rows = [
        ("configurations evaluated", len(items), "-"),
        ("cold wall-clock (profiling + persisting)", f"{cold_seconds:.3f} s", "a night of simulation"),
        ("warm wall-clock (store replay)", f"{warm_seconds * 1e3:.1f} ms", "-"),
        ("fresh profiler evaluations, warm run", warm_engine.cache_misses, "0"),
        ("speedup", f"x{speedup:.1f}", "-"),
    ]
    print_table(
        "Cold vs warm persistent result store", rows, ("quantity", "measured", "paper")
    )
    dedicated_run = request.config.getoption("--benchmark-only", default=False)
    if dedicated_run:
        # Replaying from disk must beat re-profiling by a wide margin; the
        # loose bound keeps shared-runner noise from failing the build.
        assert warm_seconds < cold_seconds * 0.5
