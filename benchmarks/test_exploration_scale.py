"""Experiment SCALE-10K (paper §1 / §2).

The paper's claim of scale: the automation gives designers "a real choice
between tens of thousands of highly customized DM allocators".  This
benchmark checks the size of the default parameter space, measures how fast
the tool enumerates it and constructs allocators from its points, and
measures the per-configuration profiling cost — together these determine
how long an exhaustive run of the full space would take.

Run with ``pytest benchmarks/test_exploration_scale.py --benchmark-only -s``.
"""

import pytest

from repro.core.factory import AllocatorFactory
from repro.core.space import default_parameter_space
from repro.memhier.hierarchy import embedded_two_level

from .common import easyport_engine, easyport_trace, print_table

HOT_SIZES = [28, 44, 74, 492, 1500]


def test_space_enumeration_and_construction(benchmark):
    space = default_parameter_space()
    hierarchy = embedded_two_level()
    factory = AllocatorFactory(hierarchy)
    from repro.core.configuration import configuration_from_point

    sample = space.sample(200, seed=1)

    def build_sampled_allocators():
        built = 0
        for point in sample:
            configuration = configuration_from_point(point, HOT_SIZES)
            factory_result = factory.build(configuration)
            built += len(factory_result.allocator.pools)
        return built

    pools_built = benchmark(build_sampled_allocators)
    assert pools_built >= 200

    seconds = benchmark.stats.stats.mean
    per_configuration = seconds / len(sample)
    rows = [
        ("default parameter space size", space.size(), "tens of thousands"),
        ("parameters (arrays)", len(space), "-"),
        ("allocator construction time / configuration", f"{per_configuration * 1e3:.2f} ms", "-"),
        ("projected construction time, full space", f"{per_configuration * space.size():.0f} s", "-"),
    ]
    print_table("Exploration scale (paper section 1)", rows, ("quantity", "measured", "paper"))

    assert space.size() >= 10_000


def test_per_configuration_profiling_cost(benchmark):
    engine = easyport_engine(sample=None, compact=True)
    trace = easyport_trace()
    point = engine.space.point_at(0)

    record = benchmark(engine.run_point, point)

    seconds = benchmark.stats.stats.mean
    full_space = default_parameter_space().size()
    rows = [
        ("trace events profiled per configuration", len(trace), "-"),
        ("profiling time / configuration", f"{seconds * 1e3:.1f} ms", "-"),
        ("projected exhaustive run of the full space",
         f"{seconds * full_space / 60:.1f} min", "overnight simulation"),
    ]
    print_table("Per-configuration simulation cost", rows, ("quantity", "measured", "paper"))
    assert record.metrics.accesses > 0
