"""Experiment FIG1-PARETO (paper Figure 1, lower part).

Regenerates the Pareto-optimal curve of memory accesses versus memory
footprint for the Easyport exploration: the full cloud of explored
configurations with the non-dominated ones highlighted, printed as an ASCII
plot plus the ordered list of curve points (the series a GUI/gnuplot plot
would draw).

Run with ``pytest benchmarks/test_fig1_easyport_pareto.py --benchmark-only -s``.
"""

import pytest

from repro.core.pareto import hypervolume_2d, sort_front
from repro.gui.ascii_plots import pareto_plot

from .common import FULL_SPACE_SAMPLE, easyport_engine, print_table

FIG1_METRICS = ["accesses", "footprint"]


@pytest.fixture(scope="module")
def fig1_database():
    return easyport_engine(sample=FULL_SPACE_SAMPLE).explore()


def test_fig1_pareto_curve(benchmark, fig1_database):
    database = fig1_database

    def extract_front():
        return database.pareto_records(FIG1_METRICS)

    front = benchmark.pedantic(extract_front, rounds=3, iterations=1)

    # The curve as the paper's figure plots it: footprint on one axis,
    # accesses on the other, sorted along the access axis.
    curve = sort_front(front, key=lambda r: r.metric_vector(FIG1_METRICS), objective_index=0)
    rows = [
        (record.configuration_id,
         record.metrics.accesses,
         record.metrics.footprint,
         record.parameters["num_dedicated_pools"],
         record.parameters["dedicated_pool_placement"],
         record.parameters["general_fit"])
        for record in curve
    ]
    print_table(
        "Figure 1 (lower part): Pareto-optimal accesses/footprint curve (Easyport)",
        rows,
        ("configuration", "accesses", "footprint(B)", "dedicated", "placement", "fit"),
    )

    points = [(r.metrics.accesses, r.metrics.footprint) for r in database.feasible_records()]
    print()
    print(pareto_plot(points, x_label="memory accesses", y_label="memory footprint (bytes)"))

    # Shape assertions: a genuine curve exists and is monotone after sorting
    # (more accesses never buys more footprint along a Pareto front).
    assert len(front) >= 4
    footprints = [record.metrics.footprint for record in curve]
    assert all(a >= b for a, b in zip(footprints, footprints[1:]))

    reference = (
        max(p[0] for p in points) * 1.01,
        max(p[1] for p in points) * 1.01,
    )
    volume = hypervolume_2d(
        [(r.metrics.accesses, r.metrics.footprint) for r in front], reference
    )
    assert volume > 0
