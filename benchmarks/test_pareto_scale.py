"""Experiment PARETO-SCALE: incremental vs from-scratch front maintenance.

The streaming exploration core keeps the Pareto front up to date with
:class:`~repro.core.pareto.IncrementalParetoFront` instead of recomputing it
from the whole record list.  This benchmark measures both strategies over a
large synthetic point cloud (the full-space scale of the paper: ~20 000
points) and checks they agree exactly.

Sizing: 20 000 points in dedicated benchmark runs (``--benchmark-only``),
2 000 in plain test / CI-smoke runs, so tier-1 and ``make verify-bench``
stay fast while the headline measurement keeps the paper's scale.

Run with ``pytest benchmarks/test_pareto_scale.py --benchmark-only -s``.
"""

import random
import time

from repro.core.pareto import IncrementalParetoFront, pareto_front_indices

from .common import print_table

#: Objectives per point — the paper's four metrics.
DIMENSIONS = 4

#: Deterministic seed for the synthetic metric cloud.
SEED = 2006


def _point_cloud(count: int, seed: int = SEED) -> list[tuple[float, ...]]:
    rng = random.Random(seed)
    return [
        tuple(rng.random() for _ in range(DIMENSIONS)) for _ in range(count)
    ]


def _scale(request) -> int:
    dedicated = request.config.getoption("--benchmark-only", default=False)
    return 20_000 if dedicated else 2_000


def test_incremental_vs_batch_front_at_scale(benchmark, request):
    """Build the front incrementally (benchmarked) vs batch recomputation.

    The incremental front is what the engine maintains while records
    stream in; the batch recomputation is what reporting used to do per
    query.  Both must produce the identical front; the table reports the
    speedup of maintaining over recomputing.
    """
    count = _scale(request)
    vectors = _point_cloud(count)

    def build_incremental():
        front = IncrementalParetoFront()
        for index, vector in enumerate(vectors):
            front.add(index, vector)
        return front

    front = benchmark.pedantic(build_incremental, rounds=1, iterations=1)
    incremental_seconds = benchmark.stats.stats.mean

    batch_start = time.perf_counter()
    batch = pareto_front_indices(vectors, key=lambda vector: vector)
    batch_seconds = time.perf_counter() - batch_start

    # Exact agreement: same members, same order.
    assert front.items() == batch

    speedup = batch_seconds / incremental_seconds if incremental_seconds else float("inf")
    rows = [
        ("points", count, "-"),
        ("front size", len(batch), "-"),
        ("incremental build (streaming)", f"{incremental_seconds:.3f} s", "-"),
        ("from-scratch recomputation", f"{batch_seconds:.3f} s", "-"),
        ("speedup (maintain vs recompute once)", f"x{speedup:.2f}", "-"),
    ]
    print_table(
        "Incremental vs from-scratch Pareto front", rows, ("quantity", "measured", "paper")
    )


def test_repeated_front_queries_scale(benchmark, request):
    """Querying a maintained front N times vs recomputing it N times.

    This is the report/export pattern: the trade-off table, the Pareto
    listing, the knee point and every export sheet all ask for the front of
    the same database.  With the live front each query is O(front); the old
    path recomputed O(n·front) per query.
    """
    count = _scale(request) // 2
    queries = 5
    vectors = _point_cloud(count, seed=SEED + 1)
    front = IncrementalParetoFront()
    for index, vector in enumerate(vectors):
        front.add(index, vector)

    def query_repeatedly():
        total = 0
        for _ in range(queries):
            total += len(front.items())
        return total

    benchmark.pedantic(query_repeatedly, rounds=1, iterations=1)
    maintained_seconds = benchmark.stats.stats.mean

    recompute_start = time.perf_counter()
    for _ in range(queries):
        pareto_front_indices(vectors, key=lambda vector: vector)
    recompute_seconds = time.perf_counter() - recompute_start

    speedup = (
        recompute_seconds / maintained_seconds if maintained_seconds else float("inf")
    )
    rows = [
        ("points", count, "-"),
        ("front queries", queries, "-"),
        ("maintained front, total", f"{maintained_seconds * 1e3:.2f} ms", "-"),
        ("recompute per query, total", f"{recompute_seconds:.3f} s", "-"),
        ("speedup", f"x{speedup:.0f}", "-"),
    ]
    print_table(
        "Repeated Pareto queries: live front vs recompute",
        rows,
        ("quantity", "measured", "paper"),
    )
    dedicated_run = request.config.getoption("--benchmark-only", default=False)
    if dedicated_run:
        # Serving queries from the maintained front must beat recomputing
        # by a wide margin; loose bound against shared-runner noise.
        assert maintained_seconds < recompute_seconds * 0.5
