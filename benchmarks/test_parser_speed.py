"""Experiment PARSE-SPEED (paper §2).

The paper stresses that its Perl/O'Caml result parser processes the raw
profiling data of an exploration — "which can reach Gigabytes for one single
configuration" — in under 20 seconds.  This benchmark writes a large
profiling log (hundreds of thousands of per-event records plus the
per-configuration summaries) and measures the streaming parser on it, then
extrapolates the measured throughput to a 1 GB log.

Run with ``pytest benchmarks/test_parser_speed.py --benchmark-only -s``.
"""

import pytest

from repro.profiling.logformat import log_to_string
from repro.profiling.metrics import LevelMetrics, MetricSet, ProfileResult
from repro.profiling.parser import ProfilingLogParser

from .common import print_table

#: Number of configurations whose results appear in the synthetic log.
CONFIGURATIONS = 200

#: Raw event records echoed per configuration (this is what blows logs up).
EVENTS_PER_CONFIGURATION = 2000


def synthetic_results():
    results = []
    for index in range(CONFIGURATIONS):
        result = ProfileResult(configuration_id=f"cfg{index:05d}", trace_name="easyport")
        result.totals = MetricSet(
            accesses=10_000 + index,
            footprint=64_000 + index * 13,
            energy_nj=1e6 + index,
            cycles=5_000_000 + index,
        )
        result.per_level["l1_scratchpad"] = LevelMetrics(
            "l1_scratchpad", reads=4000, writes=3000, footprint=16_000, energy_nj=350.0
        )
        result.per_level["main_memory"] = LevelMetrics(
            "main_memory", reads=2000, writes=1000, footprint=48_000, energy_nj=5600.0
        )
        result.per_pool["dedicated_74B"] = {
            "module": "l1_scratchpad", "accesses": 5000, "peak_footprint": 16_000,
        }
        result.per_pool["general"] = {
            "module": "main_memory", "accesses": 5000 + index, "peak_footprint": 48_000,
        }
        results.append(result)
    return results


@pytest.fixture(scope="module")
def big_log():
    from repro.profiling.events import alloc, free
    from repro.profiling.tracer import AllocationTrace

    trace = AllocationTrace(name="easyport")
    for i in range(EVENTS_PER_CONFIGURATION // 2):
        trace.append(alloc(i, 64 + (i % 7) * 16, timestamp=i))
    for i in range(EVENTS_PER_CONFIGURATION // 2):
        trace.append(free(i, timestamp=EVENTS_PER_CONFIGURATION + i))
    return log_to_string(synthetic_results(), trace=trace, include_events=True)


def test_parser_throughput(benchmark, big_log):
    parser = ProfilingLogParser()

    parsed = benchmark(parser.parse_string, big_log)

    assert len(parsed.results) == CONFIGURATIONS
    assert parsed.event_lines == CONFIGURATIONS * EVENTS_PER_CONFIGURATION

    log_bytes = len(big_log.encode("utf-8"))
    seconds = benchmark.stats.stats.mean
    throughput = log_bytes / seconds
    projected_1gb = (1 << 30) / throughput

    rows = [
        ("log size parsed", f"{log_bytes / (1 << 20):.1f} MB", "Gigabytes"),
        ("lines parsed", parsed.total_lines, "-"),
        ("parse time", f"{seconds:.3f} s", "-"),
        ("throughput", f"{throughput / (1 << 20):.1f} MB/s", "-"),
        ("projected time for a 1 GB log", f"{projected_1gb:.1f} s", "< 20 s"),
    ]
    print_table("Profiling-log parsing speed (paper section 2)", rows,
                ("quantity", "measured", "paper"))

    # Shape assertion: parsing must be I/O-bound streaming, i.e. fast enough
    # that a gigabyte-scale log stays within the same order of magnitude as
    # the paper's 20-second budget on era-appropriate hardware.
    assert projected_1gb < 200.0
