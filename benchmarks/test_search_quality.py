"""Experiment SEARCH-QUALITY: the surrogate portfolio vs exhaustive truth.

The headline claim of the search portfolio (``repro.core.strategies``):
NSGA-II, the TPE sampler and the random-forest surrogate reach the
exhaustive Pareto front's quality while spending only a few percent of the
evaluations an exhaustive sweep performs.  This benchmark measures it
directly:

1. the 6 480-configuration ``vtc`` parameter space is explored
   exhaustively to obtain the ground-truth front and a fixed hypervolume
   reference point (auto-derived from every feasible vector),
2. each strategy runs at evaluation budgets of 1 %, 2.5 % and 5 % of the
   exhaustive count, and its front's hypervolume is expressed as a
   fraction of the ground truth — the quality-vs-evaluations curve,
3. two hard gates assert the claim: **every** strategy reaches >= 95 % of
   the exhaustive hypervolume at the 5 % budget, and the **portfolio
   best** reaches >= 95 % already at the 1 % budget, and
4. one fixed-seed surrogate run is repeated serially and under a
   process-pool backend; the two databases must be byte-identical (the
   determinism contract), a flag the CI bench job hard-gates.

Results are written to ``BENCH_search.json`` in the repository root; the
CI bench-smoke job uploads it as an artifact.  Plain pytest runs the
synthetic-workload space; ``BENCH_SEARCH_FULL=1`` — ``make
bench-search-full`` — additionally grinds the real VTC decoder trace
through the same protocol (a full exhaustive sweep of its space).

Run with ``pytest benchmarks/test_search_quality.py -s``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.exploration import ExplorationEngine, ProcessPoolBackend
from repro.core.pareto import hypervolume, reference_point
from repro.core.search import RandomSearch, SearchBudget
from repro.core.space import STANDARD_SPACES
from repro.core.strategies import NSGA2Search, SurrogateSearch, TPESearch
from repro.workloads.synthetic import UniformRandomWorkload

from .common import SEED, print_table, vtc_trace

#: Where the machine-readable results land (repository root).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_search.json"

#: ``BENCH_SEARCH_FULL=1`` adds the real VTC decoder trace to the protocol.
_FULL_ENV = bool(os.environ.get("BENCH_SEARCH_FULL"))

#: Budgets as fractions of the exhaustive evaluation count.
FRACTIONS = (0.01, 0.025, 0.05)

#: Gate 1: hypervolume fraction every strategy must reach at FRACTIONS[-1].
STRATEGY_FLOOR = 0.95

#: Gate 2: hypervolume fraction the best portfolio member must reach at
#: FRACTIONS[0] — the "Pareto front with ~1 % of the evaluations" headline.
PORTFOLIO_FLOOR = 0.95

#: The three portfolio members under test (random sampling rides along as
#: the baseline curve; it is not gated).
STRATEGIES = ("nsga2", "tpe", "surrogate", "random")

#: Collected by the tests in this module, written once at module teardown.
_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def write_bench_json():
    """Write ``BENCH_search.json`` after the module's measurements ran."""
    yield
    if not _RESULTS:  # pragma: no cover - nothing measured
        return
    document = {
        "benchmark": "search_quality",
        "mode": "full" if _FULL_ENV else "quick",
        "seed": SEED,
        "fractions": list(FRACTIONS),
        "gates": {
            "strategy_floor": STRATEGY_FLOOR,
            "strategy_fraction": FRACTIONS[-1],
            "portfolio_floor": PORTFOLIO_FLOOR,
            "portfolio_fraction": FRACTIONS[0],
        },
        **_RESULTS,
    }
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_PATH}")


def synthetic_trace():
    """The cheap synthetic trace driving the quick-mode protocol."""
    return UniformRandomWorkload(operations=300).generate(seed=SEED)


#: (key, workload label, trace factory) per benchmarked setup.  Both use
#: the 6 480-point ``vtc`` space — large enough that a 1 % budget is still
#: a meaningful search, small enough that the exhaustive ground truth runs
#: in seconds (quick) / minutes (full).
SETUPS = [("uniform-vtc", "uniform-300", synthetic_trace)]
if _FULL_ENV:
    SETUPS.append(("vtc-vtc", "vtc-decoder", vtc_trace))


def strategy_params(name: str, budget: int) -> dict:
    """Budget-scaled strategy parameters.

    The defaults target the default 200-evaluation budget; at a 1 % budget
    of a 6 480-point space (65 evaluations) a 16-member startup phase
    would eat a quarter of the budget, so population/startup scale with it.
    """
    if name == "nsga2":
        size = max(8, budget // 6)
        return {"population": size, "offspring": size}
    if name == "tpe":
        return {"startup": max(8, budget // 6), "batch": 8, "candidates": 96}
    if name == "surrogate":
        return {
            "initial": max(8, budget // 6),
            "candidates": 128,
            "surrogate_fraction": 0.125,
            "trees": 10,
            "depth": 6,
        }
    return {}


def build_strategy(name: str, engine, budget: int):
    classes = {
        "nsga2": NSGA2Search,
        "tpe": TPESearch,
        "surrogate": SurrogateSearch,
        "random": RandomSearch,
    }
    return classes[name](
        engine,
        SearchBudget(evaluations=budget, seed=SEED),
        **strategy_params(name, budget),
    )


def test_quality_vs_evaluations_curves():
    """Measure every curve and hard-gate the two hypervolume floors."""
    space = STANDARD_SPACES["vtc"]()
    for key, workload_label, trace_factory in SETUPS:
        trace = trace_factory()
        started = time.perf_counter()
        exhaustive = ExplorationEngine(space, trace).explore()
        exhaustive_seconds = time.perf_counter() - started
        feasible_vectors = [
            record.metric_vector() for record in exhaustive.feasible_records()
        ]
        reference = reference_point(feasible_vectors)
        truth_front = [
            record.metric_vector() for record in exhaustive.pareto_records()
        ]
        truth = hypervolume(truth_front, reference)
        assert truth > 0.0

        curves: dict[str, list[dict]] = {name: [] for name in STRATEGIES}
        rows = []
        for fraction in FRACTIONS:
            budget = round(fraction * space.size())
            for name in STRATEGIES:
                engine = ExplorationEngine(space, trace)
                started = time.perf_counter()
                database = build_strategy(name, engine, budget).run()
                seconds = time.perf_counter() - started
                front = [
                    record.metric_vector() for record in database.pareto_records()
                ]
                achieved = hypervolume(front, reference) / truth
                curves[name].append(
                    {
                        "fraction": fraction,
                        "evaluations": budget,
                        "hypervolume_fraction": achieved,
                        "front_size": len(front),
                        "surrogate_skips": database.surrogate_skips,
                        "seconds": round(seconds, 3),
                    }
                )
                rows.append(
                    (name, f"{fraction:.1%}", budget, f"{achieved:.4f}", len(front))
                )

        print_table(
            f"search quality vs evaluations — {key} "
            f"(truth: {len(truth_front)}-point front over {space.size()} configs)",
            rows,
            ("strategy", "budget", "evals", "HV fraction", "front"),
        )

        # Gate 1: every portfolio member reaches the floor at the largest
        # (still <= 5 %) budget fraction.
        for name in ("nsga2", "tpe", "surrogate"):
            final = curves[name][-1]["hypervolume_fraction"]
            assert final >= STRATEGY_FLOOR, (
                f"{key}: {name} reached only {final:.4f} of the exhaustive "
                f"hypervolume at a {FRACTIONS[-1]:.1%} budget "
                f"(gate: {STRATEGY_FLOOR})"
            )
        # Gate 2: the portfolio best crosses the floor at the ~1 % budget.
        best_at_min = max(
            curves[name][0]["hypervolume_fraction"]
            for name in ("nsga2", "tpe", "surrogate")
        )
        assert best_at_min >= PORTFOLIO_FLOOR, (
            f"{key}: portfolio best reached only {best_at_min:.4f} at a "
            f"{FRACTIONS[0]:.1%} budget (gate: {PORTFOLIO_FLOOR})"
        )

        _RESULTS.setdefault("setups", {})[key] = {
            "workload": workload_label,
            "space": "vtc",
            "space_size": space.size(),
            "exhaustive": {
                "evaluations": len(exhaustive),
                "feasible": exhaustive.feasible_count,
                "front_size": len(truth_front),
                "hypervolume": truth,
                "seconds": round(exhaustive_seconds, 3),
            },
            "reference_point": list(reference),
            "curves": curves,
            "portfolio_best_at_min_fraction": best_at_min,
        }


def test_serial_and_pool_runs_byte_identical(tmp_path):
    """The determinism contract at benchmark scale: the surrogate search at
    the 1 % budget produces byte-identical artefacts serially and under a
    process pool.  CI hard-gates the recorded flag."""
    space = STANDARD_SPACES["vtc"]()
    trace = synthetic_trace()
    budget = round(FRACTIONS[0] * space.size())

    def run(backend=None):
        engine = ExplorationEngine(space, trace, backend=backend)
        try:
            database = build_strategy("surrogate", engine, budget).run()
        finally:
            engine.close()
        return database

    serial_path, pool_path = tmp_path / "serial.json", tmp_path / "pool.json"
    run().to_json(serial_path)
    run(ProcessPoolBackend(jobs=4)).to_json(pool_path)
    identical = serial_path.read_bytes() == pool_path.read_bytes()
    _RESULTS["identity"] = {
        "strategy": "surrogate",
        "evaluations": budget,
        "identical_databases": identical,
    }
    print(
        f"\nserial vs process-pool surrogate run ({budget} evaluations): "
        f"identical={identical}"
    )
    assert identical
