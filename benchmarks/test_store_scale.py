"""Experiment STORE-SCALE: the result store at a hundred thousand entries.

Measures the store layer this repository's long sweeps lean on: append
throughput, cold-load (reopen) time, point-query latency, incremental
``refresh()`` cost on a warm store, and compaction of a store that is half
dead entries — for both on-disk formats.  The headline target is **binary
cold load ≥ 5× faster than JSONL** at 10⁵ entries: the JSONL loader must
JSON-parse every line, while the binary loader walks fixed-width frame
headers and defers payload parsing until a key is actually read.

Results are written to ``BENCH_store.json`` in the repository root; the CI
bench-smoke job uploads it as an artifact.  Plain pytest runs measure a
10⁴-entry store (the quick mode only direction-checks the speedup so CI
runners cannot flake it); ``BENCH_STORE_FULL=1`` — ``make bench-store-full``
— runs the dedicated 10⁵-entry measurement and asserts the full target.

Run with ``pytest benchmarks/test_store_scale.py -s``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.exploration import ExplorationEngine
from repro.core.space import smoke_parameter_space
from repro.core.store import ResultStore, compact_store, store_info
from repro.workloads.synthetic import UniformRandomWorkload

from .common import SEED, print_table

#: Where the machine-readable results land (repository root).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

#: Cold-load speedup the binary format must deliver over JSONL in the
#: dedicated (10⁵-entry) measurement — the PR 8 acceptance target.
TARGET_LOAD_SPEEDUP = 5.0

#: Quick-mode floor: a direction check only (see the module docstring).
QUICK_LOAD_SPEEDUP = 1.0

#: ``BENCH_STORE_FULL=1`` switches to the dedicated store size and asserts
#: the full acceptance target.
_FULL_ENV = bool(os.environ.get("BENCH_STORE_FULL"))

#: Store size per mode.
ENTRIES = 100_000 if _FULL_ENV else 10_000

#: Entries appended after the warm reader attached (the refresh tail).
TAIL_ENTRIES = 200

#: Collected by the tests in this module, written once at module teardown.
_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def write_bench_json():
    """Write ``BENCH_store.json`` after the module's measurements ran."""
    yield
    if not _RESULTS:  # pragma: no cover - nothing measured
        return
    document = {
        "benchmark": "store_scale",
        "mode": "full" if _FULL_ENV else "quick",
        "entries": ENTRIES,
        "seed": SEED,
        "target_load_speedup": TARGET_LOAD_SPEEDUP,
        "targets": {"full": TARGET_LOAD_SPEEDUP, "quick": QUICK_LOAD_SPEEDUP},
        "target_this_mode": (
            TARGET_LOAD_SPEEDUP if _FULL_ENV else QUICK_LOAD_SPEEDUP
        ),
        **_RESULTS,
    }
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_PATH}")


@pytest.fixture(scope="module")
def record():
    """One representative evaluated record all synthetic entries carry."""
    trace = UniformRandomWorkload(operations=300).generate(seed=7)
    engine = ExplorationEngine(smoke_parameter_space(), trace)
    return engine.run_point(engine.space.point_at(0), label="bench")


@pytest.fixture(scope="module")
def filled(tmp_path_factory, record):
    """``{format: (path, append_seconds)}`` for stores of ENTRIES entries."""
    base = tmp_path_factory.mktemp("store_scale")
    out = {}
    for fmt in ("jsonl", "binary"):
        path = base / f"bench.{fmt}"
        with ResultStore(path, format=fmt) as store:
            start = time.perf_counter()
            for index in range(ENTRIES):
                store.put(f"bench-fp{index}", {"i": index}, record)
            out[fmt] = (path, time.perf_counter() - start)
    return out


def test_append_load_query(filled):
    """Append/cold-load/query across formats; the headline load speedup."""
    measured = {}
    for fmt, (path, append_seconds) in filled.items():
        start = time.perf_counter()
        store = ResultStore(path)
        load_seconds = time.perf_counter() - start
        assert store.loaded == ENTRIES
        assert store.corrupt_entries == 0
        # Query a spread of keys (the binary format pays its deferred
        # payload parse here; JSONL already paid at load).
        queries = 1000
        start = time.perf_counter()
        for index in range(0, ENTRIES, max(1, ENTRIES // queries)):
            assert store.get(f"bench-fp{index}", {"i": index}) is not None
        query_seconds = time.perf_counter() - start
        store.close()
        measured[fmt] = {
            "append_s": round(append_seconds, 3),
            "append_entries_per_s": round(ENTRIES / append_seconds),
            "load_s": round(load_seconds, 4),
            "load_entries_per_s": round(ENTRIES / load_seconds),
            "query_1k_s": round(query_seconds, 4),
            "size_bytes": path.stat().st_size,
        }
    speedup = measured["jsonl"]["load_s"] / measured["binary"]["load_s"]
    _RESULTS.update(measured)
    _RESULTS["load_speedup_binary_vs_jsonl"] = round(speedup, 2)
    print_table(
        f"Result store at {ENTRIES} entries: jsonl vs binary",
        [
            ("entries", ENTRIES, "-"),
            ("jsonl load", f"{measured['jsonl']['load_s'] * 1e3:.0f} ms", "-"),
            ("binary load", f"{measured['binary']['load_s'] * 1e3:.0f} ms", "-"),
            (
                "load speedup",
                f"x{speedup:.2f}",
                f">= {TARGET_LOAD_SPEEDUP} (full mode)",
            ),
            ("jsonl size", measured["jsonl"]["size_bytes"], "bytes"),
            ("binary size", measured["binary"]["size_bytes"], "bytes"),
        ],
        ("quantity", "measured", "note"),
    )
    floor = TARGET_LOAD_SPEEDUP if _FULL_ENV else QUICK_LOAD_SPEEDUP
    assert speedup >= floor, (
        f"binary cold load is only x{speedup:.2f} over jsonl (target x{floor})"
    )


def test_refresh_is_o_tail(filled, record):
    """A warm refresh parses the appended tail, not the whole history."""
    path, _ = filled["binary"]
    reader = ResultStore(path)
    consumed_warm = reader.bytes_consumed
    with ResultStore(path) as writer:
        for index in range(TAIL_ENTRIES):
            writer.put(f"tail-fp{index}", {"i": index}, record)
    start = time.perf_counter()
    reader.refresh()
    refresh_seconds = time.perf_counter() - start
    tail_bytes = reader.bytes_consumed - consumed_warm
    reader.close()
    # The refresh consumed only the appended frames — a fraction of the
    # file — and did so in time proportional to the tail.
    assert tail_bytes < path.stat().st_size / 10
    _RESULTS["refresh"] = {
        "tail_entries": TAIL_ENTRIES,
        "refresh_s": round(refresh_seconds, 5),
        "tail_bytes": tail_bytes,
        "file_bytes": path.stat().st_size,
    }
    print_table(
        "Warm refresh() after an appended tail (binary)",
        [
            ("tail entries", TAIL_ENTRIES, "-"),
            ("refresh", f"{refresh_seconds * 1e3:.2f} ms", "O(tail)"),
            ("bytes consumed", tail_bytes, f"of {path.stat().st_size}"),
        ],
        ("quantity", "measured", "note"),
    )


def test_compaction_reclaims_dead_entries(tmp_path, record):
    """Compacting a half-dead store shrinks it to O(live set)."""
    entries = max(1000, ENTRIES // 10)
    path = tmp_path / "dead.bin"
    with ResultStore(path, format="binary") as store:
        for index in range(entries):
            store.put(f"bench-fp{index}", {"i": index}, record)
    # Duplicate every frame: 50% of the store is now superseded entries.
    raw = path.read_bytes()
    path.write_bytes(raw + raw[16:])
    before = store_info(path)
    assert before["dead"] == entries
    start = time.perf_counter()
    stats = compact_store(path)
    compact_seconds = time.perf_counter() - start
    shrink = stats["bytes_after"] / stats["bytes_before"]
    assert stats["live"] == entries and stats["dead"] == entries
    # O(live set): the compacted file is the live half (within the header).
    assert shrink <= 0.55
    after = store_info(path)
    assert after["entries"] == entries and after["dead"] == 0
    _RESULTS["compaction"] = {
        "entries": 2 * entries,
        "dead_fraction": 0.5,
        "bytes_before": stats["bytes_before"],
        "bytes_after": stats["bytes_after"],
        "shrink_ratio": round(shrink, 3),
        "compact_s": round(compact_seconds, 3),
    }
    print_table(
        "Compaction of a 50%-dead binary store",
        [
            ("entries", 2 * entries, f"{entries} live"),
            ("bytes before", stats["bytes_before"], "-"),
            ("bytes after", stats["bytes_after"], "-"),
            ("shrink ratio", f"{shrink:.3f}", "<= 0.55"),
            ("compact", f"{compact_seconds * 1e3:.0f} ms", "-"),
        ],
        ("quantity", "measured", "note"),
    )
