"""Experiment STREAM-SCALE: bounded-memory ingestion of a million-event log.

Measures the streaming pipeline (`repro.stream`) that lets trace logs far
beyond the in-memory ``AllocationTrace`` container flow through the
segmented compiler and the segment replay session: a synthetic server log
is written to disk event by event, streamed back through
``TraceFileSource``, compiled in ``DEFAULT_SEGMENT_EVENTS``-sized chunks
and replayed against a real allocator configuration.  Two promises are
asserted:

1. **Memory is bounded by the segment size, not the stream length** — the
   ``tracemalloc`` peak of a 10x longer stream stays within a constant
   factor of the short stream's peak (and under an absolute budget), so
   the pipeline really is O(segment), and
2. **streaming is not a different answer** — the streamed
   ``ProfileResult`` is byte-identical to the one-shot in-memory
   compile-and-replay of the same events.

Results are written to ``BENCH_stream.json`` in the repository root; the
CI bench-smoke job uploads it as an artifact and hard-gates the identity
flag.  Plain pytest runs stream 10⁵ events; ``BENCH_STREAM_FULL=1`` —
``make bench-stream-full`` — runs the dedicated 10⁶-event measurement.

Run with ``pytest benchmarks/test_stream_scale.py -s``.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.core.configuration import configuration_from_point
from repro.core.factory import AllocatorFactory
from repro.core.space import STANDARD_SPACES
from repro.memhier.hierarchy import embedded_two_level
from repro.profiling.profiler import Profiler
from repro.profiling.tracer import AllocationTrace
from repro.stream import (
    DEFAULT_SEGMENT_EVENTS,
    SyntheticSource,
    TraceFileSource,
    stream_profile,
)

from .common import SEED, print_table

#: Where the machine-readable results land (repository root).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

#: ``BENCH_STREAM_FULL=1`` switches to the dedicated 10⁶-event log.
_FULL_ENV = bool(os.environ.get("BENCH_STREAM_FULL"))

#: Events streamed per mode (the short run is EVENTS // 10).
EVENTS = 1_000_000 if _FULL_ENV else 100_000

#: Live allocations the synthetic log keeps outstanding at any moment.
LIVE_LIMIT = 256

#: Segment size for the memory measurement — small enough that both the
#: short and the long stream span many segments, so a flat peak can only
#: mean the pipeline is O(segment), never "the stream fit in one segment".
MEMORY_SEGMENT_EVENTS = 8192

#: The long stream's traced peak may exceed the 10x shorter stream's by at
#: most this factor: memory tracks the segment, not the stream.  (The peak
#: converges to a plateau set by the segment plus the allocator's bounded
#: live state; the short baseline sits slightly before that plateau.)
PEAK_GROWTH_LIMIT = 2.0

#: Quarter-sized segments on the same stream must lower the peak — the
#: direct form of "memory is a function of the segment size".
SMALL_SEGMENT_EVENTS = MEMORY_SEGMENT_EVENTS // 4

#: Absolute ceiling on the traced peak (bytes) — a generous multiple of
#: one compiled segment plus the allocator/profiler state.
PEAK_BUDGET = 64 * 1024 * 1024

#: Collected by the tests in this module, written once at module teardown.
_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def write_bench_json():
    """Write ``BENCH_stream.json`` after the module's measurements ran."""
    yield
    if not _RESULTS:  # pragma: no cover - nothing measured
        return
    document = {
        "benchmark": "stream_scale",
        "mode": "full" if _FULL_ENV else "quick",
        "events": EVENTS,
        "segment_events": DEFAULT_SEGMENT_EVENTS,
        "live_limit": LIVE_LIMIT,
        "seed": SEED,
        "peak_growth_limit": PEAK_GROWTH_LIMIT,
        "peak_budget_bytes": PEAK_BUDGET,
        **_RESULTS,
    }
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_PATH}")


def write_log(path: Path, operations: int) -> int:
    """Stream a synthetic server log to ``path`` one event at a time."""
    source = SyntheticSource(operations=operations, live_limit=LIVE_LIMIT, seed=SEED)
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# trace stream-bench\n")
        for event in source.events():
            if event.is_alloc:
                handle.write(f"A {event.request_id} {event.size} {event.timestamp}\n")
            else:
                handle.write(f"F {event.request_id} {event.timestamp}\n")
            count += 1
    return count


def built_configuration():
    """One representative smoke-space configuration to replay against."""
    hierarchy = embedded_two_level()
    point = STANDARD_SPACES["smoke"]().sample(1, seed=3)[0]
    # The streamed log's size profile is fixed, so the hot sizes are too.
    hot_sizes = sorted(SyntheticSource(operations=1).sizes)[:8]
    configuration = configuration_from_point(
        point,
        hot_sizes=hot_sizes,
        scratchpad_module=hierarchy.fastest.name,
        main_module=hierarchy.background_module.name,
    )
    return AllocatorFactory(hierarchy), configuration


def stream_once(
    path: Path, trace_memory: bool, segment_events: int = DEFAULT_SEGMENT_EVENTS
):
    """Stream the log through compile+replay; return (outcome, s, peak)."""
    factory, configuration = built_configuration()
    built = factory.build(configuration)
    source = TraceFileSource(path)
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    outcome = stream_profile(
        source,
        built.mapping,
        built.allocator,
        segment_events=segment_events,
        configuration_id=configuration.configuration_id,
    )
    elapsed = time.perf_counter() - start
    peak = 0
    if trace_memory:
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return outcome, elapsed, peak


def test_throughput_and_bounded_memory(tmp_path_factory):
    """A 10x longer log streams at a flat memory peak (O(segment))."""
    base = tmp_path_factory.mktemp("stream_scale")
    long_path = base / "long.trace"
    short_path = base / "short.trace"
    long_events = write_log(long_path, EVENTS)
    short_events = write_log(short_path, EVENTS // 10)

    # Throughput without the tracemalloc overhead, then the memory runs at
    # a segment size both streams span many times over.
    outcome, elapsed, _ = stream_once(long_path, trace_memory=False)
    assert outcome.events == long_events
    assert outcome.segments == -(-long_events // DEFAULT_SEGMENT_EVENTS)
    _outcome_s, _elapsed_s, short_peak = stream_once(
        short_path, trace_memory=True, segment_events=MEMORY_SEGMENT_EVENTS
    )
    outcome_m, _elapsed_m, long_peak = stream_once(
        long_path, trace_memory=True, segment_events=MEMORY_SEGMENT_EVENTS
    )
    assert outcome_m.fingerprint == outcome.fingerprint
    _outcome_q, _elapsed_q, small_segment_peak = stream_once(
        long_path, trace_memory=True, segment_events=SMALL_SEGMENT_EVENTS
    )

    growth = long_peak / short_peak
    events_per_s = long_events / elapsed
    _RESULTS["throughput"] = {
        "events": long_events,
        "stream_s": round(elapsed, 3),
        "events_per_s": round(events_per_s),
        "log_bytes": long_path.stat().st_size,
    }
    _RESULTS["memory"] = {
        "segment_events": MEMORY_SEGMENT_EVENTS,
        "small_segment_events": SMALL_SEGMENT_EVENTS,
        "short_events": short_events,
        "short_peak_bytes": short_peak,
        "long_peak_bytes": long_peak,
        "small_segment_peak_bytes": small_segment_peak,
        "peak_growth_10x_stream": round(growth, 3),
        "bounded_by_segment": bool(
            growth <= PEAK_GROWTH_LIMIT
            and small_segment_peak < long_peak
            and long_peak <= PEAK_BUDGET
        ),
    }
    print_table(
        f"Streaming ingestion at {long_events} events",
        [
            ("events", long_events, f"{outcome.segments} segments"),
            ("stream", f"{elapsed:.2f} s", f"{events_per_s:,.0f} events/s"),
            ("peak (short)", short_peak, f"{short_events} events"),
            ("peak (long)", long_peak, f"{long_events} events"),
            ("peak growth", f"x{growth:.2f}", f"<= {PEAK_GROWTH_LIMIT} (10x stream)"),
            (
                "peak (1/4 segments)",
                small_segment_peak,
                f"< {long_peak} (peak tracks segment size)",
            ),
        ],
        ("quantity", "measured", "note"),
    )
    assert growth <= PEAK_GROWTH_LIMIT, (
        f"peak grew x{growth:.2f} for a 10x longer stream — memory is not "
        f"bounded by the segment size"
    )
    assert small_segment_peak < long_peak, (
        "quarter-sized segments did not lower the peak — memory is not a "
        "function of the segment size"
    )
    assert long_peak <= PEAK_BUDGET, (
        f"traced peak {long_peak} bytes exceeds the {PEAK_BUDGET}-byte budget"
    )


def test_streamed_result_is_byte_identical_to_oneshot(tmp_path):
    """The streamed profile equals the in-memory one-shot replay, exactly."""
    path = tmp_path / "identity.trace"
    events = write_log(path, 20_000)
    streamed, _elapsed, _peak = stream_once(path, trace_memory=False)

    factory, configuration = built_configuration()
    built = factory.build(configuration)
    # stream_once names the run after the file stem; match it exactly.
    trace = AllocationTrace(list(TraceFileSource(path).events()), name=path.stem)
    assert len(trace) == events
    oneshot = Profiler(built.mapping).run(
        built.allocator, trace, configuration.configuration_id
    )
    streamed_bytes = json.dumps(
        streamed.result.as_dict(), sort_keys=True, default=repr
    )
    oneshot_bytes = json.dumps(oneshot.as_dict(), sort_keys=True, default=repr)
    identical = streamed_bytes == oneshot_bytes
    _RESULTS["identity"] = {
        "events": events,
        "identical_result": identical,
        "fingerprint_matches": streamed.fingerprint == trace.fingerprint(),
    }
    print_table(
        "Segmented vs one-shot replay",
        [
            ("events", events, "-"),
            ("identical result", identical, "hard gate"),
            (
                "fingerprint",
                streamed.fingerprint == trace.fingerprint(),
                "stream == trace",
            ),
        ],
        ("quantity", "measured", "note"),
    )
    assert identical
    assert streamed.fingerprint == trace.fingerprint()
