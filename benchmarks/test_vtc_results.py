"""Experiment VTC-GAINS (paper §3, second case study).

Regenerates the MPEG-4 VTC figures: within the Pareto-optimal configuration
set the paper reports up to 82.4 % lower (memory) energy consumption and up
to 5.4 % lower execution time.

Run with ``pytest benchmarks/test_vtc_results.py --benchmark-only -s``.
"""

import pytest

from repro.core.tradeoff import TradeoffAnalysis

from .common import FULL_SPACE_SAMPLE, print_table, vtc_engine

PAPER = {
    "energy_pareto_percent": 82.4,
    "cycles_pareto_percent": 5.4,
}


@pytest.fixture(scope="module")
def vtc_analysis():
    engine = vtc_engine(sample=FULL_SPACE_SAMPLE)
    database = engine.explore()
    return database, TradeoffAnalysis(database)


def test_vtc_case_study(benchmark, vtc_analysis):
    database, analysis = vtc_analysis

    def run_exploration():
        return vtc_engine(sample=25).explore()

    sampled = benchmark.pedantic(run_exploration, rounds=1, iterations=1)
    assert len(sampled) == 25

    energy = analysis.metric_tradeoff("energy_nj")
    cycles = analysis.metric_tradeoff("cycles")
    accesses = analysis.metric_tradeoff("accesses")

    rows = [
        ("explored configurations", len(database), "-"),
        ("Pareto-optimal configurations", analysis.pareto_count, "-"),
        ("memory energy decrease within Pareto set", f"{energy.pareto_gain_percent:.2f}%",
         f"{PAPER['energy_pareto_percent']}%"),
        ("execution time decrease within Pareto set", f"{cycles.pareto_gain_percent:.2f}%",
         f"{PAPER['cycles_pareto_percent']}%"),
        ("accesses gain within Pareto set", f"x{accesses.pareto_gain_factor:.2f}", "-"),
    ]
    print_table(
        "MPEG-4 VTC case study (paper section 3, second study)",
        rows,
        ("quantity", "measured", "paper"),
    )

    # Shape assertions: energy savings are large, execution-time savings are
    # an order of magnitude smaller (compute-dominated decoder), and both
    # are positive.
    assert energy.pareto_gain_percent > 30.0
    assert 1.0 < cycles.pareto_gain_percent < 40.0
    assert energy.pareto_gain_percent > 3 * cycles.pareto_gain_percent
    assert analysis.pareto_count >= 5

    # Who wins: the energy-optimal configuration keeps its dedicated pools
    # (tree nodes / segment buffers) in the scratchpad.
    best_energy = analysis.best_configuration("energy_nj")
    assert best_energy.parameters["num_dedicated_pools"] > 0
    assert best_energy.parameters["dedicated_pool_placement"] == "scratchpad"
