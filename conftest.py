"""Pytest root configuration.

Makes the test and benchmark suites runnable even when the package has not
been installed (e.g. on offline machines where ``pip install -e .`` cannot
build an editable wheel): if ``repro`` is not importable, the ``src/``
layout directory is added to ``sys.path``.
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - only taken on non-installed checkouts
    sys.path.insert(0, str(Path(__file__).parent / "src"))
