"""Pytest root configuration.

Makes the test and benchmark suites runnable even when the package has not
been installed (e.g. on offline machines where ``pip install -e .`` cannot
build an editable wheel): if ``repro`` is not importable, the ``src/``
layout directory is added to ``sys.path``.

Also installs a per-test timeout guard (``pytest-timeout`` is not part of
the pinned environment): every test gets a ``SIGALRM`` deadline — generous
by default, tightened per test with ``@pytest.mark.timeout(seconds)`` —
and a test that hangs dumps the stacks of every thread and fails instead
of wedging the whole suite.  The distributed-service tests spawn real
coordinator/worker subprocesses, where a protocol deadlock would
otherwise freeze CI forever.
"""

import faulthandler
import os
import signal
import sys
import threading
from pathlib import Path

import pytest

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - only taken on non-installed checkouts
    sys.path.insert(0, str(Path(__file__).parent / "src"))

#: Default per-test deadline, overridable for slow machines via the
#: environment and per test via ``@pytest.mark.timeout(seconds)``.  Kept
#: far above any legitimate test (the whole tier-1 suite runs in ~1 min)
#: so it only ever fires on genuine hangs.
DEFAULT_TEST_TIMEOUT = float(os.environ.get("DMEXPLORE_TEST_TIMEOUT", "300"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test with a stack dump if it runs "
        "longer than this (SIGALRM-based; main thread, POSIX only)",
    )


@pytest.fixture(autouse=True)
def _test_timeout(request):
    """Arm a SIGALRM deadline around every test.

    On expiry, every thread's stack is dumped to stderr (so the hang site
    is visible in CI logs) and the test fails.  The guard is skipped where
    SIGALRM cannot work: non-POSIX platforms, non-main threads, or a zero/
    negative configured timeout.
    """
    marker = request.node.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args else DEFAULT_TEST_TIMEOUT
    if (
        seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        faulthandler.dump_traceback(file=sys.stderr, all_threads=True)
        pytest.fail(
            f"test exceeded the {seconds:g}s timeout guard (stacks above)",
            pytrace=False,
        )

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    previous_timer = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *previous_timer)
        signal.signal(signal.SIGALRM, previous_handler)
