#!/usr/bin/env python
"""Compose a custom allocator by hand and compare it with OS-style baselines.

Shows the lower-level API the exploration tool is built on: pools are
instantiated directly (the paper's "more than 50 modules ... linked in any
way"), mapped onto the memory hierarchy, and profiled against the same trace
as the Kingsley / dlmalloc-style baselines.

Run with ``python examples/custom_allocator_composition.py``.
"""

from repro.allocator.baselines import dlmalloc_allocator, kingsley_allocator
from repro.allocator.composed import ComposedAllocator
from repro.allocator.pool import FixedSizePool, GeneralPool
from repro.memhier.hierarchy import embedded_two_level, flat_main_memory
from repro.memhier.mapping import PoolMapping
from repro.profiling.profiler import profile_trace
from repro.workloads.easyport import EasyportWorkload


def build_custom_allocator(hierarchy):
    """A hand-written configuration: three dedicated scratchpad pools in
    front of a best-fit general pool in main memory."""
    mapping = PoolMapping(hierarchy)
    mapping.place_pool("pool_28B", "l1_scratchpad", 8 * 1024)
    mapping.place_pool("pool_74B", "l1_scratchpad", 16 * 1024)
    mapping.place_pool("pool_1500B", "l1_scratchpad", 32 * 1024)
    mapping.place_pool("general", "main_memory")

    pools = [
        FixedSizePool("pool_28B", 28, strict=True,
                      address_space=mapping.address_space_for("pool_28B")),
        FixedSizePool("pool_74B", 74, strict=True,
                      address_space=mapping.address_space_for("pool_74B")),
        FixedSizePool("pool_1500B", 1500, strict=True,
                      address_space=mapping.address_space_for("pool_1500B")),
        GeneralPool(
            "general",
            address_space=mapping.address_space_for("general"),
            free_list="address_ordered",
            fit="best_fit",
            coalescing="immediate",
            splitting="always",
        ),
    ]
    return ComposedAllocator(pools, name="custom"), mapping


def run_baseline(builder, trace):
    allocator = builder()
    hierarchy = flat_main_memory()
    mapping = PoolMapping(hierarchy)
    for pool in allocator.pools:
        mapping.place_pool(pool.name, hierarchy.background_module.name)
    return profile_trace(allocator, trace, mapping, configuration_id=allocator.name)


def main() -> None:
    trace = EasyportWorkload(packets=1000).generate(seed=2006)
    hierarchy = embedded_two_level()

    custom_allocator, custom_mapping = build_custom_allocator(hierarchy)
    custom = profile_trace(custom_allocator, trace, custom_mapping, configuration_id="custom")
    kingsley = run_baseline(kingsley_allocator, trace)
    dlmalloc = run_baseline(dlmalloc_allocator, trace)

    header = f"{'allocator':<12} {'accesses':>12} {'footprint':>12} {'energy (uJ)':>12} {'cycles':>14}"
    print(header)
    print("-" * len(header))
    for result in (custom, kingsley, dlmalloc):
        totals = result.totals
        print(
            f"{result.configuration_id:<12} {totals.accesses:>12} {totals.footprint:>12} "
            f"{totals.energy_nj / 1e3:>12.1f} {totals.cycles:>14}"
        )

    print()
    print("per-pool breakdown of the custom allocator:")
    for pool_name, data in custom.per_pool.items():
        if pool_name.startswith("__"):
            continue
        print(
            f"  {pool_name:<12} on {data['module']:<14} "
            f"{data['alloc_ops']:>6} allocs, {data['accesses']:>8} accesses, "
            f"peak footprint {data['peak_footprint']} B"
        )


if __name__ == "__main__":
    main()
