#!/usr/bin/env python
"""Declarative experiments: describe the run, let the tool explore.

Demonstrates the stable `repro.api` surface end to end:

1. describe an experiment as an ``ExperimentSpec`` (JSON-serialisable),
2. run it with ``run_experiment`` and read the bundled ``RunResult``,
3. register a custom search strategy and use it by name — no CLI changes,
4. show that the artefact's provenance embeds the canonical spec hash.

Run with ``python examples/declarative_experiment.py``.
"""

from repro.api import ComponentRef, ExperimentSpec, registry, run_experiment
from repro.api.registry import search_strategy_factory
from repro.core.search import SearchStrategy


class EveryOtherSearch(SearchStrategy):
    """Toy custom strategy: evaluate every other point of the enumeration."""

    name = "everyother"

    def _search(self, database):
        points = [
            self.engine.space.point_at(i)
            for i in range(0, self.engine.space.size(), 2)
        ][: self.budget.evaluations]
        self._evaluate_batch(points, database)


def main() -> None:
    # 1. The experiment as data.  Everything not stated keeps its default
    #    (2-level hierarchy, serial backend, all four metrics, seed 2006).
    spec = ExperimentSpec(
        workload=ComponentRef("uniform", {"operations": 400}),
        space=ComponentRef("smoke"),
        seed=1,
    )
    print("experiment:", spec.canonical_json()[:72], "...")
    print("spec hash: ", spec.spec_hash()[:16])

    # 2. Run it.  The RunResult bundles the database, provenance, counters.
    result = run_experiment(spec)
    print(
        f"explored {len(result.database)} configurations, "
        f"{len(result.pareto_records())} Pareto-optimal, "
        f"{result.counters['cache_misses']} profiled"
    )
    assert result.provenance.spec_hash == spec.spec_hash()

    # 3. A third-party strategy, registered then used by name.  The same
    #    name works from `dmexplore run`/`explore` in this process too.
    registry.strategies.register(
        "everyother",
        search_strategy_factory(EveryOtherSearch),
        description="every other enumeration point (example strategy)",
    )
    try:
        custom = run_experiment(
            ExperimentSpec(
                workload=ComponentRef("uniform", {"operations": 400}),
                space=ComponentRef("smoke"),
                strategy=ComponentRef("everyother", {"budget": 4}),
                seed=1,
            )
        )
        print(f"custom strategy evaluated {len(custom.database)} configurations:")
        for record in custom.database:
            print("  ", record.configuration.label, record.metrics.as_dict())
    finally:
        registry.strategies.unregister("everyother")

    # 4. The spec round-trips through JSON — ship it to a scheduler, store
    #    it next to the artefact, diff it in code review.
    assert ExperimentSpec.from_json(spec.to_json()) == spec
    print("spec round-trips through JSON; run it with: dmexplore run FILE")


if __name__ == "__main__":
    main()
