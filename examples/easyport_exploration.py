#!/usr/bin/env python
"""Easyport case study: reproduce the paper's first experiment.

Explores a few hundred configurations of the compact parameter space for an
Easyport-style wireless/DSL port-aggregation workload, then prints the
figures the paper reports in Section 3: metric ranges across all
configurations, the number of Pareto-optimal configurations, and the
improvement factors within the Pareto set.  Artefacts (CSV sheets, gnuplot
data/script) are exported next to the script.

Run with ``python examples/easyport_exploration.py [--full]``.
``--full`` samples the complete 12 960-point space instead of the compact one
(several minutes).
"""

import argparse
from pathlib import Path

from repro import ExplorationEngine, ExplorationSettings, TradeoffAnalysis
from repro.core.reporting import describe_record
from repro.core.space import compact_parameter_space, default_parameter_space
from repro.gui.report import dashboard, export_artifacts
from repro.memhier.hierarchy import embedded_two_level
from repro.workloads.easyport import EasyportWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="sample the full parameter space")
    parser.add_argument("--packets", type=int, default=1500)
    parser.add_argument("--sample", type=int, default=400)
    parser.add_argument("--out", type=Path, default=Path("easyport_results"))
    args = parser.parse_args()

    trace = EasyportWorkload(packets=args.packets).generate(seed=2006)
    hierarchy = embedded_two_level()
    if args.full:
        space = default_parameter_space()
        settings = ExplorationSettings(sample=args.sample, progress_every=50)
    else:
        space = compact_parameter_space()
        settings = ExplorationSettings(progress_every=32)
    print(f"exploring {settings.sample or space.size()} of {space.size()} configurations")

    engine = ExplorationEngine(space, trace, hierarchy=hierarchy, settings=settings)
    database = engine.explore()

    analysis = TradeoffAnalysis(database)
    print()
    print(analysis.paper_style_report())
    print()
    print("Pareto-optimal configurations, cheapest accesses first:")
    for record in sorted(analysis.pareto_records, key=lambda r: r.metrics.accesses):
        print("  " + describe_record(record))

    print()
    print(dashboard(database, title="Easyport exploration"))

    paths = export_artifacts(database, args.out, basename="easyport")
    print("\nexported:")
    for kind, path in sorted(paths.items()):
        print(f"  {kind}: {path}")


if __name__ == "__main__":
    main()
