#!/usr/bin/env python
"""Pool-to-memory mapping study on a three-level hierarchy.

Takes one fixed set of allocator policies and sweeps only *where* the
dedicated pools live (scratchpad, on-chip SRAM or off-chip DRAM), showing how
the mapping parameter alone moves energy and execution time — the part of
the paper's parameter space that a pure-software allocator tuner cannot see.

Run with ``python examples/memory_hierarchy_mapping.py``.
"""

from repro.core.configuration import configuration_from_point
from repro.core.factory import AllocatorFactory
from repro.memhier.hierarchy import embedded_three_level
from repro.profiling.profiler import Profiler
from repro.workloads.easyport import EasyportWorkload


def main() -> None:
    trace = EasyportWorkload(packets=1000).generate(seed=2006)
    hierarchy = embedded_three_level()
    factory = AllocatorFactory(hierarchy)
    hot_sizes = trace.hot_sizes(5)
    print(hierarchy.describe())
    print(f"hot block sizes: {hot_sizes}\n")

    base_point = {
        "num_dedicated_pools": 5,
        "dedicated_pool_kind": "fixed",
        "general_free_list": "address_ordered",
        "general_fit": "best_fit",
        "general_coalescing": "immediate",
        "general_splitting": "always",
        "chunk_size": 4096,
    }

    header = f"{'dedicated pools on':<20} {'accesses':>10} {'footprint':>10} {'energy (uJ)':>12} {'cycles':>12}"
    print(header)
    print("-" * len(header))
    for placement in hierarchy.module_names():
        point = dict(base_point, dedicated_pool_placement=placement)
        configuration = configuration_from_point(
            point,
            hot_sizes,
            scratchpad_module=placement,
            main_module=hierarchy.background_module.name,
            label=f"map_{placement}",
        )
        built = factory.build(configuration)
        result = Profiler(built.mapping).run(built.allocator, trace, configuration.label)
        totals = result.totals
        print(
            f"{placement:<20} {totals.accesses:>10} {totals.footprint:>10} "
            f"{totals.energy_nj / 1e3:>12.1f} {totals.cycles:>12}"
        )

    print(
        "\nThe same allocator algorithms cost very different energy/time "
        "depending on the memory level their pools are mapped to."
    )


if __name__ == "__main__":
    main()
