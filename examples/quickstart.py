#!/usr/bin/env python
"""Quickstart: explore DM allocator configurations for a small workload.

Mirrors the paper's flow end to end in under a minute:

1. describe the platform's memory hierarchy (64 KB scratchpad + 4 MB DRAM),
2. give the tool the "list of arrays" of parameter values to explore,
3. let it build, map and profile one allocator per configuration,
4. read the Pareto-optimal configurations off the report.

Run with ``python examples/quickstart.py``.
"""

from repro import ExplorationEngine, exploration_report
from repro.core.space import smoke_parameter_space
from repro.gui.ascii_plots import pareto_plot
from repro.memhier.hierarchy import embedded_two_level
from repro.workloads.easyport import EasyportWorkload


def main() -> None:
    # 1. The application whose dynamic-memory behaviour we are tuning for.
    workload = EasyportWorkload(packets=800)
    trace = workload.generate(seed=2006)
    print(f"workload: {workload.describe()}")
    print(f"trace: {len(trace)} events, hot sizes {trace.hot_sizes(5)}")

    # 2. The platform and the parameter arrays to explore.
    hierarchy = embedded_two_level()
    space = smoke_parameter_space()
    print(hierarchy.describe())
    print(space.describe())
    print()

    # 3. Automated exploration: one composed allocator per point, profiled
    #    on the same trace.
    engine = ExplorationEngine(space, trace, hierarchy=hierarchy)
    database = engine.explore()

    # 4. Pareto-optimal configurations and the trade-off summary.
    print(exploration_report(database, title="Quickstart exploration"))
    print()
    points = [(r.metrics.accesses, r.metrics.footprint) for r in database]
    print(pareto_plot(points, x_label="memory accesses", y_label="memory footprint (bytes)"))


if __name__ == "__main__":
    main()
