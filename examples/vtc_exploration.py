#!/usr/bin/env python
"""MPEG-4 VTC case study: reproduce the paper's second experiment.

Explores allocator configurations for a still-texture-decoding workload and
reports the energy / execution-time reductions available within the
Pareto-optimal set (the paper quotes up to 82.4 % energy and 5.4 % execution
time).

Run with ``python examples/vtc_exploration.py``.
"""

import argparse
from pathlib import Path

from repro import ExplorationEngine, ExplorationSettings, TradeoffAnalysis
from repro.core.space import compact_parameter_space
from repro.gui.report import dashboard, export_artifacts
from repro.memhier.energy import EnergyModel
from repro.memhier.hierarchy import embedded_two_level
from repro.workloads.vtc import VTCWorkload

#: Cycles of wavelet arithmetic per DM operation: the VTC decoder does far
#: more computation per allocated object than a packet forwarder, which is
#: why its execution-time savings are small even when its memory-energy
#: savings are large (see EXPERIMENTS.md, experiment VTC-GAINS).
VTC_CPU_CYCLES_PER_OPERATION = 20_000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--image-size", type=int, default=176)
    parser.add_argument("--out", type=Path, default=Path("vtc_results"))
    args = parser.parse_args()

    workload = VTCWorkload(image_width=args.image_size, image_height=args.image_size)
    trace = workload.generate(seed=2006)
    print(f"workload: {workload.describe()}")
    print(f"trace: {len(trace)} events, hot sizes {trace.hot_sizes()}")

    hierarchy = embedded_two_level()
    energy_model = EnergyModel(hierarchy, cpu_overhead_cycles=VTC_CPU_CYCLES_PER_OPERATION)
    space = compact_parameter_space(max_dedicated_pools=3)
    engine = ExplorationEngine(
        space,
        trace,
        hierarchy=hierarchy,
        energy_model=energy_model,
        settings=ExplorationSettings(progress_every=32),
    )
    database = engine.explore()

    analysis = TradeoffAnalysis(database)
    print()
    print(analysis.paper_style_report())

    energy = analysis.metric_tradeoff("energy_nj")
    cycles = analysis.metric_tradeoff("cycles")
    print()
    print(
        f"within the Pareto-optimal set: memory energy decreases by up to "
        f"{energy.pareto_gain_percent:.1f}% and execution time by up to "
        f"{cycles.pareto_gain_percent:.1f}% (paper: 82.4% and 5.4%)"
    )

    print()
    print(dashboard(database, x_metric="energy_nj", y_metric="cycles", title="VTC exploration"))
    paths = export_artifacts(database, args.out, basename="vtc")
    print("\nexported:")
    for kind, path in sorted(paths.items()):
        print(f"  {kind}: {path}")


if __name__ == "__main__":
    main()
