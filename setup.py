"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work on
minimal/offline environments where the ``wheel`` package (needed by the
PEP 660 editable-wheel path) is not available.
"""

from setuptools import setup

setup()
