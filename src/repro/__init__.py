"""repro — Automated exploration of Pareto-optimal DM allocator configurations.

Reproduction of Mamagkakis et al., "Automated Exploration of Pareto-optimal
Configurations in Parameterized Dynamic Memory Allocation for Embedded
Systems", DATE 2006.

The package is organised in five layers:

* :mod:`repro.allocator` — composable, simulated DM allocator library
  (pools, fit / free-list / coalescing / splitting policies, baselines).
* :mod:`repro.memhier`   — memory-hierarchy model (modules, pool mapping,
  energy and timing).
* :mod:`repro.profiling` — allocation traces, trace-driven profiler,
  metrics, profiling-log writer and fast parser.
* :mod:`repro.workloads` — application models (Easyport-style packet
  processing, MPEG-4 VTC decoding, synthetic generators).
* :mod:`repro.core`      — the paper's contribution: parameter spaces,
  automatic allocator construction, exhaustive/heuristic exploration,
  Pareto extraction and trade-off analysis.

Quick start::

    from repro import ComponentRef, ExperimentSpec, run_experiment

    spec = ExperimentSpec(workload=ComponentRef("easyport"),
                          space=ComponentRef("compact"), seed=1)
    result = run_experiment(spec)
    print(result.report())

The declarative layer (:mod:`repro.api`) is the stable surface: an
:class:`ExperimentSpec` names every component of a run through open
registries, and :class:`Experiment` executes it — the CLI is a thin shell
over exactly this.  The lower layers remain importable for fine-grained
control (build an :class:`ExplorationEngine` by hand, compose allocators
directly).
"""

from .api import (
    ComponentRef,
    Experiment,
    ExperimentSpec,
    RunResult,
    SpecError,
    run_experiment,
)
from .core import (
    METRIC_VERSION,
    AllocatorConfiguration,
    AllocatorFactory,
    EvaluationBackend,
    ExplorationEngine,
    ExplorationRecord,
    ExplorationSettings,
    IncrementalParetoFront,
    MergeError,
    Parameter,
    ParameterSpace,
    PoolSpec,
    ProcessPoolBackend,
    Provenance,
    ResultDatabase,
    ResultSink,
    ResultStore,
    SerialBackend,
    ShardSpec,
    StoreRecordSource,
    StreamingParetoSink,
    StreamingResultView,
    TradeoffAnalysis,
    build_allocator,
    compact_parameter_space,
    configuration_from_point,
    default_parameter_space,
    exploration_report,
    explore,
    merge_databases,
    pareto_front,
    smoke_parameter_space,
)
from .memhier import (
    EnergyModel,
    MemoryHierarchy,
    MemoryModule,
    PoolMapping,
    embedded_three_level,
    embedded_two_level,
)
from .profiling import (
    AllocationTrace,
    MetricSet,
    ProfileResult,
    Profiler,
    profile_trace,
)
from .version import __version__
from .workloads import (
    EasyportWorkload,
    VTCWorkload,
    easyport_reference_trace,
    vtc_reference_trace,
)

__all__ = [
    "AllocationTrace",
    "AllocatorConfiguration",
    "AllocatorFactory",
    "ComponentRef",
    "EasyportWorkload",
    "EnergyModel",
    "EvaluationBackend",
    "Experiment",
    "ExperimentSpec",
    "ExplorationEngine",
    "ExplorationRecord",
    "ExplorationSettings",
    "IncrementalParetoFront",
    "METRIC_VERSION",
    "MemoryHierarchy",
    "MemoryModule",
    "MergeError",
    "MetricSet",
    "Parameter",
    "ParameterSpace",
    "PoolMapping",
    "PoolSpec",
    "ProcessPoolBackend",
    "ProfileResult",
    "Profiler",
    "Provenance",
    "ResultDatabase",
    "ResultSink",
    "ResultStore",
    "RunResult",
    "SerialBackend",
    "ShardSpec",
    "SpecError",
    "StoreRecordSource",
    "StreamingParetoSink",
    "StreamingResultView",
    "TradeoffAnalysis",
    "VTCWorkload",
    "__version__",
    "build_allocator",
    "compact_parameter_space",
    "configuration_from_point",
    "default_parameter_space",
    "easyport_reference_trace",
    "embedded_three_level",
    "embedded_two_level",
    "exploration_report",
    "explore",
    "merge_databases",
    "pareto_front",
    "profile_trace",
    "run_experiment",
    "smoke_parameter_space",
    "vtc_reference_trace",
]
