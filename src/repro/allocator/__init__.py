"""Composable dynamic-memory allocator library (simulated).

Python counterpart of the paper's C++ template/mixin library: pools, fit
policies, free-list organisations, coalescing and splitting policies that
the exploration tool composes into thousands of candidate allocators.
"""

from .baselines import (
    BASELINE_BUILDERS,
    baseline_names,
    dlmalloc_allocator,
    kingsley_allocator,
    make_baseline,
    simple_freelist_allocator,
)
from .blocks import (
    BOUNDARY_TAG_BYTES,
    DEFAULT_ALIGNMENT,
    HEADER_BYTES,
    Block,
    BlockRange,
    BlockStatus,
    SizeClass,
    align_up,
    block_overhead,
    gross_block_size,
    power_of_two_size_classes,
)
from .buddy import BuddyPool
from .coalescing import (
    COALESCING_POLICIES,
    CoalescingPolicy,
    DeferredCoalesce,
    ImmediateCoalesce,
    NeverCoalesce,
    coalescing_policy_names,
    make_coalescing_policy,
)
from .composed import ComposedAllocator
from .errors import (
    AllocatorError,
    ConfigurationError,
    DoubleFreeError,
    InvalidFreeError,
    InvalidRequestError,
    OutOfMemoryError,
    PoolCapacityError,
)
from .fit import (
    FIT_POLICIES,
    BestFit,
    ExactFit,
    FirstFit,
    FitPolicy,
    FitResult,
    NextFit,
    WorstFit,
    fit_policy_names,
    make_fit_policy,
)
from .freelist import (
    FREE_LIST_POLICIES,
    AddressOrderedFreeList,
    FIFOFreeList,
    FreeList,
    LIFOFreeList,
    SizeOrderedFreeList,
    free_list_policy_names,
    make_free_list,
)
from .heap import DEFAULT_CHUNK_SIZE, AddressSpaceAllocator, PoolAddressSpace
from .pool import FixedSizePool, GeneralPool, Pool, RegionPool
from .segregated import SegregatedFitPool, exact_size_classes
from .slab import SlabPool
from .splitting import (
    SPLITTING_POLICIES,
    AlwaysSplit,
    NeverSplit,
    SplittingPolicy,
    ThresholdSplit,
    make_splitting_policy,
    splitting_policy_names,
)
from .stats import AccessCounter, AllocatorStats, PoolStats

__all__ = [
    "AccessCounter",
    "AddressOrderedFreeList",
    "AddressSpaceAllocator",
    "AllocatorError",
    "AllocatorStats",
    "AlwaysSplit",
    "BASELINE_BUILDERS",
    "BestFit",
    "Block",
    "BlockRange",
    "BlockStatus",
    "BOUNDARY_TAG_BYTES",
    "BuddyPool",
    "COALESCING_POLICIES",
    "CoalescingPolicy",
    "ComposedAllocator",
    "ConfigurationError",
    "DEFAULT_ALIGNMENT",
    "DEFAULT_CHUNK_SIZE",
    "DeferredCoalesce",
    "DoubleFreeError",
    "ExactFit",
    "FIFOFreeList",
    "FIT_POLICIES",
    "FREE_LIST_POLICIES",
    "FirstFit",
    "FitPolicy",
    "FitResult",
    "FixedSizePool",
    "FreeList",
    "GeneralPool",
    "HEADER_BYTES",
    "ImmediateCoalesce",
    "InvalidFreeError",
    "InvalidRequestError",
    "LIFOFreeList",
    "NeverCoalesce",
    "NeverSplit",
    "NextFit",
    "OutOfMemoryError",
    "Pool",
    "PoolAddressSpace",
    "PoolCapacityError",
    "PoolStats",
    "RegionPool",
    "SPLITTING_POLICIES",
    "SegregatedFitPool",
    "SizeClass",
    "SizeOrderedFreeList",
    "SlabPool",
    "SplittingPolicy",
    "ThresholdSplit",
    "WorstFit",
    "align_up",
    "baseline_names",
    "block_overhead",
    "coalescing_policy_names",
    "dlmalloc_allocator",
    "exact_size_classes",
    "fit_policy_names",
    "free_list_policy_names",
    "gross_block_size",
    "kingsley_allocator",
    "make_baseline",
    "make_coalescing_policy",
    "make_fit_policy",
    "make_free_list",
    "make_splitting_policy",
    "power_of_two_size_classes",
    "simple_freelist_allocator",
    "splitting_policy_names",
]
