"""General-purpose baseline allocators.

The paper motivates the exploration by contrasting custom allocators against
the "very restricted group of a few OS-based DM allocators".  This module
provides those comparison points as ready-made composed allocators:

* :func:`kingsley_allocator`  — segregated power-of-two free lists (the BSD
  / early-embedded-RTOS style allocator: very fast, fragmenting).
* :func:`dlmalloc_allocator`  — best-fit with address-ordered free list,
  boundary-tag immediate coalescing and splitting (Doug Lea's allocator
  family, the default behind most libc mallocs).
* :func:`simple_freelist_allocator` — single first-fit LIFO free list with
  no coalescing/splitting, the smallest allocator found in lightweight
  embedded kernels.

All baselines place their single pool in main memory, as an embedded OS
would, so that exploration results can quote "vs. the OS allocator" factors.
"""

from __future__ import annotations

from .composed import ComposedAllocator
from .heap import PoolAddressSpace
from .pool import GeneralPool
from .segregated import SegregatedFitPool


def kingsley_allocator(
    name: str = "kingsley",
    min_class_exp: int = 4,
    max_class_exp: int = 20,
    chunk_size: int = 4096,
) -> ComposedAllocator:
    """Kingsley-style power-of-two segregated-fit allocator.

    Every request is rounded up to the next power of two and served from
    that class's LIFO free list.  Allocation and free are O(1), but requests
    just above a power of two waste almost half the block.
    """
    from .blocks import power_of_two_size_classes

    pool = SegregatedFitPool(
        name=f"{name}-pool",
        size_classes=power_of_two_size_classes(min_class_exp, max_class_exp),
        address_space=PoolAddressSpace(name=f"{name}-pool"),
        chunk_size=chunk_size,
    )
    return ComposedAllocator([pool], name=name)


def dlmalloc_allocator(
    name: str = "dlmalloc",
    chunk_size: int = 65536,
) -> ComposedAllocator:
    """Doug-Lea-style allocator: best fit, address order, immediate coalescing.

    The most footprint-frugal of the baselines and the most expensive in
    metadata accesses, as every allocation scans the free list and every
    free probes its neighbours.
    """
    pool = GeneralPool(
        name=f"{name}-pool",
        address_space=PoolAddressSpace(name=f"{name}-pool"),
        free_list="address_ordered",
        fit="best_fit",
        coalescing="immediate",
        splitting="always",
        chunk_size=chunk_size,
    )
    return ComposedAllocator([pool], name=name)


def simple_freelist_allocator(
    name: str = "simple-freelist",
    chunk_size: int = 4096,
) -> ComposedAllocator:
    """Minimal embedded allocator: one LIFO list, first fit, no maintenance.

    This is the "what you get when you roll your own in an afternoon"
    allocator; it anchors the expensive end of the footprint axis.
    """
    pool = GeneralPool(
        name=f"{name}-pool",
        address_space=PoolAddressSpace(name=f"{name}-pool"),
        free_list="lifo",
        fit="first_fit",
        coalescing="never",
        splitting="never",
        chunk_size=chunk_size,
    )
    return ComposedAllocator([pool], name=name)


#: Registry of baseline builders keyed by the name used in benchmark tables.
BASELINE_BUILDERS = {
    "kingsley": kingsley_allocator,
    "dlmalloc": dlmalloc_allocator,
    "simple_freelist": simple_freelist_allocator,
}


def make_baseline(name: str) -> ComposedAllocator:
    """Build a baseline allocator by registry name."""
    try:
        builder = BASELINE_BUILDERS[name]
    except KeyError:
        valid = ", ".join(sorted(BASELINE_BUILDERS))
        raise ValueError(f"unknown baseline '{name}' (valid: {valid})") from None
    return builder()


def baseline_names() -> list[str]:
    """All registered baseline names, sorted for stable enumeration."""
    return sorted(BASELINE_BUILDERS)
