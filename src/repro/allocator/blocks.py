"""Block model for the simulated dynamic-memory allocator library.

A *block* is the unit of memory handed out by a pool.  The simulation keeps
an explicit object per block, mirroring the in-band metadata a real allocator
stores next to the payload:

* a header (size, status, pool tag) — ``HEADER_BYTES`` per block,
* an optional footer / boundary tag used by coalescing allocators
  (``BOUNDARY_TAG_BYTES``),
* the payload itself, padded to the pool's alignment.

Every read or write of this metadata is charged to the memory module that
backs the pool (see :mod:`repro.memhier.access`), which is how the
"memory accesses" metric of the paper is produced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Bytes of in-band header every block carries (size + status word).
HEADER_BYTES = 8
#: Extra bytes for a boundary tag (footer) when coalescing support is enabled.
BOUNDARY_TAG_BYTES = 4
#: Default payload alignment, in bytes.
DEFAULT_ALIGNMENT = 4


class BlockStatus(enum.Enum):
    """Lifecycle state of a block inside a pool."""

    FREE = "free"
    ALLOCATED = "allocated"


def align_up(size: int, alignment: int = DEFAULT_ALIGNMENT) -> int:
    """Round ``size`` up to the next multiple of ``alignment``.

    >>> align_up(13, 4)
    16
    >>> align_up(16, 4)
    16
    """
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    remainder = size % alignment
    if remainder == 0:
        return size
    return size + alignment - remainder


def block_overhead(with_boundary_tag: bool = False) -> int:
    """Per-block metadata overhead in bytes."""
    overhead = HEADER_BYTES
    if with_boundary_tag:
        overhead += BOUNDARY_TAG_BYTES
    return overhead


def gross_block_size(
    payload: int,
    alignment: int = DEFAULT_ALIGNMENT,
    with_boundary_tag: bool = False,
) -> int:
    """Total bytes a block occupies in its pool: aligned payload + metadata."""
    return align_up(payload, alignment) + block_overhead(with_boundary_tag)


@dataclass
class Block:
    """A contiguous region managed by a pool.

    Attributes
    ----------
    address:
        Start address of the block (header included) inside the simulated
        address space of the owning pool's memory module.
    size:
        Gross size of the block in bytes (header + payload + padding +
        optional footer).
    status:
        Whether the block is currently allocated or on a free list.
    requested_size:
        Payload size the application actually asked for; used to compute
        internal fragmentation.  Zero while the block is free.
    pool_name:
        Name of the owning pool (for diagnostics and per-pool accounting).
    """

    address: int
    size: int
    status: BlockStatus = BlockStatus.FREE
    requested_size: int = 0
    pool_name: str = ""

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"block address must be non-negative, got {self.address}")
        if self.size <= 0:
            raise ValueError(f"block size must be positive, got {self.size}")

    @property
    def end(self) -> int:
        """One-past-the-end address of the block."""
        return self.address + self.size

    @property
    def is_free(self) -> bool:
        return self.status is BlockStatus.FREE

    @property
    def is_allocated(self) -> bool:
        return self.status is BlockStatus.ALLOCATED

    @property
    def internal_fragmentation(self) -> int:
        """Bytes wasted inside the block (gross size minus requested payload).

        Only meaningful for allocated blocks; free blocks report zero.
        """
        if not self.is_allocated:
            return 0
        return max(0, self.size - self.requested_size)

    def mark_allocated(self, requested_size: int) -> None:
        """Transition the block to the allocated state."""
        if self.is_allocated:
            raise ValueError(f"block at {self.address:#x} is already allocated")
        if requested_size < 0:
            raise ValueError("requested size must be non-negative")
        self.status = BlockStatus.ALLOCATED
        self.requested_size = requested_size

    def mark_free(self) -> None:
        """Transition the block back to the free state."""
        if self.is_free:
            raise ValueError(f"block at {self.address:#x} is already free")
        self.status = BlockStatus.FREE
        self.requested_size = 0

    def adjacent_to(self, other: "Block") -> bool:
        """True when ``self`` and ``other`` are physically contiguous."""
        return self.end == other.address or other.end == self.address

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Block(addr={self.address:#x}, size={self.size}, "
            f"{self.status.value}, req={self.requested_size}, pool={self.pool_name!r})"
        )


@dataclass
class BlockRange:
    """A half-open address interval ``[start, end)`` used for pool layout."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"invalid range [{self.start}, {self.end})")

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def overlaps(self, other: "BlockRange") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass
class SizeClass:
    """A (min, max] payload-size bucket used by segregated-fit pools.

    The interval is inclusive on both ends to make explicit "dedicated pool
    for 74-byte blocks" (min == max == 74) configurations natural.
    """

    min_size: int
    max_size: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.min_size < 0 or self.max_size < self.min_size:
            raise ValueError(
                f"invalid size class [{self.min_size}, {self.max_size}]"
            )
        if not self.label:
            self.label = f"{self.min_size}-{self.max_size}B"

    def matches(self, size: int) -> bool:
        """True when a request of ``size`` bytes belongs to this class."""
        return self.min_size <= size <= self.max_size

    @property
    def is_exact(self) -> bool:
        """True for single-size (dedicated block size) classes."""
        return self.min_size == self.max_size


def power_of_two_size_classes(min_exp: int = 3, max_exp: int = 20) -> list[SizeClass]:
    """Kingsley-style power-of-two size classes.

    ``min_exp``/``max_exp`` are exponents: the classes cover
    ``(2^(e-1), 2^e]`` for ``e`` in ``[min_exp, max_exp]``, plus a first class
    for 1..2^min_exp bytes.
    """
    if min_exp < 1 or max_exp < min_exp:
        raise ValueError(f"invalid exponent range [{min_exp}, {max_exp}]")
    classes = [SizeClass(1, 2**min_exp, label=f"<={2**min_exp}B")]
    for exp in range(min_exp + 1, max_exp + 1):
        classes.append(
            SizeClass(2 ** (exp - 1) + 1, 2**exp, label=f"<={2**exp}B")
        )
    return classes


@dataclass
class FreeBlockIndexEntry:
    """Bookkeeping entry stored per free block in a free list.

    Separate from :class:`Block` so free-list policies can attach ordering
    metadata (insertion sequence numbers for FIFO/LIFO) without polluting the
    block model.
    """

    block: Block
    sequence: int = 0
    metadata: dict = field(default_factory=dict)
