"""Binary buddy pool.

Block sizes are powers of two; an allocation of ``s`` bytes is served by a
block of the smallest power of two ≥ gross size, splitting larger blocks
recursively.  On free, a block is merged with its *buddy* (the block it was
split from) whenever that buddy is also free, bounding external
fragmentation at the cost of up to ``log2(max/min)`` metadata operations per
allocate/free.  Buddy systems appear in the embedded-allocator design space
as a middle point between segregated fit (cheap, fragmenting) and
best-fit-with-coalescing (tight, expensive), which is why the exploration
includes them as a pool type parameter value.
"""

from __future__ import annotations

from .blocks import DEFAULT_ALIGNMENT, Block, gross_block_size
from .errors import InvalidRequestError, OutOfMemoryError
from .heap import PoolAddressSpace
from .pool import Pool


def _next_power_of_two(value: int) -> int:
    """Smallest power of two greater than or equal to ``value``."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    power = 1
    while power < value:
        power <<= 1
    return power


class BuddyPool(Pool):
    """Binary buddy allocator over a fixed-size arena.

    Parameters
    ----------
    arena_size:
        Total size of the buddy arena; rounded up to a power of two.
    min_block:
        Smallest block the system will split down to (power of two).
    """

    def __init__(
        self,
        name: str,
        arena_size: int = 1 << 20,
        min_block: int = 32,
        address_space: PoolAddressSpace | None = None,
        alignment: int = DEFAULT_ALIGNMENT,
    ) -> None:
        super().__init__(name, address_space, alignment)
        if arena_size <= 0 or min_block <= 0:
            raise ValueError("arena_size and min_block must be positive")
        self.arena_size = _next_power_of_two(arena_size)
        self.min_block = _next_power_of_two(min_block)
        if self.min_block > self.arena_size:
            raise ValueError("min_block cannot exceed arena_size")
        self.max_block_size = self.arena_size
        # free_lists[order] holds free block start offsets of size min_block << order.
        self._max_order = (self.arena_size // self.min_block).bit_length() - 1
        self._free_offsets: list[list[int]] = [[] for _ in range(self._max_order + 1)]
        self._arena_base: int | None = None
        self._order_of_block: dict[int, int] = {}

    def _ensure_arena(self) -> None:
        """Reserve the whole arena lazily on first use."""
        if self._arena_base is not None:
            return
        grown = self.space.grow_exact(self.arena_size)
        self.stats.grow_footprint(self.arena_size)
        self._arena_base = grown.start
        self._free_offsets[self._max_order].append(0)
        self.stats.accesses.write(1)

    def _order_for(self, gross: int) -> int:
        size = max(self.min_block, _next_power_of_two(gross))
        if size > self.arena_size:
            raise InvalidRequestError(
                f"request of {gross} bytes exceeds buddy arena of {self.arena_size} bytes"
            )
        return (size // self.min_block).bit_length() - 1

    def block_size_for_order(self, order: int) -> int:
        return self.min_block << order

    def accepts(self, size: int) -> bool:
        if size <= 0:
            return False
        return gross_block_size(size, self.alignment) <= self.arena_size

    def allocate(self, size: int) -> int:
        self._check_size(size)
        gross = gross_block_size(size, self.alignment)
        if not self.accepts(size):
            self.stats.failed_allocs += 1
            raise InvalidRequestError(
                f"request of {size} bytes exceeds buddy arena of {self.arena_size} bytes"
            )
        self._ensure_arena()
        order = self._order_for(gross)
        # Find the smallest order with a free block ≥ the request.
        found_order = None
        for candidate in range(order, self._max_order + 1):
            self.stats.accesses.read(1)
            if self._free_offsets[candidate]:
                found_order = candidate
                break
        if found_order is None:
            self.stats.failed_allocs += 1
            raise OutOfMemoryError(size, pool=self.name, capacity=self.arena_size)
        offset = self._free_offsets[found_order].pop()
        self.stats.accesses.write(1)
        # Split down to the requested order, releasing the upper buddies.
        while found_order > order:
            found_order -= 1
            buddy_offset = offset + self.block_size_for_order(found_order)
            self._free_offsets[found_order].append(buddy_offset)
            self.stats.splits += 1
            self.stats.accesses.write(2)
        block_size = self.block_size_for_order(order)
        block = Block(self._arena_base + offset, block_size, pool_name=self.name)
        self._order_of_block[block.address] = order
        self.stats.accesses.write(1)  # header write
        self._register_live(block, size)
        return block.address

    def free(self, address: int) -> None:
        block = self._take_live(address)
        self.stats.accesses.read(1)
        order = self._order_of_block.pop(block.address)
        offset = block.address - self._arena_base
        # Merge with the buddy while it is free, up to the whole arena.
        while order < self._max_order:
            buddy_offset = offset ^ self.block_size_for_order(order)
            self.stats.accesses.read(1)
            if buddy_offset in self._free_offsets[order]:
                self._free_offsets[order].remove(buddy_offset)
                self.stats.accesses.write(1)
                offset = min(offset, buddy_offset)
                order += 1
                self.stats.coalesces += 1
            else:
                break
        self._free_offsets[order].append(offset)
        self.stats.accesses.write(1)

    def reset(self) -> None:
        super().reset()
        self._free_offsets = [[] for _ in range(self._max_order + 1)]
        self._arena_base = None
        self._order_of_block = {}

    @property
    def free_bytes(self) -> int:
        """Total bytes currently on the buddy free lists."""
        return sum(
            len(offsets) * self.block_size_for_order(order)
            for order, offsets in enumerate(self._free_offsets)
        )
