"""Coalescing policies: whether/when adjacent free blocks are merged.

Coalescing reduces external fragmentation (smaller footprint, fewer pool
growths) but pays extra metadata accesses per free: the freed block's
physical neighbours must be located and, when also free, merged and their
free-list entries fixed up.  The exploration sweeps three policies found in
real allocators:

* ``never``     — free blocks are recycled at their freed size only.
* ``immediate`` — neighbours are merged on every free (dlmalloc style).
* ``deferred``  — frees are cheap; a full merge pass runs every N frees
                  (amortises the cost, keeps fragmentation bounded).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from .blocks import Block
from .errors import ConfigurationError
from .freelist import AddressOrderedFreeList, FreeList

#: Predicate deciding whether two physically adjacent blocks (passed in
#: address order: lower, upper) may be merged.  Pools use it to forbid
#: merging across chunk boundaries, since in a real heap separately acquired
#: chunks are not guaranteed to be contiguous.
MergePredicate = Callable[[Block, Block], bool]


def _merge_allowed(may_merge: MergePredicate | None, lower: Block, upper: Block) -> bool:
    if may_merge is None:
        return True
    return may_merge(lower, upper)


@dataclass
class CoalesceResult:
    """Outcome of a coalescing step for one freed block.

    ``block`` is the (possibly merged, larger) block that should be pushed
    onto the free list; ``reads``/``writes`` are the metadata accesses the
    step cost; ``merges`` counts how many neighbour merges happened.
    """

    block: Block
    reads: int = 0
    writes: int = 0
    merges: int = 0


class CoalescingPolicy:
    """Base class for coalescing policies."""

    policy_name = "abstract"

    def on_free(
        self,
        block: Block,
        free_list: FreeList,
        may_merge: MergePredicate | None = None,
    ) -> CoalesceResult:
        """Process a block being freed, before it is pushed on ``free_list``."""
        raise NotImplementedError

    def maintenance(
        self,
        free_list: FreeList,
        may_merge: MergePredicate | None = None,
    ) -> CoalesceResult | None:
        """Optional periodic pass (used by deferred coalescing)."""
        return None

    def reset(self) -> None:
        """Clear per-run state."""


def _find_neighbours(
    block: Block, free_list: FreeList
) -> tuple[Block | None, Block | None, int]:
    """Locate the physically adjacent free blocks of ``block``.

    Returns ``(predecessor, successor, reads)`` where ``reads`` is the number
    of free-list nodes examined.  Address-ordered lists locate neighbours with
    a bounded probe (boundary-tag style, 2 reads); any other organisation has
    to scan the whole list, which is precisely why the combination of
    coalescing with unordered lists is expensive — a trade-off the
    exploration is meant to expose.
    """
    if isinstance(free_list, AddressOrderedFreeList):
        predecessor, successor = free_list.find_adjacent(block)
        return predecessor, successor, 2
    predecessor: Block | None = None
    successor: Block | None = None
    reads = 0
    for candidate in free_list.iterate():
        reads += 1
        if candidate.end == block.address:
            predecessor = candidate
        elif block.end == candidate.address:
            successor = candidate
        if predecessor is not None and successor is not None:
            break
    return predecessor, successor, reads


def _merge(into: Block, other: Block) -> None:
    """Merge ``other`` into ``into`` (they must be physically adjacent)."""
    if not into.adjacent_to(other):
        raise ValueError(
            f"cannot merge non-adjacent blocks at {into.address:#x} and {other.address:#x}"
        )
    start = min(into.address, other.address)
    into.size = into.size + other.size
    into.address = start


class NeverCoalesce(CoalescingPolicy):
    """Free blocks are never merged.

    The cheapest free path (no neighbour lookups) and the policy of choice
    for dedicated fixed-size pools, where merging would be pointless.  In a
    general pool it maximises external fragmentation.
    """

    policy_name = "never"

    def on_free(
        self,
        block: Block,
        free_list: FreeList,
        may_merge: MergePredicate | None = None,
    ) -> CoalesceResult:
        return CoalesceResult(block=block)


class ImmediateCoalesce(CoalescingPolicy):
    """Merge with free neighbours on every free (boundary-tag style)."""

    policy_name = "immediate"

    def on_free(
        self,
        block: Block,
        free_list: FreeList,
        may_merge: MergePredicate | None = None,
    ) -> CoalesceResult:
        predecessor, successor, reads = _find_neighbours(block, free_list)
        writes = 0
        merges = 0
        merged = block
        if predecessor is not None and _merge_allowed(may_merge, predecessor, merged):
            free_list.remove(predecessor)
            _merge(merged, predecessor)
            writes += 2  # unlink + header rewrite
            merges += 1
        if successor is not None and _merge_allowed(may_merge, merged, successor):
            free_list.remove(successor)
            _merge(merged, successor)
            writes += 2
            merges += 1
        return CoalesceResult(block=merged, reads=reads, writes=writes, merges=merges)


class DeferredCoalesce(CoalescingPolicy):
    """Frees are O(1); every ``interval`` frees a full merge pass runs.

    The merge pass sorts the free list by address, merges every run of
    adjacent blocks, and rebuilds the list — the accesses charged are one
    read per node plus one write per merged node, matching a linked-list
    sweep.
    """

    policy_name = "deferred"

    def __init__(self, interval: int = 32) -> None:
        if interval <= 0:
            raise ValueError(f"deferred coalescing interval must be positive, got {interval}")
        self.interval = interval
        self._frees_since_pass = 0

    def reset(self) -> None:
        self._frees_since_pass = 0

    def on_free(
        self,
        block: Block,
        free_list: FreeList,
        may_merge: MergePredicate | None = None,
    ) -> CoalesceResult:
        self._frees_since_pass += 1
        return CoalesceResult(block=block)

    def maintenance(
        self,
        free_list: FreeList,
        may_merge: MergePredicate | None = None,
    ) -> CoalesceResult | None:
        if self._frees_since_pass < self.interval:
            return None
        self._frees_since_pass = 0
        blocks = sorted(free_list.blocks(), key=lambda b: b.address)
        reads = len(blocks)
        writes = 0
        merges = 0
        if not blocks:
            return CoalesceResult(block=None, reads=0, writes=0, merges=0)  # type: ignore[arg-type]
        free_list.clear()
        current = blocks[0]
        survivors = []
        for block in blocks[1:]:
            if current.end == block.address and _merge_allowed(may_merge, current, block):
                _merge(current, block)
                writes += 1
                merges += 1
            else:
                survivors.append(current)
                current = block
        survivors.append(current)
        for block in survivors:
            free_list.push(block)
        # Rebuilding the list writes one link per surviving node.
        writes += len(survivors)
        result = CoalesceResult(block=survivors[-1], reads=reads, writes=writes, merges=merges)
        return result


#: Registry used by the allocator factory: policy name -> class.
COALESCING_POLICIES: dict[str, type[CoalescingPolicy]] = {
    NeverCoalesce.policy_name: NeverCoalesce,
    ImmediateCoalesce.policy_name: ImmediateCoalesce,
    DeferredCoalesce.policy_name: DeferredCoalesce,
}


def make_coalescing_policy(policy: str, **kwargs) -> CoalescingPolicy:
    """Instantiate a coalescing policy by name.

    ``kwargs`` are forwarded to the policy constructor (e.g. ``interval``
    for deferred coalescing).
    """
    try:
        cls = COALESCING_POLICIES[policy]
    except KeyError:
        valid = ", ".join(sorted(COALESCING_POLICIES))
        raise ConfigurationError(
            f"unknown coalescing policy '{policy}' (valid: {valid})"
        ) from None
    return cls(**kwargs)


def coalescing_policy_names() -> list[str]:
    """All registered coalescing-policy names, sorted for stable enumeration."""
    return sorted(COALESCING_POLICIES)
