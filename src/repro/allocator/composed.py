"""Composed allocator: routes requests across an ordered bank of pools.

This is the object the DATE'06 tool actually builds for every point of the
parameter space: a front-end that dispatches each ``malloc`` to the first
pool willing to serve the request size (dedicated pools first, a general
fallback pool last) and remembers, per live address, which pool must receive
the matching ``free``.  The dispatch table lookup itself costs one metadata
read per operation, mirroring the indirect call/size check of the generated
C++ allocator.
"""

from __future__ import annotations

from collections.abc import Iterable

from .errors import ConfigurationError, InvalidFreeError, OutOfMemoryError
from .pool import Pool
from .stats import AllocatorStats, PoolStats


class ComposedAllocator:
    """An ordered bank of pools behind a single malloc/free interface.

    Parameters
    ----------
    pools:
        Pools in dispatch order.  A request is offered to each pool in turn
        (``Pool.accepts``); the first one that accepts serves it.  If that
        pool is out of capacity the request *falls back* to the next
        accepting pool, which models dedicated scratchpad pools spilling to
        main memory.
    name:
        Identifier used in profiling logs and result databases.
    """

    def __init__(self, pools: Iterable[Pool], name: str = "composed") -> None:
        self.pools = list(pools)
        if not self.pools:
            raise ConfigurationError("a composed allocator needs at least one pool")
        names = [pool.name for pool in self.pools]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate pool names: {names}")
        self.name = name
        self._owner_of: dict[int, Pool] = {}
        self._dispatch_accesses = 0
        # Size -> ordered tuple of accepting pools.  ``Pool.accepts`` is a
        # pure function of the request size and the pool's static
        # configuration (true for every pool family in the library), so the
        # routing table stays valid for the allocator's whole lifetime,
        # across :meth:`reset` included.  Real traces have a handful of
        # distinct sizes, so this replaces a per-event accepts() scan with
        # one dict hit.
        self._route_cache: dict[int, tuple[Pool, ...]] = {}

    # -- allocation interface --------------------------------------------

    def routed_pools(self, size: int) -> tuple[Pool, ...]:
        """Pools accepting ``size`` bytes, in dispatch order (memoised)."""
        route = self._route_cache.get(size)
        if route is None:
            route = tuple(pool for pool in self.pools if pool.accepts(size))
            self._route_cache[size] = route
        return route

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the simulated block address."""
        # The generated allocator dispatches through a size-indexed table:
        # one metadata read per operation, independent of the pool count.
        self._dispatch_accesses += 1
        route = self.routed_pools(size)
        last_oom: OutOfMemoryError | None = None
        for pool in route:
            try:
                address = pool.allocate(size)
            except OutOfMemoryError as exc:
                # Capacity-limited pool (e.g. scratchpad) is full: spill to
                # the next pool that accepts the size.
                last_oom = exc
                continue
            self._owner_of[address] = pool
            return address
        if last_oom is not None:
            raise last_oom
        raise OutOfMemoryError(size, pool=self.name)

    def free(self, address: int) -> None:
        """Free a block previously returned by :meth:`malloc`."""
        self._dispatch_accesses += 1
        pool = self._owner_of.pop(address, None)
        if pool is None:
            raise InvalidFreeError(address, reason="unknown to this allocator")
        pool.free(address)

    # -- introspection ------------------------------------------------------

    @property
    def live_blocks(self) -> int:
        """Number of currently outstanding allocations."""
        return len(self._owner_of)

    def pool_named(self, name: str) -> Pool:
        """Return the pool called ``name`` (raises KeyError when missing)."""
        for pool in self.pools:
            if pool.name == name:
                return pool
        raise KeyError(f"no pool named '{name}' in allocator '{self.name}'")

    def owner_of(self, address: int) -> Pool | None:
        """Pool currently owning the live block at ``address`` (or ``None``)."""
        return self._owner_of.get(address)

    # -- statistics -----------------------------------------------------------

    @property
    def stats(self) -> AllocatorStats:
        """Aggregated per-pool statistics (dispatch accesses folded in)."""
        aggregate = AllocatorStats()
        for pool in self.pools:
            aggregate.per_pool[pool.name] = pool.stats
        return aggregate

    @property
    def dispatch_accesses(self) -> int:
        """Metadata reads spent routing requests to pools."""
        return self._dispatch_accesses

    @property
    def total_accesses(self) -> int:
        """All metadata accesses: per-pool work plus dispatch overhead."""
        return self.stats.total_accesses + self._dispatch_accesses

    @property
    def total_footprint(self) -> int:
        return self.stats.total_footprint

    @property
    def total_peak_footprint(self) -> int:
        return self.stats.total_peak_footprint

    def footprint_by_pool(self) -> dict[str, int]:
        return {pool.name: pool.stats.footprint for pool in self.pools}

    def peak_footprint_by_pool(self) -> dict[str, int]:
        return {pool.name: pool.stats.peak_footprint for pool in self.pools}

    def accesses_by_pool(self) -> dict[str, int]:
        return {pool.name: pool.stats.accesses.total for pool in self.pools}

    def stats_for(self, pool_name: str) -> PoolStats:
        return self.pool_named(pool_name).stats

    def reset(self) -> None:
        """Reset every pool and the dispatch table (between exploration runs)."""
        for pool in self.pools:
            pool.reset()
        self._owner_of.clear()
        self._dispatch_accesses = 0

    def check_all_freed(self) -> bool:
        """True when the application released every block (leak check)."""
        return not self._owner_of

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        pool_list = ", ".join(pool.name for pool in self.pools)
        return f"ComposedAllocator(name={self.name!r}, pools=[{pool_list}])"
