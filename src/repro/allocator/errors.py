"""Exception types raised by the simulated dynamic-memory allocator library.

The real system (a C++ template library) reports misuse through assertions
and crashes; the simulation turns every misuse into a distinct, documented
exception so tests and the exploration engine can reason about them.
"""

from __future__ import annotations


class AllocatorError(Exception):
    """Base class for every allocator-related error."""


class OutOfMemoryError(AllocatorError):
    """Raised when a pool (or the memory module backing it) cannot satisfy a
    request and no fallback pool is available."""

    def __init__(self, requested: int, pool: str = "", capacity: int | None = None):
        self.requested = requested
        self.pool = pool
        self.capacity = capacity
        detail = f"cannot allocate {requested} bytes"
        if pool:
            detail += f" from pool '{pool}'"
        if capacity is not None:
            detail += f" (capacity {capacity} bytes)"
        super().__init__(detail)


class InvalidFreeError(AllocatorError):
    """Raised when ``free`` is called with an address that was never returned
    by ``malloc`` (or belongs to a different pool)."""

    def __init__(self, address: int, reason: str = "address was never allocated"):
        self.address = address
        super().__init__(f"invalid free of address {address:#x}: {reason}")


class DoubleFreeError(InvalidFreeError):
    """Raised when an already-freed block is freed again."""

    def __init__(self, address: int):
        super().__init__(address, reason="block already freed")


class InvalidRequestError(AllocatorError):
    """Raised for malformed allocation requests (zero/negative sizes, sizes
    exceeding the addressable range, misaligned explicit placements...)."""


class ConfigurationError(AllocatorError):
    """Raised when an allocator is composed from an inconsistent
    configuration (overlapping size ranges, pools mapped to missing memory
    modules, unknown policy names...)."""


class PoolCapacityError(ConfigurationError):
    """Raised when a pool's declared capacity does not fit in the memory
    module it is mapped to."""

    def __init__(self, pool: str, required: int, module: str, available: int):
        self.pool = pool
        self.required = required
        self.module = module
        self.available = available
        super().__init__(
            f"pool '{pool}' requires {required} bytes but memory module "
            f"'{module}' only has {available} bytes available"
        )
