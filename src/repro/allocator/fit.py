"""Fit policies: how a pool chooses a free block for a request.

Together with the free-list order, the fit policy determines the number of
memory accesses a search costs and the quality (internal/external
fragmentation) of the chosen block — the central access/footprint trade-off
the DATE'06 exploration sweeps.

Each policy's :meth:`FitPolicy.select` returns a :class:`FitResult` carrying
the chosen block (or ``None``) and the number of free-list nodes visited, so
the pool can charge one metadata read per visited node.
"""

from __future__ import annotations

from dataclasses import dataclass

from .blocks import Block
from .errors import ConfigurationError
from .freelist import FreeList


@dataclass
class FitResult:
    """Outcome of a fit search."""

    block: Block | None
    visits: int

    @property
    def found(self) -> bool:
        return self.block is not None


class FitPolicy:
    """Base class for fit policies."""

    #: Registry name used by configurations (overridden by subclasses).
    policy_name = "abstract"

    def select(self, free_list: FreeList, size: int) -> FitResult:
        """Pick a free block of at least ``size`` bytes from ``free_list``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-run state (e.g. next-fit's roving pointer)."""


class FirstFit(FitPolicy):
    """Take the first block large enough, in free-list order."""

    policy_name = "first_fit"

    def select(self, free_list: FreeList, size: int) -> FitResult:
        visits = 0
        for block in free_list.iterate():
            visits += 1
            if block.size >= size:
                return FitResult(block, visits)
        return FitResult(None, visits)


class NextFit(FitPolicy):
    """First fit resuming from where the previous search stopped.

    The roving pointer is kept as an index into the free-list order; the
    search wraps around once, visiting every node at most one time.
    """

    policy_name = "next_fit"

    def __init__(self) -> None:
        self._rover = 0

    def reset(self) -> None:
        self._rover = 0

    def select(self, free_list: FreeList, size: int) -> FitResult:
        blocks = free_list.blocks()
        count = len(blocks)
        if count == 0:
            return FitResult(None, 0)
        start = self._rover % count
        visits = 0
        for offset in range(count):
            index = (start + offset) % count
            visits += 1
            block = blocks[index]
            if block.size >= size:
                self._rover = (index + 1) % count
                return FitResult(block, visits)
        return FitResult(None, visits)


class BestFit(FitPolicy):
    """Scan the whole list and take the smallest block that fits.

    Minimises wasted space (footprint) at the cost of visiting every free
    block on each allocation — the classic accesses-for-footprint trade.
    A size-ordered free list short-circuits the scan at the first fit since
    later blocks can only be larger.
    """

    policy_name = "best_fit"

    def select(self, free_list: FreeList, size: int) -> FitResult:
        size_ordered = getattr(free_list, "policy_name", "") == "size_ordered"
        best: Block | None = None
        visits = 0
        for block in free_list.iterate():
            visits += 1
            if block.size < size:
                continue
            if size_ordered:
                return FitResult(block, visits)
            if best is None or block.size < best.size:
                best = block
                if best.size == size:
                    break
        return FitResult(best, visits)


class WorstFit(FitPolicy):
    """Scan the whole list and take the largest block.

    Included for completeness of the exploration space; it keeps remainder
    fragments large (sometimes reducing unusable slivers) but typically
    inflates footprint.
    """

    policy_name = "worst_fit"

    def select(self, free_list: FreeList, size: int) -> FitResult:
        worst: Block | None = None
        visits = 0
        for block in free_list.iterate():
            visits += 1
            if block.size >= size and (worst is None or block.size > worst.size):
                worst = block
        return FitResult(worst, visits)


class ExactFit(FitPolicy):
    """Only accept a block whose size matches the request exactly.

    Used by dedicated single-size pools where every free block has the same
    size: the first block always matches, making allocation O(1).  In a
    variable-size pool an exact fit frequently misses and forces pool
    growth, which the exploration exposes as a footprint penalty.
    """

    policy_name = "exact_fit"

    def select(self, free_list: FreeList, size: int) -> FitResult:
        visits = 0
        for block in free_list.iterate():
            visits += 1
            if block.size == size:
                return FitResult(block, visits)
        return FitResult(None, visits)


#: Registry used by the allocator factory: policy name -> class.
FIT_POLICIES: dict[str, type[FitPolicy]] = {
    FirstFit.policy_name: FirstFit,
    NextFit.policy_name: NextFit,
    BestFit.policy_name: BestFit,
    WorstFit.policy_name: WorstFit,
    ExactFit.policy_name: ExactFit,
}


def make_fit_policy(policy: str) -> FitPolicy:
    """Instantiate a fit policy by name (raises ConfigurationError if unknown)."""
    try:
        return FIT_POLICIES[policy]()
    except KeyError:
        valid = ", ".join(sorted(FIT_POLICIES))
        raise ConfigurationError(
            f"unknown fit policy '{policy}' (valid: {valid})"
        ) from None


def fit_policy_names() -> list[str]:
    """All registered fit-policy names, sorted for stable enumeration."""
    return sorted(FIT_POLICIES)
