"""Free-list organisations.

One of the parameter axes of the DATE'06 exploration is how a pool keeps its
free blocks: the order determines both how expensive a search is (memory
accesses charged per visited node) and how good the selected block is
(fragmentation, hence footprint).  The library offers the organisations used
by real allocators:

* ``lifo``            — singly linked stack, newest free block first.
* ``fifo``            — queue, oldest free block first.
* ``address_ordered`` — sorted by block address (best for coalescing and for
                        low fragmentation, more expensive to insert).
* ``size_ordered``    — sorted by block size ascending (turns first fit into
                        an approximation of best fit).

The simulation keeps the lists as Python lists of :class:`Block` references,
but charges accesses the way the in-memory linked structure of the C++
library would: one read per node visited during a search or an ordered
insertion, one write per link update.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from .blocks import Block
from .errors import ConfigurationError


class FreeList:
    """Base class for free-list organisations.

    Subclasses decide where :meth:`push` inserts and in which order
    :meth:`iterate` walks the blocks.  ``insertion_cost`` reports how many
    node visits the insertion required so the pool can charge accesses.
    """

    #: Registry name used by configurations (overridden by subclasses).
    policy_name = "abstract"

    def __init__(self) -> None:
        self._blocks: list[Block] = []
        self._sequence = 0
        self.last_insertion_visits = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block: Block) -> bool:
        return any(entry is block for entry in self._blocks)

    def blocks(self) -> list[Block]:
        """Return the blocks in storage order (a copy; safe to mutate)."""
        return list(self._blocks)

    def iterate(self) -> Iterator[Block]:
        """Yield blocks in the order a search should visit them."""
        return iter(self._blocks)

    def push(self, block: Block) -> None:
        """Insert a freed block.  Must be implemented by subclasses."""
        raise NotImplementedError

    def remove(self, block: Block) -> None:
        """Remove ``block`` (identity comparison) from the list."""
        for index, entry in enumerate(self._blocks):
            if entry is block:
                del self._blocks[index]
                return
        raise ValueError(f"block at {block.address:#x} is not on this free list")

    def pop_front(self) -> Block:
        """Remove and return the first block in search order."""
        if not self._blocks:
            raise IndexError("pop from empty free list")
        return self._blocks.pop(0)

    def clear(self) -> None:
        self._blocks.clear()

    @property
    def total_free_bytes(self) -> int:
        return sum(block.size for block in self._blocks)

    def largest_block(self) -> Block | None:
        if not self._blocks:
            return None
        # Walk in search order so subclasses with a different internal
        # storage order (LIFO) resolve size ties identically to a search.
        return max(self.iterate(), key=lambda block: block.size)

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence


class LIFOFreeList(FreeList):
    """Stack order: the most recently freed block is reused first.

    Cheapest insertion (O(1), one link write) and best cache behaviour on
    real hardware; tends to increase fragmentation for variable-size pools.

    The stack is stored oldest-first internally so that both :meth:`push`
    and :meth:`pop_front` touch the tail of the Python list (amortised O(1)
    instead of the O(n) head insertion of a naive list); every observable
    order — search order, :meth:`blocks`, :meth:`pop_front` — remains
    newest-first.
    """

    policy_name = "lifo"

    def push(self, block: Block) -> None:
        self._blocks.append(block)
        self.last_insertion_visits = 1

    def iterate(self) -> Iterator[Block]:
        return reversed(self._blocks)

    def blocks(self) -> list[Block]:
        return list(reversed(self._blocks))

    def pop_front(self) -> Block:
        if not self._blocks:
            raise IndexError("pop from empty free list")
        return self._blocks.pop()


class FIFOFreeList(FreeList):
    """Queue order: the oldest free block is reused first."""

    policy_name = "fifo"

    def push(self, block: Block) -> None:
        self._blocks.append(block)
        self.last_insertion_visits = 1


class AddressOrderedFreeList(FreeList):
    """Blocks kept sorted by ascending address.

    An ordered singly-linked list must walk, on average, half the list to
    find the insertion point, which is what ``last_insertion_visits``
    reports; searches then benefit from improved coalescing opportunities
    and lower fragmentation.
    """

    policy_name = "address_ordered"

    def push(self, block: Block) -> None:
        addresses = [entry.address for entry in self._blocks]
        index = bisect.bisect_left(addresses, block.address)
        self._blocks.insert(index, block)
        # A linked-list walk visits every node up to the insertion point
        # (at least one visit even when inserting at the head).
        self.last_insertion_visits = max(1, index)

    def find_adjacent(self, block: Block) -> tuple[Block | None, Block | None]:
        """Return the free blocks physically before and after ``block``.

        Only meaningful for address-ordered lists where neighbours are
        cheap to locate; other organisations perform a full scan in the
        coalescing policy instead.
        """
        addresses = [entry.address for entry in self._blocks]
        index = bisect.bisect_left(addresses, block.address)
        predecessor = self._blocks[index - 1] if index > 0 else None
        successor = self._blocks[index] if index < len(self._blocks) else None
        if predecessor is not None and predecessor.end != block.address:
            predecessor = None
        if successor is not None and block.end != successor.address:
            successor = None
        return predecessor, successor


class SizeOrderedFreeList(FreeList):
    """Blocks kept sorted by ascending size (ties broken by address).

    Turns a first-fit search into best fit while keeping the search cheap;
    insertion pays the ordered-walk cost like the address-ordered list.
    """

    policy_name = "size_ordered"

    def push(self, block: Block) -> None:
        keys = [(entry.size, entry.address) for entry in self._blocks]
        index = bisect.bisect_left(keys, (block.size, block.address))
        self._blocks.insert(index, block)
        self.last_insertion_visits = max(1, index)


#: Registry used by the allocator factory: policy name -> class.
FREE_LIST_POLICIES: dict[str, type[FreeList]] = {
    LIFOFreeList.policy_name: LIFOFreeList,
    FIFOFreeList.policy_name: FIFOFreeList,
    AddressOrderedFreeList.policy_name: AddressOrderedFreeList,
    SizeOrderedFreeList.policy_name: SizeOrderedFreeList,
}


def make_free_list(policy: str) -> FreeList:
    """Instantiate a free list by policy name.

    Raises :class:`ConfigurationError` for unknown names so that a typo in a
    parameter array fails loudly during configuration construction rather
    than mid-exploration.
    """
    try:
        return FREE_LIST_POLICIES[policy]()
    except KeyError:
        valid = ", ".join(sorted(FREE_LIST_POLICIES))
        raise ConfigurationError(
            f"unknown free-list policy '{policy}' (valid: {valid})"
        ) from None


def free_list_policy_names() -> list[str]:
    """All registered free-list policy names, sorted for stable enumeration."""
    return sorted(FREE_LIST_POLICIES)


def validate_free_list(blocks: Iterable[Block]) -> None:
    """Sanity check used by tests: no duplicated or allocated blocks."""
    seen: set[int] = set()
    for block in blocks:
        if block.is_allocated:
            raise AssertionError(f"allocated block {block!r} found on a free list")
        if id(block) in seen:
            raise AssertionError(f"block {block!r} appears twice on a free list")
        seen.add(id(block))
