"""Simulated backing store (address space) for allocator pools.

Each pool owns a :class:`PoolAddressSpace`: a contiguous region of the memory
module the pool is mapped to.  The region starts empty and grows in
``chunk_size`` increments when the pool needs more raw memory — exactly like
``sbrk``/``mmap`` growth of a real heap, and like the "pool" abstraction of
the paper's C++ library.  The high-water mark of the region is the pool's
contribution to the *memory footprint* metric.

The address space is purely a bookkeeping object: no bytes are stored, only
interval arithmetic, because the simulation never needs the payload contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .blocks import BlockRange
from .errors import OutOfMemoryError

#: Default growth increment for pools that do not specify one (4 KB page).
DEFAULT_CHUNK_SIZE = 4096

#: Address stride separating pools that share an *unbounded* memory module,
#: so their simulated address ranges can never overlap (1 TiB apart).
UNBOUNDED_POOL_STRIDE = 1 << 40

#: Start of the address region used for auto-assigned pool bases (pools
#: created without an explicit base or mapping).  Far above anything a
#: memory-hierarchy mapping hands out, so the two can never collide.
AUTO_BASE_START = 1 << 55

#: Module-level counter for auto-assigned bases (see PoolAddressSpace).
_auto_base_counter = 0


def _next_auto_base() -> int:
    """Return the next auto-assigned base address for a standalone pool."""
    global _auto_base_counter
    base = AUTO_BASE_START + _auto_base_counter * UNBOUNDED_POOL_STRIDE
    _auto_base_counter += 1
    return base


@dataclass
class PoolAddressSpace:
    """A growable, bounded region of simulated memory owned by one pool.

    Parameters
    ----------
    base:
        Start address of the region inside the owning memory module.
        ``None`` (the default) auto-assigns a base in a reserved high
        address region so that standalone pools created without a
        memory-hierarchy mapping never produce colliding block addresses.
    capacity:
        Maximum bytes the region may grow to.  ``None`` means unbounded
        (useful for main-memory pools whose practical bound is huge).
    chunk_size:
        Granularity of growth requests.  Real pools grab whole pages or
        larger chunks from the OS; growing byte-by-byte would be unrealistic
        and would hide external fragmentation.
    name:
        Owning pool's name, used in error messages.
    """

    base: int | None = None
    capacity: int | None = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    name: str = ""
    _brk: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.base is None:
            self.base = _next_auto_base()
        if self.base < 0:
            raise ValueError(f"base address must be non-negative, got {self.base}")
        if self.capacity is not None and self.capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {self.capacity}")
        if self.chunk_size <= 0:
            raise ValueError(f"chunk size must be positive, got {self.chunk_size}")

    @property
    def used(self) -> int:
        """Bytes currently reserved (the region's high-water mark)."""
        return self._brk

    @property
    def limit(self) -> int | None:
        """Absolute end address the region may grow to (``None`` = unbounded)."""
        if self.capacity is None:
            return None
        return self.base + self.capacity

    @property
    def brk_address(self) -> int:
        """Current break (first address past the reserved region)."""
        return self.base + self._brk

    def remaining(self) -> int | None:
        """Bytes still available before hitting capacity (``None`` = unbounded)."""
        if self.capacity is None:
            return None
        return self.capacity - self._brk

    def can_grow(self, nbytes: int) -> bool:
        """True when the region can be extended by at least ``nbytes``."""
        if nbytes < 0:
            raise ValueError("growth must be non-negative")
        if self.capacity is None:
            return True
        return self._brk + nbytes <= self.capacity

    def grow(self, nbytes: int) -> BlockRange:
        """Extend the region by at least ``nbytes`` (rounded up to chunks).

        Returns the newly reserved address range.  Raises
        :class:`OutOfMemoryError` when the capacity would be exceeded — the
        caller (pool) may then fall back to a smaller, exact growth or fail
        the allocation.
        """
        if nbytes <= 0:
            raise ValueError(f"growth must be positive, got {nbytes}")
        chunks = -(-nbytes // self.chunk_size)  # ceiling division
        granted = chunks * self.chunk_size
        if not self.can_grow(granted):
            # Retry with the exact request before giving up: a pool close to
            # its capacity can still hand out its remaining bytes.
            if self.can_grow(nbytes):
                granted = nbytes
            else:
                raise OutOfMemoryError(nbytes, pool=self.name, capacity=self.capacity)
        start = self.brk_address
        self._brk += granted
        return BlockRange(start, start + granted)

    def grow_exact(self, nbytes: int) -> BlockRange:
        """Extend the region by exactly ``nbytes`` (no chunk rounding)."""
        if nbytes <= 0:
            raise ValueError(f"growth must be positive, got {nbytes}")
        if not self.can_grow(nbytes):
            raise OutOfMemoryError(nbytes, pool=self.name, capacity=self.capacity)
        start = self.brk_address
        self._brk += nbytes
        return BlockRange(start, start + nbytes)

    def contains(self, address: int) -> bool:
        """True when ``address`` lies inside the currently reserved region."""
        return self.base <= address < self.brk_address

    def reset(self) -> None:
        """Release the whole region (used by region/arena pools on reset)."""
        self._brk = 0


class AddressSpaceAllocator:
    """Assigns non-overlapping base addresses to pools within a memory module.

    Memory modules hand out address ranges to every pool mapped onto them.
    This tiny allocator performs that carving: each pool receives a base
    address past the previous pool's maximum extent so that simulated block
    addresses are globally unique within a module.
    """

    def __init__(self, module_size: int | None = None, base_offset: int = 0) -> None:
        if module_size is not None and module_size <= 0:
            raise ValueError(f"module size must be positive, got {module_size}")
        if base_offset < 0:
            raise ValueError(f"base offset must be non-negative, got {base_offset}")
        self._module_size = module_size
        self._base_offset = base_offset
        self._next_base = base_offset
        self._assignments: dict[str, BlockRange] = {}

    @property
    def assignments(self) -> dict[str, BlockRange]:
        """Mapping from pool name to its assigned address range."""
        return dict(self._assignments)

    def reserve(self, pool_name: str, nbytes: int | None) -> tuple[int, int | None]:
        """Reserve a region for ``pool_name``.

        ``nbytes`` of ``None`` means "the rest of the module" (or unbounded
        when the module itself is unbounded).  Returns ``(base, capacity)``.
        """
        if pool_name in self._assignments:
            raise ValueError(f"pool '{pool_name}' already has an address range")
        base = self._next_base
        limit = (
            None
            if self._module_size is None
            else self._base_offset + self._module_size
        )
        if nbytes is None:
            if limit is None:
                # Unbounded module: give every pool its own huge stride so
                # their (practically unbounded) regions can never overlap.
                self._next_base = base + UNBOUNDED_POOL_STRIDE
                self._assignments[pool_name] = BlockRange(
                    base, base + UNBOUNDED_POOL_STRIDE
                )
                return base, None
            capacity = limit - base
            if capacity < 0:
                capacity = 0
            self._next_base = limit
            self._assignments[pool_name] = BlockRange(base, base + capacity)
            return base, capacity
        if nbytes < 0:
            raise ValueError("reservation size must be non-negative")
        if limit is not None and base + nbytes > limit:
            raise OutOfMemoryError(nbytes, pool=pool_name, capacity=self._module_size)
        self._next_base = base + nbytes
        self._assignments[pool_name] = BlockRange(base, base + nbytes)
        return base, nbytes

    def remaining(self) -> int | None:
        """Bytes not yet reserved by any pool (``None`` for unbounded modules)."""
        if self._module_size is None:
            return None
        return max(0, self._base_offset + self._module_size - self._next_base)
