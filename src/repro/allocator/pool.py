"""Pool abstractions: the building blocks DM allocators are composed from.

The paper's C++ library composes custom allocators out of *pools*: a pool
owns a region of one memory module and services requests for a range of
block sizes with its own free-list organisation, fit, coalescing and
splitting policies.  Three pool families cover the library:

* :class:`FixedSizePool`   — dedicated pool for one block size (e.g. the
  "dedicated pool for 74-byte blocks" of the paper); O(1) allocate/free.
* :class:`GeneralPool`     — variable-size pool fully parameterised by the
  policy axes (free-list order x fit x coalescing x splitting).
* :class:`RegionPool`      — bump-pointer arena; allocation is one pointer
  update, individual frees are deferred to a whole-region reset.

Every pool charges its metadata accesses to its :class:`PoolStats`, which the
profiler later multiplies with the energy/latency figures of the memory
module the pool is mapped onto.
"""

from __future__ import annotations

from collections import deque

from .blocks import (
    DEFAULT_ALIGNMENT,
    Block,
    BlockStatus,
    align_up,
    block_overhead,
    gross_block_size,
)
from .coalescing import CoalescingPolicy, make_coalescing_policy
from .errors import (
    DoubleFreeError,
    InvalidFreeError,
    InvalidRequestError,
    OutOfMemoryError,
)
from .fit import FitPolicy, make_fit_policy
from .freelist import FreeList, LIFOFreeList, make_free_list
from .heap import DEFAULT_CHUNK_SIZE, PoolAddressSpace
from .splitting import MIN_REMAINDER_BYTES, SplittingPolicy, make_splitting_policy
from .stats import PoolStats

#: Smallest wilderness tail worth keeping as a free block after carving a
#: fresh chunk (see :meth:`GeneralPool._grow_and_carve`).
MIN_WILDERNESS_REMAINDER = MIN_REMAINDER_BYTES

#: Default bound on the per-pool double-free detection set (``None`` keeps
#: every freed address forever, the historical behaviour).  Long traces with
#: high allocation churn make the set grow with the number of *distinct*
#: freed addresses; set this (or :attr:`Pool.freed_address_limit` on a
#: single pool) to keep only the most recently freed addresses.  Bounding
#: the set never changes any metric — it only narrows the window in which a
#: double free is diagnosed as :class:`DoubleFreeError` rather than the
#: generic :class:`InvalidFreeError`.
DEFAULT_FREED_ADDRESS_LIMIT: int | None = None


class Pool:
    """Common interface and bookkeeping shared by every pool type."""

    def __init__(
        self,
        name: str,
        address_space: PoolAddressSpace | None = None,
        alignment: int = DEFAULT_ALIGNMENT,
    ) -> None:
        if not name:
            raise ValueError("pool name must be non-empty")
        if alignment <= 0:
            raise ValueError(f"alignment must be positive, got {alignment}")
        self.name = name
        self.alignment = alignment
        self.space = address_space or PoolAddressSpace(name=name)
        self.space.name = name
        self.stats = PoolStats()
        self._live: dict[int, Block] = {}
        self._freed_addresses: set[int] = set()
        # Insertion-ordered shadow of _freed_addresses, maintained only when
        # a bound is set.  It may contain stale entries — addresses recycled
        # by a later allocation, or re-freed after recycling — so eviction
        # consults _freed_counts (occurrences still in the deque) and only
        # drops an address on its *last* occurrence, keeping the retained
        # set the most recently freed addresses.
        self._freed_order: deque[int] | None = None
        self._freed_counts: dict[int, int] = {}
        self._freed_limit: int | None = None
        if DEFAULT_FREED_ADDRESS_LIMIT is not None:
            self.freed_address_limit = DEFAULT_FREED_ADDRESS_LIMIT

    @property
    def freed_address_limit(self) -> int | None:
        """Bound on the double-free detection set (``None`` = unlimited).

        See :data:`DEFAULT_FREED_ADDRESS_LIMIT` for the trade-off.
        """
        return self._freed_limit

    @freed_address_limit.setter
    def freed_address_limit(self, limit: int | None) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"freed_address_limit must be >= 1, got {limit}")
        self._freed_limit = limit
        if limit is None:
            self._freed_order = None
            self._freed_counts = {}
        else:
            self._freed_order = deque(self._freed_addresses)
            self._freed_counts = {address: 1 for address in self._freed_order}
            self._trim_freed()

    def _note_freed(self, address: int) -> None:
        """Record ``address`` as freed, honouring the configured bound."""
        self._freed_addresses.add(address)
        order = self._freed_order
        if order is not None:
            order.append(address)
            counts = self._freed_counts
            counts[address] = counts.get(address, 0) + 1
            if len(self._freed_addresses) > self._freed_limit:
                self._trim_freed()
            elif len(order) > 16 + 4 * self._freed_limit:
                # Free/re-allocate cycles of the same few addresses never
                # overflow the set, but would grow the deque without bound:
                # rebuild it from the newest occurrence of each address.
                self._compact_freed_order()

    def _trim_freed(self) -> None:
        freed = self._freed_addresses
        order = self._freed_order
        counts = self._freed_counts
        limit = self._freed_limit
        while len(freed) > limit and order:
            address = order.popleft()
            remaining = counts[address] - 1
            if remaining:
                # A newer occurrence of this address is still queued; the
                # popped entry is stale, the address stays retained.
                counts[address] = remaining
                continue
            del counts[address]
            freed.discard(address)

    def _compact_freed_order(self) -> None:
        freed = self._freed_addresses
        compacted: deque[int] = deque()
        seen: set[int] = set()
        for address in reversed(self._freed_order):
            if address in freed and address not in seen:
                seen.add(address)
                compacted.appendleft(address)
        self._freed_order = compacted
        self._freed_counts = {address: 1 for address in compacted}

    # -- request routing ------------------------------------------------

    def accepts(self, size: int) -> bool:
        """True when this pool is willing to service a request of ``size``."""
        raise NotImplementedError

    # -- allocation interface --------------------------------------------

    def allocate(self, size: int) -> int:
        """Allocate ``size`` payload bytes; return the block's address."""
        raise NotImplementedError

    def free(self, address: int) -> None:
        """Release the block at ``address`` previously returned by allocate."""
        raise NotImplementedError

    def owns(self, address: int) -> bool:
        """True when ``address`` is a live block of this pool."""
        return address in self._live

    # -- shared helpers ---------------------------------------------------

    def _check_size(self, size: int) -> None:
        if size <= 0:
            raise InvalidRequestError(
                f"allocation size must be positive, got {size} (pool '{self.name}')"
            )

    def _register_live(self, block: Block, requested: int) -> None:
        block.mark_allocated(requested)
        self._live[block.address] = block
        self._freed_addresses.discard(block.address)
        self.stats.note_alloc(requested, block.size)

    def _take_live(self, address: int) -> Block:
        block = self._live.pop(address, None)
        if block is None:
            if address in self._freed_addresses:
                raise DoubleFreeError(address)
            raise InvalidFreeError(address)
        self._note_freed(address)
        self.stats.note_free(block.requested_size, block.size)
        block.mark_free()
        return block

    def _grow(self, nbytes: int) -> Block:
        """Reserve more backing store and wrap it in a fresh free block."""
        grown = self.space.grow(nbytes)
        self.stats.grow_footprint(grown.size)
        return Block(
            address=grown.start,
            size=grown.size,
            status=BlockStatus.FREE,
            pool_name=self.name,
        )

    @property
    def live_blocks(self) -> int:
        return len(self._live)

    @property
    def footprint(self) -> int:
        """Bytes currently reserved from the backing memory module."""
        return self.stats.footprint

    def reset(self) -> None:
        """Drop all state (used between exploration runs)."""
        self._live.clear()
        self._freed_addresses.clear()
        if self._freed_order is not None:
            self._freed_order.clear()
            self._freed_counts.clear()
        self.space.reset()
        self.stats = PoolStats()


class FixedSizePool(Pool):
    """Dedicated pool for a single block size.

    Requests are only accepted when the payload fits in ``block_size`` (and,
    when ``strict`` is set, matches it exactly).  Free blocks are recycled
    LIFO, so both allocation and free touch a constant number of metadata
    words — the behaviour the paper exploits by placing such pools in the
    L1 scratchpad.
    """

    def __init__(
        self,
        name: str,
        block_size: int,
        address_space: PoolAddressSpace | None = None,
        alignment: int = DEFAULT_ALIGNMENT,
        chunk_blocks: int = 16,
        strict: bool = False,
    ) -> None:
        super().__init__(name, address_space, alignment)
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        if chunk_blocks <= 0:
            raise ValueError(f"chunk_blocks must be positive, got {chunk_blocks}")
        self.block_size = block_size
        self.strict = strict
        self.gross_size = gross_block_size(block_size, alignment)
        self.chunk_blocks = chunk_blocks
        # Grow in whole multiples of the block size so no space is wasted on
        # partial blocks at the end of a chunk.
        self.space.chunk_size = self.gross_size * chunk_blocks
        self.free_list: FreeList = LIFOFreeList()

    def accepts(self, size: int) -> bool:
        if size <= 0:
            return False
        if self.strict:
            return size == self.block_size
        return size <= self.block_size

    # The two methods below are the innermost operations of a trace replay
    # (the paper's hot sizes are served by dedicated pools), so they update
    # the counters with direct attribute arithmetic instead of going through
    # the AccessCounter/PoolStats helper methods — same numbers, a fraction
    # of the interpreter work.

    def allocate(self, size: int) -> int:
        self._check_size(size)
        stats = self.stats
        if size != self.block_size if self.strict else size > self.block_size:
            stats.failed_allocs += 1
            raise InvalidRequestError(
                f"pool '{self.name}' only serves blocks up to {self.block_size} bytes, "
                f"got request for {size}"
            )
        accesses = stats.accesses
        if len(self.free_list) > 0:
            block = self.free_list.pop_front()
            # One read to follow the head pointer, one write to update it,
            # plus the header write for the allocated block.
            accesses.reads += 1
            accesses.writes += 2
            stats.free_list_visits += 1
        else:
            try:
                chunk = self._grow(self.gross_size)
            except OutOfMemoryError:
                stats.failed_allocs += 1
                raise
            # Carve the chunk into fixed-size blocks; keep the first, push
            # the rest on the free list (one header write per carved block,
            # plus the header write for the allocated block).
            gross = self.gross_size
            block = Block(chunk.address, gross, pool_name=self.name)
            carved = 1
            offset = chunk.address + gross
            end = chunk.end
            push = self.free_list.push
            while offset + gross <= end:
                push(Block(offset, gross, pool_name=self.name))
                offset += gross
                carved += 1
            accesses.writes += carved + 1
        # Inlined _register_live (the block just left the free list, so the
        # mark_allocated state check can never fire).
        block.status = BlockStatus.ALLOCATED
        block.requested_size = size
        self._live[block.address] = block
        self._freed_addresses.discard(block.address)
        stats.alloc_ops += 1
        stats.live_blocks += 1
        live_payload = stats.live_payload + size
        stats.live_payload = live_payload
        if live_payload > stats.peak_live_payload:
            stats.peak_live_payload = live_payload
        stats.live_gross += block.size
        return block.address

    def free(self, address: int) -> None:
        block = self._take_live(address)
        # Read the header to find the block size/pool, write the free-list link.
        accesses = self.stats.accesses
        accesses.reads += 1
        accesses.writes += 1
        self.free_list.push(block)


class GeneralPool(Pool):
    """Variable-size pool composed from the four policy axes.

    Parameters mirror the paper's parameter arrays: free-list order, fit
    policy, coalescing policy, splitting policy, plus the growth chunk size.
    """

    def __init__(
        self,
        name: str,
        address_space: PoolAddressSpace | None = None,
        free_list: FreeList | str = "lifo",
        fit: FitPolicy | str = "first_fit",
        coalescing: CoalescingPolicy | str = "never",
        splitting: SplittingPolicy | str = "never",
        alignment: int = DEFAULT_ALIGNMENT,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_block_size: int | None = None,
    ) -> None:
        super().__init__(name, address_space, alignment)
        if chunk_size <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        self.space.chunk_size = chunk_size
        self.free_list = make_free_list(free_list) if isinstance(free_list, str) else free_list
        self.fit = make_fit_policy(fit) if isinstance(fit, str) else fit
        self.coalescing = (
            make_coalescing_policy(coalescing) if isinstance(coalescing, str) else coalescing
        )
        self.splitting = (
            make_splitting_policy(splitting) if isinstance(splitting, str) else splitting
        )
        self.max_block_size = max_block_size
        # Start addresses of the chunks acquired from the backing store; two
        # blocks belonging to different chunks are never merged, mirroring a
        # real heap where separately acquired chunks need not be contiguous.
        self._chunk_starts: set[int] = set()

    def accepts(self, size: int) -> bool:
        if size <= 0:
            return False
        if self.max_block_size is None:
            return True
        return size <= self.max_block_size

    def allocate(self, size: int) -> int:
        self._check_size(size)
        if not self.accepts(size):
            self.stats.failed_allocs += 1
            raise InvalidRequestError(
                f"pool '{self.name}' only serves blocks up to {self.max_block_size} bytes, "
                f"got request for {size}"
            )
        gross = gross_block_size(size, self.alignment)
        stats = self.stats
        accesses = stats.accesses
        result = self.fit.select(self.free_list, gross)
        accesses.reads += result.visits
        stats.free_list_visits += result.visits
        if result.found:
            block = result.block
            self.free_list.remove(block)
            accesses.writes += 1  # unlink from the free list
            split = self.splitting.split(block, gross)
            if split.did_split:
                stats.splits += 1
                accesses.writes += split.writes
                self.free_list.push(split.remainder)
                accesses.reads += self.free_list.last_insertion_visits
                accesses.writes += 1
                block = split.allocated
        else:
            block = self._grow_and_carve(gross)
        # Header write for the allocated block.
        accesses.writes += 1
        self._register_live(block, size)
        return block.address

    def _grow_and_carve(self, gross: int) -> Block:
        """Grow the backing store and carve exactly ``gross`` bytes off it.

        Fresh chunks are always carved (independently of the splitting
        policy, which only governs reuse of free-list blocks): the tail of
        the chunk — the "wilderness" — goes back on the free list so that
        chunked growth does not turn every small request into a page-sized
        block.
        """
        try:
            chunk = self._grow(gross)
        except OutOfMemoryError:
            self.stats.failed_allocs += 1
            raise
        self._chunk_starts.add(chunk.address)
        remainder_size = chunk.size - gross
        if remainder_size >= MIN_WILDERNESS_REMAINDER:
            remainder = Block(
                address=chunk.address + gross,
                size=remainder_size,
                pool_name=self.name,
            )
            chunk.size = gross
            self.free_list.push(remainder)
            self.stats.accesses.read(self.free_list.last_insertion_visits)
            self.stats.accesses.write(2)  # remainder header + link
        return chunk

    def free(self, address: int) -> None:
        block = self._take_live(address)
        stats = self.stats
        accesses = stats.accesses
        # Header read to learn the block size.
        accesses.reads += 1
        outcome = self.coalescing.on_free(block, self.free_list, self._may_merge)
        accesses.reads += outcome.reads
        accesses.writes += outcome.writes
        stats.coalesces += outcome.merges
        self.free_list.push(outcome.block)
        accesses.reads += self.free_list.last_insertion_visits
        accesses.writes += 1
        maintenance = self.coalescing.maintenance(self.free_list, self._may_merge)
        if maintenance is not None:
            accesses.reads += maintenance.reads
            accesses.writes += maintenance.writes
            stats.coalesces += maintenance.merges

    def _may_merge(self, lower: "Block", upper: "Block") -> bool:
        """Adjacent free blocks may merge only within one acquired chunk."""
        return upper.address not in self._chunk_starts

    def reset(self) -> None:
        super().reset()
        self.free_list.clear()
        self.fit.reset()
        self.coalescing.reset()
        self._chunk_starts.clear()


class RegionPool(Pool):
    """Bump-pointer arena.

    Allocation advances a pointer (one metadata write); frees only record the
    release — the memory is reclaimed when the whole region is reset.  The
    footprint is therefore monotone within a region lifetime, which is the
    classic region trade-off the exploration can expose.
    """

    def __init__(
        self,
        name: str,
        address_space: PoolAddressSpace | None = None,
        alignment: int = DEFAULT_ALIGNMENT,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        super().__init__(name, address_space, alignment)
        self.space.chunk_size = chunk_size
        self._bump = 0
        self._chunk_end = 0

    def accepts(self, size: int) -> bool:
        return size > 0

    def allocate(self, size: int) -> int:
        self._check_size(size)
        gross = align_up(size, self.alignment) + block_overhead()
        if self._bump + gross > self._chunk_end:
            try:
                chunk = self._grow(gross)
            except OutOfMemoryError:
                self.stats.failed_allocs += 1
                raise
            self._bump = chunk.address
            self._chunk_end = chunk.end
        block = Block(self._bump, gross, pool_name=self.name)
        self._bump += gross
        # One pointer update + one header write.
        self.stats.accesses.writes += 2
        self._register_live(block, size)
        return block.address

    def free(self, address: int) -> None:
        self._take_live(address)
        # A region free is a header read only (the space is not reusable
        # until the region resets).
        self.stats.accesses.reads += 1

    def reset_region(self) -> None:
        """Release every block and rewind the bump pointer.

        Unlike :meth:`Pool.reset` this keeps the accumulated statistics: it
        models the application-visible "free the whole region" operation.
        """
        self._live.clear()
        self._freed_addresses.clear()
        if self._freed_order is not None:
            self._freed_order.clear()
            self._freed_counts.clear()
        self._bump = 0
        self._chunk_end = 0
        released = self.stats.footprint
        if released:
            self.stats.shrink_footprint(released)
        self.space.reset()
        self.stats.accesses.write(1)

    def reset(self) -> None:
        super().reset()
        self._bump = 0
        self._chunk_end = 0
