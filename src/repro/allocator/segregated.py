"""Segregated-fit pool: one free list per size class.

Requests are rounded up to the size class they fall in and served from that
class's free list — a Kingsley-style design that trades internal
fragmentation (requests are over-allocated to the class ceiling) for O(1)
searches.  The class list is a configuration parameter: power-of-two
classes give the classic general-purpose behaviour, while application-tuned
classes (e.g. the exact hot block sizes of Easyport packets) behave like a
bank of dedicated pools sharing one backing region.
"""

from __future__ import annotations

from .blocks import (
    DEFAULT_ALIGNMENT,
    Block,
    SizeClass,
    gross_block_size,
    power_of_two_size_classes,
)
from .errors import InvalidRequestError, OutOfMemoryError
from .freelist import FreeList, LIFOFreeList
from .heap import DEFAULT_CHUNK_SIZE, PoolAddressSpace
from .pool import Pool


class SegregatedFitPool(Pool):
    """Pool with one LIFO free list per size class.

    Parameters
    ----------
    size_classes:
        Ordered list of :class:`SizeClass`; a request is served by the first
        class whose range contains it and is rounded up to that class's
        ``max_size``.  Defaults to power-of-two classes up to 1 MB.
    chunk_size:
        Growth granularity of the shared backing region.
    """

    def __init__(
        self,
        name: str,
        size_classes: list[SizeClass] | None = None,
        address_space: PoolAddressSpace | None = None,
        alignment: int = DEFAULT_ALIGNMENT,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        super().__init__(name, address_space, alignment)
        self.space.chunk_size = chunk_size
        self.size_classes = size_classes or power_of_two_size_classes(3, 20)
        if not self.size_classes:
            raise ValueError("segregated pool needs at least one size class")
        self._validate_classes()
        self._free_lists: list[FreeList] = [LIFOFreeList() for _ in self.size_classes]
        self.max_block_size = max(cls.max_size for cls in self.size_classes)

    def _validate_classes(self) -> None:
        for first, second in zip(self.size_classes, self.size_classes[1:]):
            if second.min_size <= first.max_size and first.min_size <= second.max_size:
                raise ValueError(
                    f"overlapping size classes {first.label} and {second.label}"
                )

    def class_index(self, size: int) -> int | None:
        """Index of the size class serving ``size``, or ``None`` if uncovered."""
        for index, size_class in enumerate(self.size_classes):
            if size_class.matches(size):
                return index
        return None

    def accepts(self, size: int) -> bool:
        return size > 0 and self.class_index(size) is not None

    def free_list_for(self, size: int) -> FreeList:
        """Free list serving requests of ``size`` bytes (for tests/inspection)."""
        index = self.class_index(size)
        if index is None:
            raise InvalidRequestError(
                f"no size class covers {size}-byte requests in pool '{self.name}'"
            )
        return self._free_lists[index]

    def allocate(self, size: int) -> int:
        self._check_size(size)
        index = self.class_index(size)
        if index is None:
            self.stats.failed_allocs += 1
            raise InvalidRequestError(
                f"no size class covers {size}-byte requests in pool '{self.name}'"
            )
        size_class = self.size_classes[index]
        free_list = self._free_lists[index]
        # The request is rounded to the class ceiling: a 70-byte request in a
        # 65..128 class occupies a 128-byte block (internal fragmentation).
        rounded = size_class.max_size
        gross = gross_block_size(rounded, self.alignment)
        # One read to index the class table.
        self.stats.accesses.read(1)
        if len(free_list) > 0:
            block = free_list.pop_front()
            self.stats.accesses.read(1)
            self.stats.accesses.write(1)
            self.stats.free_list_visits += 1
        else:
            try:
                block = self._grow(gross)
            except OutOfMemoryError:
                self.stats.failed_allocs += 1
                raise
            # Keep only the needed block; the chunk tail is carved into more
            # blocks of the same class (they will be needed again).
            carved = 0
            offset = block.address + gross
            end = block.end
            block.size = gross
            while offset + gross <= end:
                free_list.push(Block(offset, gross, pool_name=self.name))
                offset += gross
                carved += 1
            self.stats.accesses.write(carved)
        self.stats.accesses.write(1)  # header write
        self._class_of_block = getattr(self, "_class_of_block", {})
        self._class_of_block[block.address] = index
        self._register_live(block, size)
        return block.address

    def free(self, address: int) -> None:
        block = self._take_live(address)
        index = self._class_of_block.pop(block.address, None)
        if index is None:
            # Defensive: recompute from the block size.
            index = self.class_index(block.requested_size or block.size)
            if index is None:
                index = len(self.size_classes) - 1
        self.stats.accesses.read(1)
        self.stats.accesses.write(1)
        self._free_lists[index].push(block)

    def reset(self) -> None:
        super().reset()
        self._free_lists = [LIFOFreeList() for _ in self.size_classes]
        self._class_of_block = {}


def exact_size_classes(sizes: list[int]) -> list[SizeClass]:
    """Build dedicated (exact) size classes for the given block sizes.

    Convenience used by configurations that express "dedicated pools for the
    N most frequent block sizes" as a segregated pool.
    """
    if not sizes:
        raise ValueError("at least one size is required")
    unique = sorted(set(sizes))
    return [SizeClass(size, size, label=f"{size}B") for size in unique]
