"""Slab pool: pages ("slabs") carved into equal-sized objects.

A slab pool serves a single object size, like :class:`FixedSizePool`, but
organises its backing store in page-sized slabs with a per-slab occupancy
count.  Empty slabs can be released back to the memory module, so —
unlike the plain fixed pool — the footprint can shrink after a burst,
which matters for bursty workloads such as packet processing.  The slab's
per-page bitmap costs one extra metadata access per operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .blocks import DEFAULT_ALIGNMENT, Block, gross_block_size
from .errors import InvalidRequestError, OutOfMemoryError
from .heap import PoolAddressSpace
from .pool import Pool

#: Default slab (page) size in bytes.
DEFAULT_SLAB_BYTES = 4096


@dataclass
class Slab:
    """One page of equal-sized objects."""

    base: int
    object_size: int
    capacity: int
    free_slots: list[int] = field(default_factory=list)
    live: int = 0

    def __post_init__(self) -> None:
        if not self.free_slots:
            self.free_slots = list(range(self.capacity))

    @property
    def is_empty(self) -> bool:
        return self.live == 0

    @property
    def is_full(self) -> bool:
        return self.live == self.capacity

    def slot_address(self, slot: int) -> int:
        return self.base + slot * self.object_size

    def slot_of(self, address: int) -> int:
        return (address - self.base) // self.object_size


class SlabPool(Pool):
    """Dedicated-size pool backed by releasable slabs.

    Parameters
    ----------
    block_size:
        Payload size served by the pool.
    slab_bytes:
        Size of one slab; must hold at least one object.
    release_empty:
        When True (default) a slab whose last object is freed is returned to
        the memory module, shrinking the footprint.
    strict:
        When True the pool only accepts requests of exactly ``block_size``
        bytes (dedicated-pool behaviour); when False any request that fits
        in a slot is accepted.
    """

    def __init__(
        self,
        name: str,
        block_size: int,
        slab_bytes: int = DEFAULT_SLAB_BYTES,
        release_empty: bool = True,
        address_space: PoolAddressSpace | None = None,
        alignment: int = DEFAULT_ALIGNMENT,
        strict: bool = False,
    ) -> None:
        super().__init__(name, address_space, alignment)
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        self.block_size = block_size
        self.strict = strict
        self.gross_size = gross_block_size(block_size, alignment)
        if slab_bytes < self.gross_size:
            raise ValueError(
                f"slab of {slab_bytes} bytes cannot hold a single "
                f"{self.gross_size}-byte object"
            )
        self.slab_bytes = slab_bytes
        self.release_empty = release_empty
        self.space.chunk_size = slab_bytes
        self.objects_per_slab = slab_bytes // self.gross_size
        self._slabs: dict[int, Slab] = {}
        self._partial: list[int] = []  # slab bases with free slots

    def accepts(self, size: int) -> bool:
        if size <= 0:
            return False
        if self.strict:
            return size == self.block_size
        return size <= self.block_size

    def _slab_for(self, address: int) -> Slab | None:
        for base, slab in self._slabs.items():
            if base <= address < base + self.slab_bytes:
                return slab
        return None

    def allocate(self, size: int) -> int:
        self._check_size(size)
        if not self.accepts(size):
            self.stats.failed_allocs += 1
            raise InvalidRequestError(
                f"pool '{self.name}' only serves blocks up to {self.block_size} bytes, "
                f"got request for {size}"
            )
        # One read of the partial-slab list head.
        self.stats.accesses.read(1)
        if self._partial:
            slab = self._slabs[self._partial[0]]
        else:
            try:
                grown = self.space.grow(self.slab_bytes)
            except OutOfMemoryError:
                self.stats.failed_allocs += 1
                raise
            self.stats.grow_footprint(grown.size)
            slab = Slab(
                base=grown.start,
                object_size=self.gross_size,
                capacity=self.objects_per_slab,
            )
            self._slabs[slab.base] = slab
            self._partial.append(slab.base)
            self.stats.accesses.write(1)  # slab descriptor init
        slot = slab.free_slots.pop()
        slab.live += 1
        if slab.is_full:
            self._partial.remove(slab.base)
        # Bitmap update + header write.
        self.stats.accesses.write(2)
        block = Block(slab.slot_address(slot), self.gross_size, pool_name=self.name)
        self._register_live(block, size)
        return block.address

    def free(self, address: int) -> None:
        block = self._take_live(address)
        slab = self._slab_for(block.address)
        if slab is None:
            raise InvalidRequestError(
                f"address {address:#x} does not belong to any slab of pool '{self.name}'"
            )
        self.stats.accesses.read(1)  # header read
        slab.free_slots.append(slab.slot_of(block.address))
        was_full = slab.is_full
        slab.live -= 1
        self.stats.accesses.write(1)  # bitmap update
        if was_full and not slab.is_full:
            self._partial.append(slab.base)
        if slab.is_empty and self.release_empty:
            # Return the whole slab to the memory module: the footprint
            # shrinks, unlike a plain fixed-size pool.
            del self._slabs[slab.base]
            if slab.base in self._partial:
                self._partial.remove(slab.base)
            self.stats.shrink_footprint(self.slab_bytes)
            self.stats.accesses.write(1)

    @property
    def slab_count(self) -> int:
        return len(self._slabs)

    def reset(self) -> None:
        super().reset()
        self._slabs = {}
        self._partial = []
