"""Splitting policies: whether an over-sized free block is split on allocation.

Splitting returns the unused tail of a chosen block to the free list, which
lowers internal fragmentation (footprint) at the cost of one extra header
write and one free-list insertion per split — and of creating small
remainder fragments that may never be reusable.  The exploration sweeps:

* ``never``     — the whole block is handed out (fast, wasteful).
* ``always``    — any remainder at least as large as ``min_remainder`` is
                  split off (dlmalloc style).
* ``threshold`` — split only when the remainder exceeds a configurable
                  fraction of the request, avoiding useless slivers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .blocks import Block, BlockStatus
from .errors import ConfigurationError

#: Smallest remainder worth turning into a standalone free block: a header
#: plus one alignment unit of payload.
MIN_REMAINDER_BYTES = 16


@dataclass
class SplitResult:
    """Outcome of a split decision.

    ``allocated`` is the block to hand to the application; ``remainder`` is
    the new free block created by the split (``None`` when no split
    happened); ``writes`` counts the header/link writes the split cost.
    """

    allocated: Block
    remainder: Block | None = None
    writes: int = 0

    @property
    def did_split(self) -> bool:
        return self.remainder is not None


class SplittingPolicy:
    """Base class for splitting policies."""

    policy_name = "abstract"

    def split(self, block: Block, gross_size: int) -> SplitResult:
        """Decide whether to split ``block`` for a request of ``gross_size``.

        ``gross_size`` already includes header/alignment overhead, so the
        decision reduces to interval arithmetic on the block size.
        """
        raise NotImplementedError

    @staticmethod
    def _do_split(block: Block, gross_size: int) -> SplitResult:
        """Carve ``gross_size`` bytes off the front of ``block``."""
        remainder_size = block.size - gross_size
        if remainder_size <= 0:
            raise ValueError("cannot split: block not larger than request")
        remainder = Block(
            address=block.address + gross_size,
            size=remainder_size,
            status=BlockStatus.FREE,
            pool_name=block.pool_name,
        )
        block.size = gross_size
        # Two header writes: shrink the allocated block's header, write the
        # remainder's fresh header.
        return SplitResult(allocated=block, remainder=remainder, writes=2)


class NeverSplit(SplittingPolicy):
    """Hand out the chosen block whole, however large it is."""

    policy_name = "never"

    def split(self, block: Block, gross_size: int) -> SplitResult:
        return SplitResult(allocated=block)


class AlwaysSplit(SplittingPolicy):
    """Split whenever the remainder is big enough to be a standalone block."""

    policy_name = "always"

    def __init__(self, min_remainder: int = MIN_REMAINDER_BYTES) -> None:
        if min_remainder <= 0:
            raise ValueError(f"min_remainder must be positive, got {min_remainder}")
        self.min_remainder = min_remainder

    def split(self, block: Block, gross_size: int) -> SplitResult:
        if block.size - gross_size >= self.min_remainder:
            return self._do_split(block, gross_size)
        return SplitResult(allocated=block)


class ThresholdSplit(SplittingPolicy):
    """Split only when the remainder exceeds ``ratio`` × the request size.

    With ``ratio = 0.5`` a 100-byte request taken from a 140-byte block is
    *not* split (the 40-byte sliver would likely be wasted anyway), while a
    100-byte request from a 300-byte block is.
    """

    policy_name = "threshold"

    def __init__(self, ratio: float = 0.5, min_remainder: int = MIN_REMAINDER_BYTES) -> None:
        if ratio <= 0:
            raise ValueError(f"split ratio must be positive, got {ratio}")
        if min_remainder <= 0:
            raise ValueError(f"min_remainder must be positive, got {min_remainder}")
        self.ratio = ratio
        self.min_remainder = min_remainder

    def split(self, block: Block, gross_size: int) -> SplitResult:
        remainder = block.size - gross_size
        if remainder >= self.min_remainder and remainder >= self.ratio * gross_size:
            return self._do_split(block, gross_size)
        return SplitResult(allocated=block)


#: Registry used by the allocator factory: policy name -> class.
SPLITTING_POLICIES: dict[str, type[SplittingPolicy]] = {
    NeverSplit.policy_name: NeverSplit,
    AlwaysSplit.policy_name: AlwaysSplit,
    ThresholdSplit.policy_name: ThresholdSplit,
}


def make_splitting_policy(policy: str, **kwargs) -> SplittingPolicy:
    """Instantiate a splitting policy by name (raises ConfigurationError if unknown)."""
    try:
        cls = SPLITTING_POLICIES[policy]
    except KeyError:
        valid = ", ".join(sorted(SPLITTING_POLICIES))
        raise ConfigurationError(
            f"unknown splitting policy '{policy}' (valid: {valid})"
        ) from None
    return cls(**kwargs)


def splitting_policy_names() -> list[str]:
    """All registered splitting-policy names, sorted for stable enumeration."""
    return sorted(SPLITTING_POLICIES)
