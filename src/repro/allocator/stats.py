"""Counters collected by the simulated allocator.

Every pool owns a :class:`PoolStats` instance.  Pools charge *memory
accesses* (reads and writes of allocator metadata: headers, free-list links,
boundary tags) and track *footprint* (bytes of backing store the pool has
reserved from its memory module).  The profiler later combines these raw
counters with the memory-hierarchy model to derive energy and execution
time, which is exactly the flow of the DATE'06 tool (profiling step feeding
the Pareto analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AccessCounter:
    """Counts metadata reads and writes performed by an allocator component."""

    reads: int = 0
    writes: int = 0

    def read(self, count: int = 1) -> None:
        """Charge ``count`` metadata reads."""
        if count < 0:
            raise ValueError("access count must be non-negative")
        self.reads += count

    def write(self, count: int = 1) -> None:
        """Charge ``count`` metadata writes."""
        if count < 0:
            raise ValueError("access count must be non-negative")
        self.writes += count

    @property
    def total(self) -> int:
        """Total accesses (reads + writes)."""
        return self.reads + self.writes

    def merge(self, other: "AccessCounter") -> None:
        """Accumulate another counter into this one."""
        self.reads += other.reads
        self.writes += other.writes

    def copy(self) -> "AccessCounter":
        return AccessCounter(reads=self.reads, writes=self.writes)


@dataclass
class PoolStats:
    """Aggregate statistics for a single pool.

    Attributes
    ----------
    accesses:
        Metadata reads/writes performed while servicing requests.
    footprint:
        Bytes of backing store currently reserved from the memory module
        (the pool's address-space high-water mark is ``peak_footprint``).
    live_payload:
        Sum of payload bytes currently allocated to the application.
    live_gross:
        Sum of gross block sizes currently allocated (payload + padding +
        headers), used for internal-fragmentation reporting.
    """

    accesses: AccessCounter = field(default_factory=AccessCounter)
    footprint: int = 0
    peak_footprint: int = 0
    live_payload: int = 0
    peak_live_payload: int = 0
    live_gross: int = 0
    live_blocks: int = 0
    alloc_ops: int = 0
    free_ops: int = 0
    failed_allocs: int = 0
    free_list_visits: int = 0
    splits: int = 0
    coalesces: int = 0

    def grow_footprint(self, delta: int) -> None:
        """Record ``delta`` additional bytes reserved from the memory module."""
        if delta < 0:
            raise ValueError("footprint growth must be non-negative")
        self.footprint += delta
        self.peak_footprint = max(self.peak_footprint, self.footprint)

    def shrink_footprint(self, delta: int) -> None:
        """Record ``delta`` bytes released back to the memory module."""
        if delta < 0:
            raise ValueError("footprint shrink must be non-negative")
        if delta > self.footprint:
            raise ValueError("cannot shrink footprint below zero")
        self.footprint -= delta

    def note_alloc(self, requested: int, gross: int) -> None:
        """Record a successful allocation of ``requested`` payload bytes."""
        self.alloc_ops += 1
        self.live_blocks += 1
        self.live_payload += requested
        self.live_gross += gross
        self.peak_live_payload = max(self.peak_live_payload, self.live_payload)

    def note_free(self, requested: int, gross: int) -> None:
        """Record a free of a block previously counted by :meth:`note_alloc`."""
        self.free_ops += 1
        self.live_blocks -= 1
        self.live_payload -= requested
        self.live_gross -= gross
        if self.live_blocks < 0 or self.live_payload < 0 or self.live_gross < 0:
            raise ValueError("free accounting underflow: more frees than allocs")

    @property
    def internal_fragmentation(self) -> int:
        """Bytes lost to padding/headers inside currently-live blocks."""
        return max(0, self.live_gross - self.live_payload)

    @property
    def external_fragmentation(self) -> int:
        """Bytes reserved from the memory module but not in any live block."""
        return max(0, self.footprint - self.live_gross)

    def snapshot(self) -> dict:
        """Return a plain-dict snapshot (used by the profiling log writer)."""
        return {
            "reads": self.accesses.reads,
            "writes": self.accesses.writes,
            "accesses": self.accesses.total,
            "footprint": self.footprint,
            "peak_footprint": self.peak_footprint,
            "live_payload": self.live_payload,
            "peak_live_payload": self.peak_live_payload,
            "live_blocks": self.live_blocks,
            "alloc_ops": self.alloc_ops,
            "free_ops": self.free_ops,
            "failed_allocs": self.failed_allocs,
            "free_list_visits": self.free_list_visits,
            "splits": self.splits,
            "coalesces": self.coalesces,
            "internal_fragmentation": self.internal_fragmentation,
            "external_fragmentation": self.external_fragmentation,
        }


@dataclass
class AllocatorStats:
    """Roll-up of :class:`PoolStats` across all pools of a composed allocator."""

    per_pool: dict[str, PoolStats] = field(default_factory=dict)

    def pool(self, name: str) -> PoolStats:
        """Return (creating if needed) the stats object for pool ``name``."""
        if name not in self.per_pool:
            self.per_pool[name] = PoolStats()
        return self.per_pool[name]

    @property
    def total_accesses(self) -> int:
        return sum(stats.accesses.total for stats in self.per_pool.values())

    @property
    def total_reads(self) -> int:
        return sum(stats.accesses.reads for stats in self.per_pool.values())

    @property
    def total_writes(self) -> int:
        return sum(stats.accesses.writes for stats in self.per_pool.values())

    @property
    def total_footprint(self) -> int:
        return sum(stats.footprint for stats in self.per_pool.values())

    @property
    def total_peak_footprint(self) -> int:
        return sum(stats.peak_footprint for stats in self.per_pool.values())

    @property
    def total_live_payload(self) -> int:
        return sum(stats.live_payload for stats in self.per_pool.values())

    @property
    def total_alloc_ops(self) -> int:
        return sum(stats.alloc_ops for stats in self.per_pool.values())

    @property
    def total_free_ops(self) -> int:
        return sum(stats.free_ops for stats in self.per_pool.values())

    def snapshot(self) -> dict:
        """Plain-dict snapshot keyed by pool name plus a ``__total__`` entry."""
        data = {name: stats.snapshot() for name, stats in self.per_pool.items()}
        data["__total__"] = {
            "accesses": self.total_accesses,
            "reads": self.total_reads,
            "writes": self.total_writes,
            "footprint": self.total_footprint,
            "peak_footprint": self.total_peak_footprint,
            "live_payload": self.total_live_payload,
            "alloc_ops": self.total_alloc_ops,
            "free_ops": self.total_free_ops,
        }
        return data
