"""Declarative experiment API: describe a run, let the tool explore.

This package is the stable surface of the exploration tool:

* :class:`ExperimentSpec` — a frozen, JSON-serialisable description of one
  experiment (workload + space + hierarchy + energy model + strategy +
  backend + store + sink + prune settings), with schema validation, a
  ``spec_version`` and a canonical :meth:`~ExperimentSpec.spec_hash` that
  artefact provenance embeds.
* :mod:`repro.api.registry` — open registries (``workloads``, ``spaces``,
  ``hierarchies``, ``strategies``, ``backends``, ``sinks``) resolving the
  names a spec uses; third-party ``register()`` calls plug straight into
  both the Python API and the CLI.
* :class:`Experiment` / :func:`run_experiment` — resolve a spec and
  execute it end to end, returning a :class:`RunResult` (database +
  provenance + counters).

See ``docs/api.md`` for the schema reference and embedding examples.
"""

from . import registry
from .experiment import Experiment, ResolvedExperiment, RunResult, run_experiment
from .registry import Registry, RegistryEntry, RegistryError, search_strategy_factory
from .spec import (
    DEFAULT_SEED,
    SPEC_VERSION,
    ComponentRef,
    ExperimentSpec,
    SpecError,
    apply_overrides,
    default_spec_document,
)

__all__ = [
    "ComponentRef",
    "DEFAULT_SEED",
    "Experiment",
    "ExperimentSpec",
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "ResolvedExperiment",
    "RunResult",
    "SPEC_VERSION",
    "SpecError",
    "apply_overrides",
    "default_spec_document",
    "registry",
    "run_experiment",
    "search_strategy_factory",
]
