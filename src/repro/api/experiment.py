"""Resolve and execute an :class:`~repro.api.spec.ExperimentSpec`.

:class:`Experiment` is the one execution path behind every frontend: the
CLI subcommands, embedding scripts and future schedulers all construct a
spec and call :meth:`Experiment.run`.  Because they share this path, a
``dmexplore run experiment.json`` and the equivalent legacy flag
invocation produce byte-identical artefacts.

Embedding example::

    from repro.api import ComponentRef, Experiment, ExperimentSpec

    spec = ExperimentSpec(
        workload=ComponentRef("uniform", {"operations": 500}),
        space=ComponentRef("smoke"),
        seed=1,
    )
    result = Experiment(spec).run()
    print(len(result.database), "records,", len(result.pareto_records()), "optimal")
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any

from ..core.exploration import ExplorationEngine, ExplorationSettings, ShardSpec
from ..core.results import Provenance, ResultDatabase
from ..core.store import ResultStore, StoreError
from ..memhier.energy import EnergyModel
from ..profiling.metrics import metric_keys
from . import registry
from .spec import ExperimentSpec, SpecError


@dataclass
class ResolvedExperiment:
    """Every live object a spec resolves to, ready to execute.

    Exposed so frontends can describe the run (workload description, space
    size, backend jobs) before or instead of executing it — ``dmexplore
    run --dry-run`` and the pre-run banner are built from this.
    """

    spec: ExperimentSpec
    workload: Any
    trace: Any
    space: Any
    hierarchy: Any
    energy_model: EnergyModel
    backend: Any
    store: ResultStore | None
    sink: Any
    shard: ShardSpec | None
    metrics: list[str]
    engine: ExplorationEngine


@dataclass
class RunResult:
    """Outcome of one experiment run.

    Bundles the produced :class:`~repro.core.results.ResultDatabase` with
    the spec that produced it, the canonical spec hash, and the execution
    counters — everything a caller needs to analyse, persist or attribute
    the run.
    """

    spec: ExperimentSpec
    spec_hash: str
    database: ResultDatabase
    sink: Any = None

    @property
    def provenance(self) -> Provenance | None:
        """The artefact provenance (fingerprint, space, spec hash, shard)."""
        return self.database.provenance

    @property
    def counters(self) -> dict:
        """Cache/store/pruning execution counters of the run."""
        return {
            "cache_hits": self.database.cache_hits,
            "cache_misses": self.database.cache_misses,
            "store_hits": self.database.store_hits,
            "store_misses": self.database.store_misses,
            "store_loaded": self.database.store_loaded,
            "prune_skipped": self.database.prune_skipped,
            "prune_predicted": self.database.prune_predicted,
            "surrogate_skips": self.database.surrogate_skips,
        }

    def pareto_records(self, metrics: list[str] | None = None):
        """Pareto-optimal records over the spec's (or the given) metrics."""
        return self.database.pareto_records(
            metrics or (list(self.spec.metrics) if self.spec.metrics else None)
        )

    def report(self, title: str = "") -> str:
        """The textual exploration report of the produced database."""
        from ..core.reporting import exploration_report

        return exploration_report(self.database, title=title)


class Experiment:
    """Executable form of an :class:`ExperimentSpec`.

    Construction validates the spec (:class:`SpecError` on any problem);
    :meth:`resolve` instantiates every component through the registries;
    :meth:`run` executes the exploration end to end and returns a
    :class:`RunResult`.  Backend workers and an attached store are closed
    when the run finishes, so one ``Experiment`` executes one run; build a
    new one (same spec — it is just a value) to run again.
    """

    def __init__(self, spec: ExperimentSpec, progress: bool = False) -> None:
        spec.validate()
        self.spec = spec
        # With progress on (the CLI default), the engine prints a line every
        # ~10% of the run, exactly as the CLI always has; library embedders
        # stay silent by default.
        self.progress = progress
        self._resolved: ResolvedExperiment | None = None

    # -- resolution --------------------------------------------------------

    def resolve(self) -> ResolvedExperiment:
        """Instantiate the spec's components (cached until :meth:`run`)."""
        if self._resolved is None:
            self._resolved = self._build()
        return self._resolved

    def _build(self) -> ResolvedExperiment:
        spec = self.spec
        workload = self._create(registry.workloads, spec.workload, "workload")
        trace = workload.generate(seed=spec.seed)
        space = self._create(registry.spaces, spec.space, "space")
        hierarchy = self._create(registry.hierarchies, spec.hierarchy, "hierarchy")
        try:
            energy_model = EnergyModel(hierarchy, **spec.energy.params)
        except TypeError as error:
            raise SpecError(f"energy.params: {error}") from None
        backend = self._create(registry.backends, spec.backend, "backend")
        metrics = list(spec.metrics) if spec.metrics is not None else metric_keys()
        sink = self._create(registry.sinks, spec.sink, "sink", metrics=metrics)
        store = self._open_store()
        shard = ShardSpec.parse(spec.shard) if spec.shard else None
        total = spec.sample if spec.sample is not None else space.size()
        settings = ExplorationSettings(
            metrics=metrics,
            sample=spec.sample,
            sample_seed=spec.sample_seed,
            progress_every=max(1, total // 10) if self.progress else 0,
            shard=shard,
        )
        engine = ExplorationEngine(
            space,
            trace,
            hierarchy=hierarchy,
            settings=settings,
            energy_model=energy_model,
            backend=backend,
            store=store,
        )
        engine.spec_hash = spec.spec_hash()
        # Observability sinks (the live dashboard) can watch the engine's
        # memo/store counters while the sweep runs.
        if sink is not None and hasattr(sink, "attach_engine"):
            sink.attach_engine(engine)
        return ResolvedExperiment(
            spec=spec,
            workload=workload,
            trace=trace,
            space=space,
            hierarchy=hierarchy,
            energy_model=energy_model,
            backend=backend,
            store=store,
            sink=sink,
            shard=shard,
            metrics=metrics,
            engine=engine,
        )

    @staticmethod
    def _create(reg: registry.Registry, ref, key: str, **extra):
        try:
            return reg.create(ref.name, ref.params, **extra)
        except registry.RegistryError as error:
            raise SpecError(f"{key}: {error}") from None

    def _open_store(self) -> ResultStore | None:
        spec = self.spec
        try:
            return registry.stores.create(spec.store.name, spec.store.params)
        except registry.RegistryError as error:
            raise SpecError(f"store: {error}") from None
        except (StoreError, OSError) as error:
            raise SpecError(f"store.params.path: cannot open result store: {error}") from None

    # -- execution ---------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the experiment and return its :class:`RunResult`."""
        resolved = self.resolve()
        spec = self.spec
        entry = registry.strategies.get(spec.strategy.name)
        params = {**entry.defaults, **spec.strategy.params}
        kwargs = dict(
            seed=spec.seed,
            metrics=resolved.metrics,
            prune=spec.prune,
            prune_fraction=spec.prune_fraction,
            sink=resolved.sink,
            **params,
        )
        # Reject a call the runner's signature cannot bind *before* calling
        # it, so an unknown keyword surfaces as a spec error while a
        # TypeError raised during the actual search propagates untouched.
        try:
            inspect.signature(entry.factory).bind(resolved.engine, **kwargs)
        except TypeError as error:
            raise SpecError(
                f"strategy.params: strategy '{spec.strategy.name}': {error}"
            ) from None
        try:
            try:
                database = entry.factory(resolved.engine, **kwargs)
            except registry.RegistryError as error:
                # Strategy construction refused its params (see
                # search_strategy_factory) — a spec problem, not a crash.
                raise SpecError(f"strategy.params: {error}") from None
        finally:
            resolved.engine.close()
            if resolved.store is not None:
                resolved.store.close()
            if resolved.sink is not None and hasattr(resolved.sink, "finish"):
                resolved.sink.finish()
            # The engine and store are spent; a re-run must re-resolve.
            self._resolved = None
        return RunResult(
            spec=spec,
            # The hash the engine stamped into provenance and store entries
            # at resolve time — computed once, reported consistently.
            spec_hash=resolved.engine.spec_hash,
            database=database,
            sink=resolved.sink,
        )


def run_experiment(spec: ExperimentSpec) -> RunResult:
    """One-shot helper: ``Experiment(spec).run()``."""
    return Experiment(spec).run()
