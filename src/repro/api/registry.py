"""Open, entry-point-style registries of the experiment building blocks.

An :class:`~repro.api.spec.ExperimentSpec` refers to every component of a
run — workload, parameter space, memory hierarchy, search strategy,
evaluation backend, result sink — by ``name`` plus a ``params`` dict.  The
registries in this module resolve those names.  Each registry is *open*:
third-party code calls :meth:`Registry.register` (directly or as a
decorator) and the new component immediately becomes usable from the
Python API **and** from the CLI (``dmexplore run``/``explore`` read the
registries live), without touching :mod:`repro.cli`::

    from repro.api import registry

    @registry.workloads.register("myapp", description="my application model")
    class MyWorkload(Workload):
        ...

    # or, for an existing class / factory function:
    registry.strategies.register("anneal", AnnealingSearch,
                                 description="simulated annealing")

Registries
----------

``workloads``
    ``factory(**params) -> Workload`` — the object must offer
    ``generate(seed) -> AllocationTrace`` and ``describe()``.
``spaces``
    ``factory(**params) -> ParameterSpace``.
``hierarchies``
    ``factory(**params) -> MemoryHierarchy``.
``strategies``
    Either a :class:`~repro.core.search.SearchStrategy` subclass (wrapped
    automatically) or a runner ``factory(engine, *, seed, metrics, prune,
    prune_fraction, sink, **params) -> ResultDatabase``.
``backends``
    ``factory(**params) -> EvaluationBackend``.
``sinks``
    ``factory(metrics, **params) -> ResultSink | None`` (``metrics`` is the
    experiment's metric selection; return ``None`` for "no sink").
``stores``
    ``factory(**params) -> ResultStore | None`` — the persistent L2 result
    store behind the engine's memoisation cache.  Built-ins: ``none``,
    ``jsonl`` and ``binary`` (params: ``path``, ``auto_compact``).

Entry ``defaults`` are the params applied when the spec gives none; spec
params override them key by key.  Descriptions default to the first line
of the factory's docstring and feed ``dmexplore list``.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field

from ..core.exploration import ProcessPoolBackend, SerialBackend
from ..core.search import (
    DEFAULT_PRUNE_FRACTION,
    DEFAULT_SEARCH_BUDGET,
    EvolutionarySearch,
    HillClimbSearch,
    RandomSearch,
    SearchBudget,
    SearchStrategy,
)
from ..core.space import STANDARD_SPACES
from ..core.strategies import NSGA2Search, SurrogateSearch, TPESearch
from ..memhier.hierarchy import embedded_three_level, embedded_two_level
from ..workloads.synthetic import BurstyWorkload, UniformRandomWorkload
from ..workloads.easyport import EasyportWorkload
from ..workloads.server import (
    DiurnalWorkload,
    RequestBurstWorkload,
    SessionChurnWorkload,
)
from ..workloads.vtc import VTCWorkload


class RegistryError(KeyError):
    """An unknown registry name, or invalid params for a registered entry.

    Subclasses :class:`KeyError` so legacy ``dict``-style lookups keep
    their exception contract, but formats like a ``ValueError`` (KeyError
    would quote the whole message).
    """

    def __str__(self) -> str:  # KeyError repr()s its argument; we want text
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its factory, defaults and description."""

    name: str
    factory: Callable
    description: str = ""
    defaults: Mapping = field(default_factory=dict)

    def create(self, params: Mapping | None = None, *args, **extra):
        """Call the factory with ``defaults`` overridden by ``params``."""
        merged = {**self.defaults, **dict(params or {})}
        return self.factory(*args, **merged, **extra)


class Registry:
    """Named, open collection of component factories of one ``kind``."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    # -- registration ------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Callable | None = None,
        *,
        description: str = "",
        defaults: Mapping | None = None,
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``; usable as a decorator.

        ``description`` defaults to the first line of the factory's
        docstring.  Re-registering an existing name raises unless
        ``replace=True`` — silent shadowing of a built-in would make specs
        ambiguous.  Returns the factory, so the decorator form leaves the
        decorated object untouched.
        """
        if factory is None:
            return lambda f: self.register(
                name, f, description=description, defaults=defaults, replace=replace
            )
        if not replace and name in self._entries:
            raise RegistryError(
                f"{self.kind} '{name}' is already registered; "
                "pass replace=True to override it"
            )
        text = description or _docstring_summary(factory)
        self._entries[name] = RegistryEntry(
            name=name, factory=factory, description=text, defaults=dict(defaults or {})
        )
        return factory

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests un-doing a registration)."""
        self._entries.pop(name, None)

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> RegistryEntry:
        """The entry registered under ``name`` (actionable error if absent)."""
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} '{name}' (known: {', '.join(self.names())})"
            ) from None

    def create(self, name: str, params: Mapping | None = None, *args, **extra):
        """Instantiate ``name`` with ``params`` over the entry defaults.

        A factory rejecting the params (unknown keyword, wrong arity, or a
        value its validation refuses) surfaces as a :class:`RegistryError`
        naming the entry, so frontends can report it cleanly.
        """
        entry = self.get(name)
        try:
            return entry.create(params, *args, **extra)
        except (TypeError, ValueError) as error:
            raise RegistryError(f"{self.kind} '{name}': {error}") from None

    def check_params(self, name: str, params: Mapping) -> None:
        """Validate ``params`` against the factory signature without calling it.

        Catches unknown parameter names at spec-validation time (so
        ``dmexplore run --dry-run`` rejects typos before any work is done).
        For strategy runners built by :func:`search_strategy_factory`, the
        params are bound against the wrapped :class:`SearchStrategy`
        subclass (the runner itself takes ``**params`` and would accept
        anything); other factories taking ``**kwargs`` accept everything
        by construction.
        """
        entry = self.get(name)
        merged = {**entry.defaults, **dict(params)}
        target = getattr(entry.factory, "strategy_class", None)
        if target is not None:
            # ``budget`` is consumed by the wrapper (it becomes the
            # SearchBudget), not by the strategy constructor.
            merged.pop("budget", None)
        try:
            signature = inspect.signature(target or entry.factory)
        except (TypeError, ValueError):  # pragma: no cover - builtins etc.
            return
        try:
            signature.bind_partial(**merged)
        except TypeError as error:
            raise RegistryError(f"{self.kind} '{name}': {error}") from None

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._entries)

    def items(self) -> list[RegistryEntry]:
        """All entries, sorted by name."""
        return [self._entries[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry(kind={self.kind!r}, names={self.names()})"


def _docstring_summary(obj) -> str:
    """First line of ``obj``'s docstring, or ''."""
    doc = inspect.getdoc(obj)
    return doc.splitlines()[0].strip() if doc else ""


def search_strategy_factory(cls: type[SearchStrategy]) -> Callable:
    """Adapt a :class:`SearchStrategy` subclass to the strategy-runner contract.

    The returned runner builds the strategy with the experiment's budget,
    seed, metric selection and prune settings (plus any strategy-specific
    params from the spec) and returns its result database.
    """

    def run_strategy(
        engine,
        *,
        seed: int = 0,
        metrics: list[str] | None = None,
        prune: bool = False,
        prune_fraction: float = DEFAULT_PRUNE_FRACTION,
        sink=None,
        budget: int = DEFAULT_SEARCH_BUDGET,
        **params,
    ):
        # Construction errors (misspelled or out-of-range strategy params)
        # become clean RegistryErrors; only the construction is guarded, so
        # an error raised *during* the search still propagates untouched.
        try:
            strategy = cls(
                engine,
                SearchBudget(evaluations=budget, seed=seed),
                metrics=metrics,
                prune=prune,
                prune_fraction=prune_fraction,
                **params,
            )
        except (TypeError, ValueError) as error:
            raise RegistryError(f"strategy '{cls.name}': {error}") from None
        # Observability sinks (the live dashboard) can watch the strategy's
        # prune counters while the search runs.
        if sink is not None and hasattr(sink, "attach_strategy"):
            sink.attach_strategy(strategy)
        return strategy.run(sink=sink)

    run_strategy.__doc__ = _docstring_summary(cls)
    run_strategy.strategy_class = cls
    return run_strategy


def _run_exhaustive(
    engine,
    *,
    seed: int = 0,
    metrics: list[str] | None = None,
    prune: bool = False,
    prune_fraction: float = DEFAULT_PRUNE_FRACTION,
    sink=None,
):
    """Exhaustive enumeration of the whole space (the paper's flow)."""
    return engine.explore(sink=sink)


#: The component registries the experiment layer resolves specs through.
workloads = Registry("workload")
spaces = Registry("space")
hierarchies = Registry("hierarchy")
strategies = Registry("strategy")
backends = Registry("backend")
sinks = Registry("sink")
stores = Registry("store")
#: Roles of the distributed service (``dmexplore serve``/``worker``); the
#: factories build :class:`repro.distrib.Coordinator`/``Worker`` objects.
services = Registry("service")


def _populate() -> None:
    """Install the built-in components.

    The workload defaults reproduce what the CLI has always built for each
    ``--workload`` name (e.g. a 4 000-packet Easyport run), so experiment
    specs and legacy flag invocations describe the same runs.
    """
    workloads.register(
        "easyport",
        EasyportWorkload,
        defaults={"packets": 4000},
        description="Easyport-style packet processing (paper case study 1)",
    )
    workloads.register(
        "vtc",
        VTCWorkload,
        defaults={"image_width": 128, "image_height": 128},
        description="MPEG-4 VTC still-texture decoding (paper case study 2)",
    )
    workloads.register(
        "uniform",
        UniformRandomWorkload,
        defaults={"operations": 3000},
        description="uncorrelated uniformly random allocations",
    )
    workloads.register(
        "bursty",
        BurstyWorkload,
        defaults={"bursts": 15, "burst_length": 80},
        description="alternating allocation bursts and quiet free periods",
    )
    workloads.register(
        "sessions",
        SessionChurnWorkload,
        description="server session arrival/departure churn with state blocks",
    )
    workloads.register(
        "requests",
        RequestBurstWorkload,
        description="batched request/response bursts of pooled blocks",
    )
    workloads.register(
        "diurnal",
        DiurnalWorkload,
        description="sinusoidal day/night load curve over a mixed size profile",
    )

    for name, factory in STANDARD_SPACES.items():
        spaces.register(name, factory)

    hierarchies.register(
        "2level",
        embedded_two_level,
        description="64 KB scratchpad + 4 MB main memory (the paper's platform)",
    )
    hierarchies.register(
        "3level",
        embedded_three_level,
        description="scratchpad + on-chip SRAM + off-chip main memory",
    )

    strategies.register(
        "exhaustive",
        _run_exhaustive,
        description="exhaustive enumeration of the whole space (the paper's flow)",
    )
    strategies.register(
        "random",
        search_strategy_factory(RandomSearch),
        defaults={"budget": DEFAULT_SEARCH_BUDGET},
        description="uniform random sampling of the space",
    )
    strategies.register(
        "hillclimb",
        search_strategy_factory(HillClimbSearch),
        defaults={"budget": DEFAULT_SEARCH_BUDGET},
        description="steepest-descent hill climbing with random restarts",
    )
    strategies.register(
        "evolutionary",
        search_strategy_factory(EvolutionarySearch),
        defaults={"budget": DEFAULT_SEARCH_BUDGET},
        description="(mu + lambda) evolutionary search, Pareto-rank selection",
    )
    strategies.register(
        "nsga2",
        search_strategy_factory(NSGA2Search),
        defaults={"budget": DEFAULT_SEARCH_BUDGET},
        description="NSGA-II: non-dominated sorting + crowding-distance selection",
    )
    strategies.register(
        "tpe",
        search_strategy_factory(TPESearch),
        defaults={"budget": DEFAULT_SEARCH_BUDGET},
        description="TPE sampler: model good-vs-rest densities, sample the ratio",
    )
    strategies.register(
        "surrogate",
        search_strategy_factory(SurrogateSearch),
        defaults={"budget": DEFAULT_SEARCH_BUDGET},
        description="random-forest surrogate: model-rank a pool, replay the elite",
    )

    backends.register(
        "serial",
        SerialBackend,
        description="in-process evaluation through the batch replay kernel",
    )
    backends.register(
        "process",
        ProcessPoolBackend,
        description="multiprocessing worker pool (params: jobs, chunk_size)",
    )

    sinks.register(
        "none",
        lambda metrics=None: None,
        description="no streaming consumer (the default)",
    )

    def _pareto_sink(metrics=None):
        from ..core.results import StreamingParetoSink

        return StreamingParetoSink(metrics=metrics)

    sinks.register(
        "pareto",
        _pareto_sink,
        description="live incremental Pareto front over the produced records",
    )

    def _dashboard_sink(metrics=None, interval=0.5):
        from ..gui.live import LiveDashboardSink

        return LiveDashboardSink(metrics=metrics, interval=interval)

    sinks.register(
        "dashboard",
        _dashboard_sink,
        description="live terminal dashboard: front size, metric ranges, "
        "prune/memo/store counters, eval rate (params: interval)",
    )

    # The store factories import repro.core.store lazily for symmetry with
    # the services (and to keep this module import-light).
    def _no_store(path=None, auto_compact=None):
        """No persistent result store (every run profiles cold)."""
        return None

    def _jsonl_store(path=None, auto_compact=None):
        from ..core.store import ResultStore, default_store_path

        return ResultStore(
            path or default_store_path("jsonl"),
            format="jsonl",
            auto_compact=auto_compact,
        )

    def _binary_store(path=None, auto_compact=None):
        from ..core.store import ResultStore, default_store_path

        return ResultStore(
            path or default_store_path("binary"),
            format="binary",
            auto_compact=auto_compact,
        )

    stores.register(
        "none",
        _no_store,
        description="no persistent result store (every run profiles cold)",
    )
    stores.register(
        "jsonl",
        _jsonl_store,
        description="append-only JSON-lines store, text-tool friendly "
        "(params: path, auto_compact)",
    )
    stores.register(
        "binary",
        _binary_store,
        description="framed binary store, parse-free loads at scale "
        "(params: path, auto_compact)",
    )

    # The service factories import repro.distrib lazily: distrib builds on
    # the experiment layer, which imports this module — a top-level import
    # here would be circular.
    def _coordinator(spec, **options):
        from ..distrib import Coordinator

        return Coordinator(spec, **options)

    def _worker(address, **options):
        from ..distrib import Worker

        return Worker(address, **options)

    services.register(
        "coordinator",
        _coordinator,
        description="lease enumeration ranges to workers (dmexplore serve)",
    )
    services.register(
        "worker",
        _worker,
        description="evaluate leased ranges for a coordinator (dmexplore worker)",
    )


_populate()
