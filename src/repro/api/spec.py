"""Declarative experiment description: :class:`ExperimentSpec`.

The paper's methodology is "describe the workload, the parameter space and
the cost model — the tool explores".  ``ExperimentSpec`` is that
description as a value: a frozen, JSON-serialisable record of *everything*
that defines a run — workload, space, hierarchy, energy model, strategy,
backend, store, sink and prune settings, each a ``name`` + ``params``
reference resolved through :mod:`repro.api.registry` — with schema
validation, a ``spec_version`` for forward compatibility, and a canonical
hash that artefact provenance and persisted store entries embed, so any
stored result can state exactly which experiment produced it.

The spec is also the **single source of defaults**: ``ExperimentSpec()``
is the default experiment, and the CLI derives its argparse defaults from
it (asserted by the test suite) instead of restating them.

Round trip::

    spec = ExperimentSpec(workload=ComponentRef("uniform"),
                          space=ComponentRef("smoke"), seed=1)
    data = spec.to_dict()
    assert ExperimentSpec.from_dict(data) == spec

Keys beginning with ``//`` are comments and ignored anywhere in the
document, so ``dmexplore spec`` can emit a self-describing JSON file that
``dmexplore run`` accepts verbatim.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

from ..core.exploration import ShardSpec
from ..core.search import DEFAULT_PRUNE_FRACTION, DEFAULT_SEARCH_BUDGET  # noqa: F401  (re-exported: the CLI derives --budget from it)
from ..memhier.energy import EnergyModel
from ..profiling.metrics import metric_keys
from . import registry

#: Version of the spec schema.  Bump on incompatible schema changes;
#: ``from_dict`` rejects documents written under a different version with
#: an actionable error instead of misinterpreting them.
SPEC_VERSION = 1

#: Default workload-generation (and heuristic-search) seed — the paper's
#: publication year, as it always was on the CLI.
DEFAULT_SEED = 2006

#: Store backends an experiment may name (kept for compatibility; the open
#: set lives in :data:`repro.api.registry.stores`).  ``jsonl`` and
#: ``binary`` are the two formats of :class:`~repro.core.store.
#: ResultStore`; path ``None`` means the shared per-user default under
#: ``~/.cache/dmexplore``.
STORE_KINDS = ("none", "jsonl", "binary")

#: Energy models an experiment may name.  There is exactly one analytic
#: model today; its constants are the ref's params.
ENERGY_MODELS = ("default",)

#: Serve transports of the distributed service (:mod:`repro.distrib`).
#: There is one: length-prefixed JSON over TCP.  Its params configure
#: ``dmexplore serve`` — they never affect what the experiment produces.
SERVE_KINDS = ("tcp",)

#: Parameters a ``serve`` ref may carry, with the type each must have.
SERVE_PARAMS = {
    "host": str,
    "port": int,
    "lease_size": int,
    "lease_timeout": (int, float),
}


class SpecError(ValueError):
    """An experiment document that cannot describe a runnable experiment.

    Every message names the offending key (``strategy.name``,
    ``workload.params``, ``spec_version`` ...) so a failing ``dmexplore
    run`` points straight at the line to fix.
    """


@dataclass(frozen=True)
class ComponentRef:
    """A ``name`` + ``params`` reference into one registry.

    ``params`` override the registry entry's defaults key by key.  The ref
    is frozen; treat the params dict as immutable.
    """

    name: str
    params: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        data: dict = {"name": self.name}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_value(cls, value: Any, key: str) -> "ComponentRef":
        """Parse ``{"name": ..., "params": {...}}`` (or the string shorthand).

        ``key`` is the spec field being parsed, used to name errors.
        """
        if isinstance(value, str):
            return cls(name=value)
        if not isinstance(value, dict):
            raise SpecError(
                f"{key}: expected a name string or an object with 'name'/'params', "
                f"got {type(value).__name__}"
            )
        value = _strip_comments(value)
        unknown = set(value) - {"name", "params"}
        if unknown:
            raise SpecError(f"{key}: unknown key '{sorted(unknown)[0]}'")
        if "name" not in value:
            raise SpecError(f"{key}.name: missing")
        name = value["name"]
        if not isinstance(name, str) or not name:
            raise SpecError(f"{key}.name: expected a non-empty string")
        params = value.get("params", {})
        if not isinstance(params, dict):
            raise SpecError(
                f"{key}.params: expected an object, got {type(params).__name__}"
            )
        if any(not isinstance(k, str) for k in params):
            raise SpecError(f"{key}.params: parameter names must be strings")
        return cls(name=name, params=dict(params))


def _strip_comments(data: dict) -> dict:
    """Drop ``//``-prefixed keys (recursively) — the spec comment syntax."""
    clean = {}
    for key, value in data.items():
        if isinstance(key, str) and key.startswith("//"):
            continue
        clean[key] = _strip_comments(value) if isinstance(value, dict) else value
    return clean


def _ref(name: str) -> Any:
    """Default factory helper for ComponentRef fields of the frozen spec."""
    return field(default_factory=lambda: ComponentRef(name))


@dataclass(frozen=True)
class ExperimentSpec:
    """Complete, serialisable description of one exploration experiment.

    Every field has the default the tool has always used, so
    ``ExperimentSpec()`` *is* the default experiment and any frontend
    (CLI, script, scheduler) only states what differs.
    """

    spec_version: int = SPEC_VERSION
    workload: ComponentRef = _ref("easyport")
    space: ComponentRef = _ref("compact")
    hierarchy: ComponentRef = _ref("2level")
    energy: ComponentRef = _ref("default")
    strategy: ComponentRef = _ref("exhaustive")
    backend: ComponentRef = _ref("serial")
    store: ComponentRef = _ref("none")
    sink: ComponentRef = _ref("none")
    serve: ComponentRef = _ref("tcp")
    seed: int = DEFAULT_SEED
    metrics: tuple[str, ...] | None = None
    sample: int | None = None
    sample_seed: int = 0
    shard: str = ""
    prune: bool = False
    prune_fraction: float = DEFAULT_PRUNE_FRACTION

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form; ``from_dict`` inverts it exactly."""
        return {
            "spec_version": self.spec_version,
            "workload": self.workload.as_dict(),
            "space": self.space.as_dict(),
            "hierarchy": self.hierarchy.as_dict(),
            "energy": self.energy.as_dict(),
            "strategy": self.strategy.as_dict(),
            "backend": self.backend.as_dict(),
            "store": self.store.as_dict(),
            "sink": self.sink.as_dict(),
            "serve": self.serve.as_dict(),
            "seed": self.seed,
            "metrics": list(self.metrics) if self.metrics is not None else None,
            "sample": self.sample,
            "sample_seed": self.sample_seed,
            "shard": self.shard,
            "prune": self.prune,
            "prune_fraction": self.prune_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Parse and structurally validate a spec document.

        Raises :class:`SpecError` naming the offending key for every
        malformation: missing/mismatched ``spec_version``, unknown keys,
        wrong value types.  Registry-name resolution happens in
        :meth:`validate` (called by :class:`repro.api.Experiment`), so a
        document can be parsed even where the registries differ.
        """
        if not isinstance(data, dict):
            raise SpecError(
                f"experiment document must be a JSON object, got {type(data).__name__}"
            )
        data = _strip_comments(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown key '{sorted(unknown)[0]}' in experiment document")
        if "spec_version" not in data:
            raise SpecError(
                "spec_version: missing (this tool writes "
                f"spec_version {SPEC_VERSION}; add it explicitly)"
            )
        version = data["spec_version"]
        if not isinstance(version, int) or isinstance(version, bool):
            raise SpecError(f"spec_version: expected an integer, got {version!r}")
        if version != SPEC_VERSION:
            raise SpecError(
                f"spec_version: this tool understands version {SPEC_VERSION}, "
                f"the document declares {version}"
            )
        kwargs: dict[str, Any] = {"spec_version": version}
        for key in ("workload", "space", "hierarchy", "energy", "strategy",
                    "backend", "store", "sink", "serve"):
            if key in data:
                kwargs[key] = ComponentRef.from_value(data[key], key)
        for key, kind in (("seed", int), ("sample_seed", int)):
            if key in data:
                kwargs[key] = _expect(data[key], kind, key)
        if "metrics" in data and data["metrics"] is not None:
            metrics = data["metrics"]
            if not isinstance(metrics, (list, tuple)) or any(
                not isinstance(m, str) for m in metrics
            ):
                raise SpecError("metrics: expected a list of metric-name strings")
            kwargs["metrics"] = tuple(metrics)
        if "sample" in data and data["sample"] is not None:
            kwargs["sample"] = _expect(data["sample"], int, "sample")
        if "shard" in data:
            kwargs["shard"] = _expect(data["shard"], str, "shard")
        if "prune" in data:
            kwargs["prune"] = _expect(data["prune"], bool, "prune")
        if "prune_fraction" in data:
            value = data["prune_fraction"]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"prune_fraction: expected a number, got {type(value).__name__}"
                )
            kwargs["prune_fraction"] = float(value)
        return cls(**kwargs)

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialise as JSON; also write to ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=indent) + "\n"
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "ExperimentSpec":
        """Load a spec from a JSON file path or a JSON string."""
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            try:
                text = Path(source).read_text(encoding="utf-8")
            except OSError as error:
                raise SpecError(f"cannot read experiment file: {error}") from None
        else:
            text = source
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"experiment document is not valid JSON: {error}") from None
        return cls.from_dict(data)

    # -- identity ----------------------------------------------------------

    def canonical_dict(self) -> dict:
        """The execution-independent form the canonical hash is computed over.

        The hash identifies what an experiment *produces* (which records,
        in which order), so fields that only decide *how* it executes are
        normalised away:

        * ``shard`` — all shards of one partitioned experiment describe
          the same experiment; their artefacts carry one spec hash and
          merging them reproduces the unsharded run's provenance exactly;
        * ``backend`` — serial and parallel runs are byte-identical by
          construction;
        * ``store`` — a warm store changes what is profiled, never what is
          produced;
        * ``sink`` — a streaming consumer observes the run, it does not
          alter it;
        * ``serve`` — where a coordinator listens and how it leases are
          cluster topology; the distributed artefact is byte-identical to
          the single-host one by construction (and test).

        Component params are additionally normalised against the registry
        entry defaults, so equivalent descriptions hash equally:
        ``{"name": "random"}`` and ``{"name": "random", "params":
        {"budget": 200}}`` describe the same experiment.
        """
        data = self.to_dict()
        data["shard"] = ""
        defaults = ExperimentSpec()
        data["backend"] = defaults.backend.as_dict()
        data["store"] = defaults.store.as_dict()
        data["sink"] = defaults.sink.as_dict()
        data["serve"] = defaults.serve.as_dict()
        for key, reg in (
            ("workload", registry.workloads),
            ("space", registry.spaces),
            ("hierarchy", registry.hierarchies),
            ("strategy", registry.strategies),
        ):
            ref: ComponentRef = getattr(self, key)
            if ref.name in reg:
                merged = {**reg.get(ref.name).defaults, **ref.params}
                data[key] = ComponentRef(ref.name, merged).as_dict()
        return data

    def canonical_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) of :meth:`canonical_dict`."""
        return json.dumps(self.canonical_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Hex SHA-256 of the canonical JSON — the experiment's identity.

        Embedded in artefact :class:`~repro.core.results.Provenance` and in
        persisted result-store entries.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # -- semantic validation ----------------------------------------------

    def validate(self) -> "ExperimentSpec":
        """Check the spec describes a runnable experiment; returns ``self``.

        Resolves every component name against its registry, checks params
        against the factory signatures, and enforces the cross-field rules
        the engine assumes (shard only with exhaustive, prune only with
        heuristics, fractions in range).  Raises :class:`SpecError` naming
        the offending key.
        """
        for key, reg in (
            ("workload", registry.workloads),
            ("space", registry.spaces),
            ("hierarchy", registry.hierarchies),
            ("strategy", registry.strategies),
            ("backend", registry.backends),
            ("sink", registry.sinks),
        ):
            ref: ComponentRef = getattr(self, key)
            if ref.name not in reg:
                raise SpecError(
                    f"{key}.name: unknown {reg.kind} '{ref.name}' "
                    f"(known: {', '.join(reg.names())})"
                )
            try:
                reg.check_params(ref.name, ref.params)
            except registry.RegistryError as error:
                raise SpecError(f"{key}.params: {error}") from None
        if self.energy.name not in ENERGY_MODELS:
            raise SpecError(
                f"energy.name: unknown energy model '{self.energy.name}' "
                f"(known: {', '.join(ENERGY_MODELS)})"
            )
        model_fields = {f.name for f in fields(EnergyModel)} - {"hierarchy"}
        unknown = set(self.energy.params) - model_fields
        if unknown:
            raise SpecError(
                f"energy.params: unknown parameter '{sorted(unknown)[0]}' "
                f"(known: {', '.join(sorted(model_fields))})"
            )
        if self.store.name not in registry.stores:
            raise SpecError(
                f"store.name: unknown store kind '{self.store.name}' "
                f"(known: {', '.join(registry.stores.names())})"
            )
        try:
            registry.stores.check_params(self.store.name, self.store.params)
        except registry.RegistryError as error:
            raise SpecError(f"store.params: {error}") from None
        if "auto_compact" in self.store.params:
            threshold = self.store.params["auto_compact"]
            if threshold is not None and (
                isinstance(threshold, bool)
                or not isinstance(threshold, int)
                or threshold < 1
            ):
                raise SpecError(
                    "store.params.auto_compact: expected a positive integer "
                    f"(dead entries before compaction), got {threshold!r}"
                )
        if self.serve.name not in SERVE_KINDS:
            raise SpecError(
                f"serve.name: unknown serve transport '{self.serve.name}' "
                f"(known: {', '.join(SERVE_KINDS)})"
            )
        unknown = set(self.serve.params) - set(SERVE_PARAMS)
        if unknown:
            raise SpecError(
                f"serve.params: unknown parameter '{sorted(unknown)[0]}' "
                f"(known: {', '.join(sorted(SERVE_PARAMS))})"
            )
        for name, kinds in SERVE_PARAMS.items():
            if name in self.serve.params:
                value = self.serve.params[name]
                if isinstance(value, bool) or not isinstance(value, kinds):
                    wanted = kinds[0] if isinstance(kinds, tuple) else kinds
                    raise SpecError(
                        f"serve.params.{name}: expected {wanted.__name__}, "
                        f"got {type(value).__name__}"
                    )
        valid_metrics = metric_keys()
        for metric in self.metrics or ():
            if metric not in valid_metrics:
                raise SpecError(
                    f"metrics: unknown metric '{metric}' "
                    f"(known: {', '.join(valid_metrics)})"
                )
        if self.sample is not None and self.sample <= 0:
            raise SpecError(f"sample: must be positive, got {self.sample}")
        if self.shard:
            try:
                ShardSpec.parse(self.shard)
            except ValueError as error:
                raise SpecError(f"shard: {error}") from None
            if self.strategy.name != "exhaustive":
                raise SpecError(
                    "shard: sharding partitions the exhaustive enumeration; "
                    f"it cannot be combined with strategy '{self.strategy.name}'"
                )
        if self.prune and self.strategy.name == "exhaustive":
            raise SpecError(
                "prune: dominance pruning only applies to heuristic strategies "
                "(exhaustive runs must evaluate every point)"
            )
        if not 0.0 < self.prune_fraction < 1.0:
            raise SpecError(
                f"prune_fraction: must be in (0, 1), got {self.prune_fraction}"
            )
        if self.seed < 0:
            raise SpecError(f"seed: must be non-negative, got {self.seed}")
        return self


def _expect(value: Any, kind: type, key: str) -> Any:
    """Type-check one scalar document value, naming the key on mismatch."""
    if kind is int and (isinstance(value, bool) or not isinstance(value, int)):
        raise SpecError(f"{key}: expected an integer, got {type(value).__name__}")
    if kind is bool and not isinstance(value, bool):
        raise SpecError(f"{key}: expected true/false, got {type(value).__name__}")
    if kind is str and not isinstance(value, str):
        raise SpecError(f"{key}: expected a string, got {type(value).__name__}")
    return value


# -- dotted overrides (CLI --set) ---------------------------------------------


def apply_overrides(data: dict, assignments: list[str]) -> dict:
    """Apply ``key.path=value`` assignments to a spec document (in place).

    The value is parsed as JSON when possible (``5``, ``true``,
    ``[1, 2]``), as a bare string otherwise — so ``--set
    strategy.name=random`` and ``--set strategy.params.budget=64`` both do
    what they look like.  Intermediate objects are created as needed.
    Returns ``data`` for chaining.
    """
    for assignment in assignments:
        key, separator, raw = assignment.partition("=")
        if not separator or not key:
            raise SpecError(
                f"override '{assignment}' is not of the form key.path=value"
            )
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        target = data
        parts = key.split(".")
        for part in parts[:-1]:
            existing = target.get(part)
            if existing is None:
                existing = target[part] = {}
            elif not isinstance(existing, dict):
                raise SpecError(
                    f"override '{key}': '{part}' is not an object in the document"
                )
            target = existing
        target[parts[-1]] = value
    return data


# -- the commented default document -------------------------------------------


def default_spec_document() -> dict:
    """The default experiment as a commented JSON document.

    ``//`` keys are comments (ignored by :meth:`ExperimentSpec.from_dict`);
    the remaining keys are exactly ``ExperimentSpec().to_dict()``, so the
    emitted file both documents the schema and runs unchanged.
    """
    spec = ExperimentSpec()
    return {
        "//": "dmexplore experiment - edit and run with: dmexplore run FILE",
        "spec_version": spec.spec_version,
        "//workload": f"registry: {', '.join(registry.workloads.names())}",
        "workload": spec.workload.as_dict(),
        "//space": f"registry: {', '.join(registry.spaces.names())}",
        "space": spec.space.as_dict(),
        "//hierarchy": f"registry: {', '.join(registry.hierarchies.names())}",
        "hierarchy": spec.hierarchy.as_dict(),
        "//energy": "analytic energy/time model; params override its constants",
        "energy": spec.energy.as_dict(),
        "//strategy": (
            f"registry: {', '.join(registry.strategies.names())}; heuristic "
            "strategies take params.budget (evaluation budget)"
        ),
        "strategy": spec.strategy.as_dict(),
        "//backend": f"registry: {', '.join(registry.backends.names())}",
        "backend": spec.backend.as_dict(),
        "//store": "'jsonl'/'binary' persist evaluations "
        "(params: path, auto_compact; null path = ~/.cache)",
        "store": spec.store.as_dict(),
        "//sink": f"registry: {', '.join(registry.sinks.names())}",
        "sink": spec.sink.as_dict(),
        "//serve": (
            "distributed service settings for 'dmexplore serve' "
            "(params: host, port, lease_size, lease_timeout)"
        ),
        "serve": spec.serve.as_dict(),
        "//seed": "workload generation seed (also seeds heuristic searches)",
        "seed": spec.seed,
        "//metrics": f"null = all of: {', '.join(metric_keys())}",
        "metrics": list(spec.metrics) if spec.metrics is not None else None,
        "//sample": "random-sample N points instead of exhaustive (null = off)",
        "sample": spec.sample,
        "sample_seed": spec.sample_seed,
        "//shard": "'K/N' evaluates one slice of the enumeration ('' = all)",
        "shard": spec.shard,
        "//prune": "heuristic strategies: skip dominated candidates early",
        "prune": spec.prune,
        "prune_fraction": spec.prune_fraction,
    }
