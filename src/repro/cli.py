"""Command-line interface of the exploration tool.

``dmexplore`` (or ``python -m repro``) exposes the automated flow end to end:

* ``dmexplore explore --workload easyport --space compact --out results.json``
    run an exploration and store the result database,
* ``dmexplore explore --store cache.jsonl --shard 2/3 --out shard2.json``
    run one shard of the enumeration, backed by a persistent result store,
* ``dmexplore merge shard1.json shard2.json shard3.json --out merged.json``
    union shard artefacts back into one database,
* ``dmexplore pareto results.json``
    print the Pareto-optimal configurations of a stored database,
* ``dmexplore report results.json --export-dir out/``
    print the dashboard and export the CSV / gnuplot artefacts,
* ``dmexplore report --store cache.jsonl --workload uniform --space smoke``
    stream the dashboard straight from a persistent result store — no JSON
    artefact, no whole-run load, O(front) record memory,
* ``dmexplore trace --workload vtc --out vtc.trace``
    generate and save a workload trace for inspection or reuse.

Every subcommand and flag is documented in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.exploration import (
    ExplorationEngine,
    ExplorationSettings,
    ShardSpec,
    make_backend,
)
from .core.reporting import describe_record, exploration_report
from .core.results import ResultDatabase, StreamingResultView
from .core.search import (
    EvolutionarySearch,
    HillClimbSearch,
    RandomSearch,
    SearchBudget,
)
from .core.space import STANDARD_SPACES
from .core.store import (
    MergeError,
    ResultStore,
    StoreError,
    StoreRecordSource,
    default_store_path,
    merge_databases,
)
from .gui.report import dashboard, export_artifacts
from .memhier.hierarchy import embedded_three_level, embedded_two_level
from .profiling.metrics import metric_keys
from .workloads.easyport import EasyportWorkload
from .workloads.synthetic import BurstyWorkload, UniformRandomWorkload
from .workloads.traces import save_trace
from .workloads.vtc import VTCWorkload

#: Workload factories selectable from the command line.
WORKLOADS = {
    "easyport": lambda: EasyportWorkload(packets=4000),
    "vtc": lambda: VTCWorkload(image_width=128, image_height=128),
    "uniform": lambda: UniformRandomWorkload(operations=3000),
    "bursty": lambda: BurstyWorkload(bursts=15, burst_length=80),
}

#: Parameter-space factories selectable from the command line (one shared
#: registry with the library, see :data:`repro.core.space.STANDARD_SPACES`).
SPACES = STANDARD_SPACES

#: Hierarchy factories selectable from the command line.
HIERARCHIES = {
    "2level": embedded_two_level,
    "3level": embedded_three_level,
}

#: Search strategies selectable with ``explore --strategy`` (exhaustive is
#: the paper's default and handled by the engine itself).
STRATEGIES = ("exhaustive", "random", "hillclimb", "evolutionary")


def _jobs_count(text: str) -> int:
    """argparse type for ``--jobs``: a non-negative worker count."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0 (0 = all CPU cores)")
    return value


def _shard_spec(text: str) -> ShardSpec:
    """argparse type for ``--shard``: the ``K/N`` form."""
    try:
        return ShardSpec.parse(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dmexplore",
        description=(
            "Automated exploration of Pareto-optimal dynamic-memory allocator "
            "configurations (DATE 2006 reproduction)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    explore_parser = subparsers.add_parser("explore", help="run an exploration")
    explore_parser.add_argument("--workload", choices=sorted(WORKLOADS), default="easyport")
    explore_parser.add_argument("--space", choices=sorted(SPACES), default="compact")
    explore_parser.add_argument("--hierarchy", choices=sorted(HIERARCHIES), default="2level")
    explore_parser.add_argument("--seed", type=int, default=2006)
    explore_parser.add_argument(
        "--sample", type=int, default=None, help="random-sample N points instead of exhaustive"
    )
    explore_parser.add_argument("--out", type=Path, default=Path("exploration.json"))
    explore_parser.add_argument(
        "--metrics", nargs="+", choices=metric_keys(), default=None
    )
    explore_parser.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help=(
            "evaluate configurations on N worker processes "
            "(1 = serial, 0 = all CPU cores)"
        ),
    )
    explore_parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="exhaustive",
        help="exhaustive enumeration (default) or a heuristic search",
    )
    explore_parser.add_argument(
        "--budget",
        type=int,
        default=200,
        help="evaluation budget for heuristic strategies (ignored by exhaustive)",
    )
    explore_parser.add_argument(
        "--store",
        type=Path,
        nargs="?",
        const=None,
        default=argparse.SUPPRESS,
        help=(
            "persist evaluated points in a JSON-lines result store and reuse "
            "them on later runs; without PATH the store lives under ~/.cache/"
            "dmexplore"
        ),
    )
    explore_parser.add_argument(
        "--shard",
        type=_shard_spec,
        default=None,
        metavar="K/N",
        help=(
            "evaluate only shard K of N (1-based) of the enumeration; "
            "merge the shard artefacts with 'dmexplore merge'"
        ),
    )
    explore_parser.add_argument(
        "--prune",
        action="store_true",
        help=(
            "heuristic strategies only: skip candidates whose prefix-replay "
            "metrics are already dominated by the live Pareto front, before "
            "full profiling"
        ),
    )
    explore_parser.add_argument(
        "--prune-fraction",
        type=float,
        default=0.25,
        metavar="F",
        help=(
            "fraction of the trace replayed to predict a candidate's metrics "
            "when --prune is on (default 0.25)"
        ),
    )

    merge_parser = subparsers.add_parser(
        "merge", help="union shard artefacts into one result database"
    )
    merge_parser.add_argument("inputs", type=Path, nargs="+")
    merge_parser.add_argument("--out", type=Path, default=Path("merged.json"))

    pareto_parser = subparsers.add_parser("pareto", help="list Pareto-optimal configurations")
    pareto_parser.add_argument("database", type=Path)
    pareto_parser.add_argument(
        "--metrics", nargs="+", choices=metric_keys(), default=None
    )

    report_parser = subparsers.add_parser("report", help="print the exploration dashboard")
    report_parser.add_argument(
        "database",
        type=Path,
        nargs="?",
        default=None,
        help="JSON artefact written by 'explore' or 'merge' (or use --store)",
    )
    report_parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "stream records straight from a persistent result store instead "
            "of a JSON artefact; --workload/--space/--hierarchy/--seed select "
            "the evaluation context, exactly as they did for 'explore'"
        ),
    )
    report_parser.add_argument("--workload", choices=sorted(WORKLOADS), default="easyport")
    report_parser.add_argument("--space", choices=sorted(SPACES), default="compact")
    report_parser.add_argument("--hierarchy", choices=sorted(HIERARCHIES), default="2level")
    report_parser.add_argument("--seed", type=int, default=2006)
    report_parser.add_argument(
        "--metrics",
        nargs="+",
        choices=metric_keys(),
        default=None,
        help="emit (and extract the Pareto front over) only these metrics",
    )
    report_parser.add_argument("--export-dir", type=Path, default=None)
    report_parser.add_argument("--x-metric", choices=metric_keys(), default="accesses")
    report_parser.add_argument("--y-metric", choices=metric_keys(), default="footprint")

    trace_parser = subparsers.add_parser("trace", help="generate and save a workload trace")
    trace_parser.add_argument("--workload", choices=sorted(WORKLOADS), default="easyport")
    trace_parser.add_argument("--seed", type=int, default=2006)
    trace_parser.add_argument("--out", type=Path, required=True)

    return parser


def _command_explore(args: argparse.Namespace) -> int:
    if args.shard is not None and args.strategy != "exhaustive":
        print("error: --shard only applies to --strategy exhaustive", file=sys.stderr)
        return 2
    if args.prune and args.strategy == "exhaustive":
        print(
            "error: --prune only applies to heuristic strategies "
            "(exhaustive runs must evaluate every point)",
            file=sys.stderr,
        )
        return 2
    if not 0.0 < args.prune_fraction < 1.0:
        print("error: --prune-fraction must be in (0, 1)", file=sys.stderr)
        return 2
    workload = WORKLOADS[args.workload]()
    trace = workload.generate(seed=args.seed)
    space = SPACES[args.space]()
    hierarchy = HIERARCHIES[args.hierarchy]()
    settings = ExplorationSettings(
        metrics=args.metrics or metric_keys(),
        sample=args.sample,
        progress_every=max(1, (args.sample or space.size()) // 10),
        shard=args.shard,
    )
    backend = make_backend(args.jobs)  # validated non-negative by the parser
    store = None
    if hasattr(args, "store"):  # --store given (with or without a path)
        store_path = args.store if args.store is not None else default_store_path()
        try:
            store = ResultStore(store_path)
        except (StoreError, OSError) as error:
            print(f"error: cannot open result store: {error}", file=sys.stderr)
            return 2
    print(f"workload: {workload.describe()}")
    print(f"space: {space.size()} configurations ({args.space})")
    if args.shard is not None:
        owned = args.shard.size_of(args.sample or space.size())
        print(f"shard: {args.shard.label} ({owned} configurations this run)")
    print(f"evaluation backend: {getattr(backend, 'jobs', 1)} job(s)")
    if store is not None:
        print(
            f"result store: {store.path} "
            f"({store.loaded} entries loaded, {store.corrupt_entries} corrupt skipped)"
        )
    engine = ExplorationEngine(
        space, trace, hierarchy=hierarchy, settings=settings, backend=backend, store=store
    )
    try:
        database = _run_strategy(engine, args)
    finally:
        engine.close()
        if store is not None:
            store.close()
    database.to_json(args.out)
    print(f"stored {len(database)} results in {args.out}")
    print(exploration_report(database, title=f"{args.workload} exploration"))
    return 0


def _run_strategy(engine: ExplorationEngine, args: argparse.Namespace) -> ResultDatabase:
    """Dispatch ``explore --strategy`` to the engine or a heuristic search."""
    if args.strategy == "exhaustive":
        return engine.explore()
    budget = SearchBudget(evaluations=args.budget, seed=args.seed)
    metrics = args.metrics or metric_keys()
    options = {
        "metrics": metrics,
        "prune": args.prune,
        "prune_fraction": args.prune_fraction,
    }
    if args.strategy == "random":
        return RandomSearch(engine, budget, **options).run()
    if args.strategy == "hillclimb":
        return HillClimbSearch(engine, budget, **options).run()
    return EvolutionarySearch(engine, budget, **options).run()


def _command_merge(args: argparse.Namespace) -> int:
    try:
        databases = [ResultDatabase.from_json(path) for path in args.inputs]
    except (OSError, ValueError) as error:
        print(f"error: cannot load artefact: {error}", file=sys.stderr)
        return 2
    try:
        merged = merge_databases(databases)
    except MergeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    merged.to_json(args.out)
    total = sum(len(database) for database in databases)
    print(
        f"merged {len(databases)} artefacts ({total} records) "
        f"into {args.out} ({len(merged)} records)"
    )
    print(f"Pareto-optimal configurations after merge: {len(merged.pareto_records())}")
    return 0


def _command_pareto(args: argparse.Namespace) -> int:
    database = ResultDatabase.from_json(args.database)
    records = database.pareto_records(args.metrics)
    print(f"{len(records)} Pareto-optimal configurations (of {len(database)}):")
    for record in sorted(records, key=lambda r: r.metrics.accesses):
        print("  " + describe_record(record, args.metrics))
    return 0


def _command_report(args: argparse.Namespace) -> int:
    if (args.database is None) == (args.store is None):
        print(
            "error: report needs exactly one input: a JSON artefact or --store PATH",
            file=sys.stderr,
        )
        return 2
    if args.store is not None:
        database = _streamed_view(args)
        if database is None:
            return 2
    else:
        database = ResultDatabase.from_json(args.database)
    print(
        dashboard(
            database,
            x_metric=args.x_metric,
            y_metric=args.y_metric,
            metrics=args.metrics,
        )
    )
    if args.export_dir is not None:
        paths = export_artifacts(database, args.export_dir, metrics=args.metrics)
        print("\nexported artefacts:")
        for kind, path in sorted(paths.items()):
            print(f"  {kind}: {path}")
    return 0


def _streamed_view(args: argparse.Namespace) -> StreamingResultView | None:
    """Build the streaming report view for ``report --store``.

    The workload/space/hierarchy/seed flags reconstruct the evaluation
    fingerprint exactly as ``explore`` computed it, then the store file is
    replayed as a record stream in global enumeration order — the report is
    byte-identical to one over the merged JSON artefacts of the same runs,
    without ever materialising the records.
    """
    if not args.store.exists():
        print(f"error: result store {args.store} does not exist", file=sys.stderr)
        return None
    workload = WORKLOADS[args.workload]()
    trace = workload.generate(seed=args.seed)
    space = SPACES[args.space]()
    hierarchy = HIERARCHIES[args.hierarchy]()
    engine = ExplorationEngine(space, trace, hierarchy=hierarchy)
    try:
        source = StoreRecordSource(args.store, engine.fingerprint, space=space)
    except (StoreError, OSError) as error:
        print(f"error: cannot read result store: {error}", file=sys.stderr)
        return None
    if len(source) == 0:
        print(
            f"error: {args.store} holds no records for workload "
            f"'{args.workload}', space '{args.space}', seed {args.seed} "
            f"(skipped: {source.foreign_entries} other contexts, "
            f"{source.outside_space} outside the space, "
            f"{source.corrupt_entries} corrupt)",
            file=sys.stderr,
        )
        return None
    return StreamingResultView(source, name=f"{trace.name}-exploration")


def _command_trace(args: argparse.Namespace) -> int:
    workload = WORKLOADS[args.workload]()
    trace = workload.generate(seed=args.seed)
    lines = save_trace(trace, args.out)
    summary = trace.summary()
    print(f"wrote {lines} lines to {args.out}")
    print(
        f"{summary.alloc_count} allocations / {summary.free_count} frees, "
        f"peak live {summary.peak_live_bytes} bytes"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``dmexplore`` and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "explore": _command_explore,
        "merge": _command_merge,
        "pareto": _command_pareto,
        "report": _command_report,
        "trace": _command_trace,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
