"""Command-line interface of the exploration tool.

``dmexplore`` (or ``python -m repro``) is a thin shell over the
declarative experiment API (:mod:`repro.api`): every subcommand constructs
an :class:`~repro.api.ExperimentSpec` and hands it to
:class:`~repro.api.Experiment`, so a flag invocation and the equivalent
``dmexplore run EXPERIMENT.json`` produce byte-identical artefacts.

* ``dmexplore spec --out experiment.json``
    emit the commented default experiment description,
* ``dmexplore run experiment.json --set strategy.name=random``
    run an experiment file (``--dry-run`` prints the resolved spec),
* ``dmexplore list workloads``
    enumerate what the registries offer (all kinds without an argument),
* ``dmexplore explore --workload easyport --space compact --out results.json``
    run an exploration straight from flags,
* ``dmexplore merge shard1.json shard2.json --out merged.json``
    union shard artefacts back into one database,
* ``dmexplore serve experiment.json`` / ``dmexplore worker HOST:PORT``
    distribute an exhaustive sweep over worker processes (byte-identical
    to the single-host run; see ``docs/distributed.md``),
* ``dmexplore pareto results.json``
    print the Pareto-optimal configurations of a stored database,
* ``dmexplore report results.json --export-dir out/``
    print the dashboard and export the CSV / gnuplot artefacts
    (``--store PATH`` streams it straight from a persistent result store),
* ``dmexplore windows --workload diurnal --window-events 500``
    windowed phase analysis — one Pareto front per trace window, with the
    front-shift summary that exposes non-stationary workloads,
* ``dmexplore trace --workload vtc --out vtc.trace``
    generate and save a workload trace for inspection or reuse.

Every subcommand and flag is documented in ``docs/cli.md``.  The argparse
defaults are *derived from* :class:`~repro.api.ExperimentSpec` — the spec
is the single source of defaults (``tests/test_api.py`` asserts it).

Third-party components registered through :mod:`repro.api.registry`
(``registry.strategies.register(...)`` etc.) appear in the ``--workload``/
``--space``/``--strategy`` choices and in ``dmexplore list`` automatically:
the parser reads the registries live.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path

from .api import registry
from .api.experiment import Experiment, ResolvedExperiment
from .api.spec import (
    DEFAULT_SEARCH_BUDGET,
    ComponentRef,
    ExperimentSpec,
    SpecError,
    apply_overrides,
    default_spec_document,
)
from .core.reporting import describe_record
from .core.results import ResultDatabase, StreamingResultView
from .core.store import (
    MergeError,
    StoreError,
    StoreRecordSource,
    merge_databases,
)
from .gui.report import dashboard, export_artifacts
from .profiling.metrics import metric_keys
from .workloads.traces import save_trace

#: The default experiment — the single source of the CLI defaults below.
_DEFAULTS = ExperimentSpec()

#: Registry kinds ``dmexplore list`` can enumerate.
LIST_KINDS = {
    "workloads": registry.workloads,
    "spaces": registry.spaces,
    "hierarchies": registry.hierarchies,
    "strategies": registry.strategies,
    "backends": registry.backends,
    "sinks": registry.sinks,
    "stores": registry.stores,
    "services": registry.services,
}


def __getattr__(name: str):
    """Deprecation shims for the pre-spec module-level registries.

    ``WORKLOADS``/``SPACES``/``HIERARCHIES`` were plain name→factory dicts
    and ``STRATEGIES`` a tuple of names; they now live in
    :mod:`repro.api.registry`.  The shims keep old imports working (one
    snapshot per access — later third-party registrations appear on the
    next access).
    """
    shims = {
        "WORKLOADS": lambda: {
            entry.name: (lambda e=entry: e.create())
            for entry in registry.workloads.items()
        },
        "SPACES": lambda: {
            entry.name: entry.factory for entry in registry.spaces.items()
        },
        "HIERARCHIES": lambda: {
            entry.name: entry.factory for entry in registry.hierarchies.items()
        },
        "STRATEGIES": lambda: tuple(registry.strategies.names()),
    }
    if name in shims:
        warnings.warn(
            f"repro.cli.{name} is deprecated; use repro.api.registry instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return shims[name]()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _jobs_count(text: str) -> int:
    """argparse type for ``--jobs``: a non-negative worker count."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0 (0 = all CPU cores)")
    return value


def _shard_label(text: str) -> str:
    """argparse type for ``--shard``: validates the ``K/N`` form early."""
    from .core.exploration import ShardSpec

    try:
        ShardSpec.parse(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dmexplore",
        description=(
            "Automated exploration of Pareto-optimal dynamic-memory allocator "
            "configurations (DATE 2006 reproduction)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    explore_parser = subparsers.add_parser("explore", help="run an exploration")
    explore_parser.add_argument(
        "--workload",
        choices=registry.workloads.names(),
        default=_DEFAULTS.workload.name,
    )
    explore_parser.add_argument(
        "--space", choices=registry.spaces.names(), default=_DEFAULTS.space.name
    )
    explore_parser.add_argument(
        "--hierarchy",
        choices=registry.hierarchies.names(),
        default=_DEFAULTS.hierarchy.name,
    )
    explore_parser.add_argument("--seed", type=int, default=_DEFAULTS.seed)
    explore_parser.add_argument(
        "--sample",
        type=int,
        default=_DEFAULTS.sample,
        help="random-sample N points instead of exhaustive",
    )
    explore_parser.add_argument("--out", type=Path, default=Path("exploration.json"))
    explore_parser.add_argument(
        "--metrics", nargs="+", choices=metric_keys(), default=_DEFAULTS.metrics
    )
    explore_parser.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help=(
            "evaluate configurations on N worker processes "
            "(1 = serial, 0 = all CPU cores)"
        ),
    )
    explore_parser.add_argument(
        "--strategy",
        choices=registry.strategies.names(),
        default=_DEFAULTS.strategy.name,
        help="exhaustive enumeration (default) or a heuristic search",
    )
    explore_parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_SEARCH_BUDGET,
        help="evaluation budget for heuristic strategies (ignored by exhaustive)",
    )
    explore_parser.add_argument(
        "--store",
        type=Path,
        nargs="?",
        const=None,
        default=argparse.SUPPRESS,
        help=(
            "persist evaluated points in a result store and reuse them on "
            "later runs; without PATH the store lives under ~/.cache/"
            "dmexplore"
        ),
    )
    explore_parser.add_argument(
        "--store-format",
        choices=("jsonl", "binary"),
        default="jsonl",
        help=(
            "on-disk format of the --store file: 'jsonl' (text-tool "
            "friendly) or 'binary' (parse-free loads at scale); an existing "
            "store keeps its format"
        ),
    )
    explore_parser.add_argument(
        "--shard",
        type=_shard_label,
        default=_DEFAULTS.shard or None,
        metavar="K/N",
        help=(
            "evaluate only shard K of N (1-based) of the enumeration; "
            "merge the shard artefacts with 'dmexplore merge'"
        ),
    )
    explore_parser.add_argument(
        "--prune",
        action="store_true",
        default=_DEFAULTS.prune,
        help=(
            "heuristic strategies only: skip candidates whose prefix-replay "
            "metrics are already dominated by the live Pareto front, before "
            "full profiling"
        ),
    )
    explore_parser.add_argument(
        "--prune-fraction",
        type=float,
        default=_DEFAULTS.prune_fraction,
        metavar="F",
        help=(
            "fraction of the trace replayed to predict a candidate's metrics "
            f"when --prune is on (default {_DEFAULTS.prune_fraction})"
        ),
    )

    run_parser = subparsers.add_parser(
        "run", help="run an experiment described by a JSON spec file"
    )
    run_parser.add_argument(
        "experiment", type=Path, help="experiment file written by 'dmexplore spec'"
    )
    run_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "override one spec field with a dotted path, e.g. "
            "--set strategy.name=random --set strategy.params.budget=64 "
            "(repeatable; values parse as JSON, else as strings)"
        ),
    )
    run_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="validate and print the resolved spec instead of running it",
    )
    run_parser.add_argument("--out", type=Path, default=Path("exploration.json"))

    spec_parser = subparsers.add_parser(
        "spec", help="emit the commented default experiment description"
    )
    spec_parser.add_argument(
        "--out", type=Path, default=None, help="write to PATH instead of stdout"
    )

    list_parser = subparsers.add_parser(
        "list", help="enumerate the registered experiment components"
    )
    list_parser.add_argument(
        "kind",
        nargs="?",
        choices=sorted(LIST_KINDS),
        default=None,
        help="one registry to list (all of them without an argument)",
    )

    merge_parser = subparsers.add_parser(
        "merge", help="union shard artefacts into one result database"
    )
    merge_parser.add_argument("inputs", type=Path, nargs="+")
    merge_parser.add_argument("--out", type=Path, default=Path("merged.json"))

    pareto_parser = subparsers.add_parser("pareto", help="list Pareto-optimal configurations")
    pareto_parser.add_argument("database", type=Path)
    pareto_parser.add_argument(
        "--metrics", nargs="+", choices=metric_keys(), default=None
    )

    report_parser = subparsers.add_parser("report", help="print the exploration dashboard")
    report_parser.add_argument(
        "database",
        type=Path,
        nargs="?",
        default=None,
        help="JSON artefact written by 'explore' or 'merge' (or use --store)",
    )
    report_parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "stream records straight from a persistent result store instead "
            "of a JSON artefact; --workload/--space/--hierarchy/--seed select "
            "the evaluation context, exactly as they did for 'explore'"
        ),
    )
    report_parser.add_argument(
        "--workload",
        choices=registry.workloads.names(),
        default=_DEFAULTS.workload.name,
    )
    report_parser.add_argument(
        "--space", choices=registry.spaces.names(), default=_DEFAULTS.space.name
    )
    report_parser.add_argument(
        "--hierarchy",
        choices=registry.hierarchies.names(),
        default=_DEFAULTS.hierarchy.name,
    )
    report_parser.add_argument("--seed", type=int, default=_DEFAULTS.seed)
    report_parser.add_argument(
        "--metrics",
        nargs="+",
        choices=metric_keys(),
        default=None,
        help="emit (and extract the Pareto front over) only these metrics",
    )
    report_parser.add_argument("--export-dir", type=Path, default=None)
    report_parser.add_argument("--x-metric", choices=metric_keys(), default="accesses")
    report_parser.add_argument("--y-metric", choices=metric_keys(), default="footprint")

    serve_parser = subparsers.add_parser(
        "serve", help="coordinate a distributed exploration over worker processes"
    )
    serve_parser.add_argument(
        "experiment", type=Path, help="experiment file written by 'dmexplore spec'"
    )
    serve_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one spec field with a dotted path (as in 'run')",
    )
    serve_parser.add_argument(
        "--host",
        default=None,
        help="interface to listen on (default: spec serve.params.host, 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="port to listen on (default: spec serve.params.port; 0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--lease-size",
        type=int,
        default=None,
        metavar="N",
        help="points per lease (default: spec serve.params.lease_size, else auto)",
    )
    serve_parser.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-lease a range when its worker misses heartbeats this long",
    )
    serve_parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "shared result store path workers commit to (default: the spec's "
            "store path, else ~/.cache/dmexplore; the spec's store kind "
            "decides the jsonl/binary format)"
        ),
    )
    serve_parser.add_argument("--out", type=Path, default=Path("exploration.json"))

    worker_parser = subparsers.add_parser(
        "worker", help="evaluate leased ranges for a running coordinator"
    )
    worker_parser.add_argument(
        "address", metavar="HOST:PORT", help="the coordinator's listen address"
    )
    worker_parser.add_argument(
        "--experiment",
        type=Path,
        default=None,
        help=(
            "local copy of the experiment file; its spec hash is sent in the "
            "hello so a mismatched worker is rejected up front"
        ),
    )
    worker_parser.add_argument(
        "--name",
        default="",
        help="worker identity in coordinator logs (default: worker-<pid>)",
    )

    store_parser = subparsers.add_parser(
        "store", help="maintain result store files (compact, convert, info)"
    )
    store_subparsers = store_parser.add_subparsers(
        dest="store_command", required=True, metavar="ACTION"
    )
    compact_parser = store_subparsers.add_parser(
        "compact",
        help=(
            "rewrite a store down to its live (last-write-wins) set, "
            "atomically and provenance-preservingly"
        ),
    )
    compact_parser.add_argument("path", type=Path, help="store file to compact")
    compact_parser.add_argument(
        "--format",
        choices=("jsonl", "binary"),
        default=None,
        help="also re-encode into this format while compacting",
    )
    convert_parser = store_subparsers.add_parser(
        "convert",
        help=(
            "rewrite a store into another format at a new path, keeping "
            "every entry in file order"
        ),
    )
    convert_parser.add_argument("source", type=Path, help="store file to read")
    convert_parser.add_argument("destination", type=Path, help="store file to write")
    convert_parser.add_argument(
        "--format",
        choices=("jsonl", "binary"),
        required=True,
        help="format of the destination store",
    )
    info_parser = store_subparsers.add_parser(
        "info", help="print a store's format, size and entry counts"
    )
    info_parser.add_argument("path", type=Path, help="store file to inspect")

    windows_parser = subparsers.add_parser(
        "windows",
        help="windowed (phase) Pareto analysis: one front per trace window",
    )
    windows_parser.add_argument(
        "--workload",
        choices=registry.workloads.names(),
        default=_DEFAULTS.workload.name,
    )
    windows_parser.add_argument(
        "--space", choices=registry.spaces.names(), default=_DEFAULTS.space.name
    )
    windows_parser.add_argument(
        "--hierarchy",
        choices=registry.hierarchies.names(),
        default=_DEFAULTS.hierarchy.name,
    )
    windows_parser.add_argument("--seed", type=int, default=_DEFAULTS.seed)
    windows_parser.add_argument(
        "--sample",
        type=int,
        default=_DEFAULTS.sample,
        help="random-sample N points instead of exhaustive",
    )
    window_size = windows_parser.add_mutually_exclusive_group()
    window_size.add_argument(
        "--window-events",
        type=int,
        default=None,
        metavar="N",
        help="cut the trace into windows of N events (default 1000)",
    )
    window_size.add_argument(
        "--window-time",
        type=int,
        default=None,
        metavar="TICKS",
        help="cut the trace into windows of TICKS timestamp ticks",
    )
    windows_parser.add_argument(
        "--metrics", nargs="+", choices=metric_keys(), default=_DEFAULTS.metrics
    )
    windows_parser.add_argument("--out", type=Path, default=Path("windows.json"))
    windows_parser.add_argument(
        "--store",
        type=Path,
        nargs="?",
        const=None,
        default=argparse.SUPPRESS,
        help=(
            "persist the final records (plain fingerprint) and each "
            "window's records (fingerprint:wK) in a result store; without "
            "PATH the store lives under ~/.cache/dmexplore"
        ),
    )
    windows_parser.add_argument(
        "--store-format",
        choices=("jsonl", "binary"),
        default="jsonl",
        help="on-disk format of the --store file (an existing store keeps its format)",
    )

    trace_parser = subparsers.add_parser("trace", help="generate and save a workload trace")
    trace_parser.add_argument(
        "--workload",
        choices=registry.workloads.names(),
        default=_DEFAULTS.workload.name,
    )
    trace_parser.add_argument("--seed", type=int, default=_DEFAULTS.seed)
    trace_parser.add_argument("--out", type=Path, required=True)

    return parser


# -- spec construction and execution ------------------------------------------


def _spec_from_explore_args(args: argparse.Namespace) -> ExperimentSpec:
    """Translate ``explore`` flags into the equivalent experiment spec."""
    if args.jobs == 1:
        backend = ComponentRef("serial")
    elif args.jobs == 0:
        backend = ComponentRef("process")
    else:
        backend = ComponentRef("process", {"jobs": args.jobs})
    if hasattr(args, "store"):  # --store given (with or without a path)
        store = ComponentRef(
            getattr(args, "store_format", "jsonl"),
            {"path": str(args.store)} if args.store is not None else {},
        )
    else:
        store = ComponentRef("none")
    strategy_params = (
        {} if args.strategy == "exhaustive" else {"budget": args.budget}
    )
    return ExperimentSpec(
        workload=ComponentRef(args.workload),
        space=ComponentRef(args.space),
        hierarchy=ComponentRef(args.hierarchy),
        strategy=ComponentRef(args.strategy, strategy_params),
        backend=backend,
        store=store,
        seed=args.seed,
        metrics=tuple(args.metrics) if args.metrics else None,
        sample=args.sample,
        shard=args.shard or "",
        prune=args.prune,
        prune_fraction=args.prune_fraction,
    )


def _print_banner(resolved: ResolvedExperiment) -> None:
    """The pre-run description lines every execution path prints."""
    spec = resolved.spec
    print(f"workload: {resolved.workload.describe()}")
    print(f"space: {resolved.space.size()} configurations ({spec.space.name})")
    if resolved.shard is not None:
        owned = resolved.shard.size_of(spec.sample or resolved.space.size())
        print(f"shard: {resolved.shard.label} ({owned} configurations this run)")
    print(f"evaluation backend: {getattr(resolved.backend, 'jobs', 1)} job(s)")
    if resolved.store is not None:
        print(
            f"result store: {resolved.store.path} "
            f"({resolved.store.loaded} entries loaded, "
            f"{resolved.store.corrupt_entries} corrupt skipped)"
        )


def _execute_spec(spec: ExperimentSpec, out: Path) -> int:
    """Run a validated spec, write the artefact, print the report.

    The single execution path behind both ``explore`` and ``run`` — which
    is what makes their artefacts byte-identical for equivalent inputs.
    """
    experiment = Experiment(spec, progress=True)
    resolved = experiment.resolve()
    _print_banner(resolved)
    result = experiment.run()
    result.database.to_json(out)
    print(f"stored {len(result.database)} results in {out}")
    print(result.report(title=f"{spec.workload.name} exploration"))
    return 0


def _command_explore(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_explore_args(args)
        return _execute_spec(spec, args.out)
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _command_run(args: argparse.Namespace) -> int:
    try:
        document = json.loads(args.experiment.read_text(encoding="utf-8"))
    except OSError as error:
        print(f"error: cannot read experiment file: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: {args.experiment} is not valid JSON: {error}", file=sys.stderr)
        return 2
    try:
        if not isinstance(document, dict):
            raise SpecError("experiment document must be a JSON object")
        apply_overrides(document, args.overrides)
        spec = ExperimentSpec.from_dict(document)
        if args.dry_run:
            spec.validate()
            print(json.dumps(spec.to_dict(), indent=2))
            return 0
        # _execute_spec validates through the Experiment constructor.
        return _execute_spec(spec, args.out)
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _command_spec(args: argparse.Namespace) -> int:
    text = json.dumps(default_spec_document(), indent=2) + "\n"
    if args.out is not None:
        try:
            args.out.write_text(text, encoding="utf-8")
        except OSError as error:
            print(f"error: cannot write spec file: {error}", file=sys.stderr)
            return 2
        print(f"wrote default experiment spec to {args.out}")
    else:
        print(text, end="")
    return 0


def _strategy_params_line(entry) -> str | None:
    """The tunable-params signature of a search-strategy entry, or ``None``.

    Strategies wrapped by :func:`~repro.api.registry.search_strategy_factory`
    expose their class; its constructor signature (minus the arguments the
    experiment layer supplies: engine, budget, metrics, prune settings) is
    exactly what ``strategy.params`` accepts, with the shown defaults.
    """
    import inspect

    cls = getattr(entry.factory, "strategy_class", None)
    if cls is None:
        return None
    supplied = {"self", "engine", "budget", "metrics", "prune", "prune_fraction"}
    parts = [f"budget={entry.defaults.get('budget', DEFAULT_SEARCH_BUDGET)}"]
    for name, parameter in inspect.signature(cls.__init__).parameters.items():
        if name in supplied or parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.default is inspect.Parameter.empty:
            parts.append(name)
        else:
            parts.append(f"{name}={parameter.default}")
    return "params: " + ", ".join(parts)


def _command_list(args: argparse.Namespace) -> int:
    kinds = [args.kind] if args.kind else sorted(LIST_KINDS)
    for position, kind in enumerate(kinds):
        if position:
            print()
        print(f"{kind}:")
        for entry in LIST_KINDS[kind].items():
            description = entry.description or "(no description)"
            print(f"  {entry.name:<14} {description}")
            params_line = _strategy_params_line(entry)
            if params_line is not None:
                print(f"  {'':<14} {params_line}")
    return 0


def _command_merge(args: argparse.Namespace) -> int:
    try:
        databases = [ResultDatabase.from_json(path) for path in args.inputs]
    except (OSError, ValueError) as error:
        print(f"error: cannot load artefact: {error}", file=sys.stderr)
        return 2
    try:
        merged = merge_databases(databases)
    except MergeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    merged.to_json(args.out)
    total = sum(len(database) for database in databases)
    print(
        f"merged {len(databases)} artefacts ({total} records) "
        f"into {args.out} ({len(merged)} records)"
    )
    print(f"Pareto-optimal configurations after merge: {len(merged.pareto_records())}")
    return 0


def _command_pareto(args: argparse.Namespace) -> int:
    database = ResultDatabase.from_json(args.database)
    records = database.pareto_records(args.metrics)
    print(f"{len(records)} Pareto-optimal configurations (of {len(database)}):")
    for record in sorted(records, key=lambda r: r.metrics.accesses):
        print("  " + describe_record(record, args.metrics))
    return 0


def _command_report(args: argparse.Namespace) -> int:
    if (args.database is None) == (args.store is None):
        print(
            "error: report needs exactly one input: a JSON artefact or --store PATH",
            file=sys.stderr,
        )
        return 2
    if args.store is not None:
        database = _streamed_view(args)
        if database is None:
            return 2
    else:
        database = ResultDatabase.from_json(args.database)
    print(
        dashboard(
            database,
            x_metric=args.x_metric,
            y_metric=args.y_metric,
            metrics=args.metrics,
        )
    )
    if args.export_dir is not None:
        paths = export_artifacts(database, args.export_dir, metrics=args.metrics)
        print("\nexported artefacts:")
        for kind, path in sorted(paths.items()):
            print(f"  {kind}: {path}")
    return 0


def _streamed_view(args: argparse.Namespace) -> StreamingResultView | None:
    """Build the streaming report view for ``report --store``.

    The workload/space/hierarchy/seed flags reconstruct the evaluation
    fingerprint exactly as ``explore`` computed it (through the same
    experiment resolution), then the store file is replayed as a record
    stream in global enumeration order — the report is byte-identical to
    one over the merged JSON artefacts of the same runs, without ever
    materialising the records.
    """
    if not args.store.exists():
        print(f"error: result store {args.store} does not exist", file=sys.stderr)
        return None
    spec = ExperimentSpec(
        workload=ComponentRef(args.workload),
        space=ComponentRef(args.space),
        hierarchy=ComponentRef(args.hierarchy),
        seed=args.seed,
    )
    resolved = Experiment(spec).resolve()
    try:
        source = StoreRecordSource(
            args.store, resolved.engine.fingerprint, space=resolved.space
        )
    except (StoreError, OSError) as error:
        print(f"error: cannot read result store: {error}", file=sys.stderr)
        return None
    if len(source) == 0:
        print(
            f"error: {args.store} holds no records for workload "
            f"'{args.workload}', space '{args.space}', seed {args.seed} "
            f"(skipped: {source.foreign_entries} other contexts, "
            f"{source.outside_space} outside the space, "
            f"{source.corrupt_entries} corrupt)",
            file=sys.stderr,
        )
        return None
    return StreamingResultView(source, name=f"{resolved.trace.name}-exploration")


def _command_serve(args: argparse.Namespace) -> int:
    # repro.distrib is imported lazily: every other subcommand works without
    # it, and the import pulls in the whole experiment layer eagerly.
    from .distrib import DistribError, serve_experiment

    try:
        document = json.loads(args.experiment.read_text(encoding="utf-8"))
    except OSError as error:
        print(f"error: cannot read experiment file: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: {args.experiment} is not valid JSON: {error}", file=sys.stderr)
        return 2
    try:
        if not isinstance(document, dict):
            raise SpecError("experiment document must be a JSON object")
        apply_overrides(document, args.overrides)
        spec = ExperimentSpec.from_dict(document)
        database = serve_experiment(
            spec,
            out=args.out,
            host=args.host,
            port=args.port,
            lease_size=args.lease_size,
            lease_timeout=args.lease_timeout,
            store_path=str(args.store) if args.store is not None else None,
        )
    except (SpecError, DistribError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"stored {len(database)} results in {args.out}")
    print(
        f"Pareto-optimal configurations: "
        f"{len(database.pareto_records(list(spec.metrics) if spec.metrics else None))}"
    )
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from .distrib import parse_address, run_worker

    try:
        address = parse_address(args.address)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    spec_hash = ""
    if args.experiment is not None:
        try:
            spec_hash = ExperimentSpec.from_json(args.experiment).spec_hash()
        except SpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    return run_worker(address, spec_hash=spec_hash, name=args.name)


def _command_store(args: argparse.Namespace) -> int:
    from .core.store import compact_store, convert_store, store_info

    try:
        if args.store_command == "compact":
            stats = compact_store(args.path, output_format=args.format)
            print(
                f"compacted {stats['path']} ({stats['format']}): "
                f"{stats['live']} live of {stats['entries']} entries "
                f"({stats['dead']} dead, {stats['corrupt']} corrupt), "
                f"{stats['bytes_before']} -> {stats['bytes_after']} bytes"
            )
        elif args.store_command == "convert":
            stats = convert_store(args.source, args.destination, args.format)
            print(
                f"converted {stats['source']} ({stats['source_format']}) -> "
                f"{stats['path']} ({stats['format']}): "
                f"{stats['entries']} entries ({stats['corrupt']} corrupt), "
                f"{stats['bytes_before']} -> {stats['bytes_after']} bytes"
            )
        else:  # info
            stats = store_info(args.path)
            print(f"path:    {stats['path']}")
            print(f"format:  {stats['format']}")
            print(f"size:    {stats['size_bytes']} bytes")
            print(f"entries: {stats['entries']}")
            print(f"live:    {stats['live']}")
            print(f"dead:    {stats['dead']}")
            print(f"corrupt: {stats['corrupt']}")
    except (StoreError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _command_windows(args: argparse.Namespace) -> int:
    """Run the windowed phase analysis (``repro.stream.windows``) from flags."""
    from .core.reporting import exploration_report
    from .stream import WindowSpec, windowed_exploration

    if hasattr(args, "store"):  # --store given (with or without a path)
        store = ComponentRef(
            args.store_format,
            {"path": str(args.store)} if args.store is not None else {},
        )
    else:
        store = ComponentRef("none")
    try:
        spec = ExperimentSpec(
            workload=ComponentRef(args.workload),
            space=ComponentRef(args.space),
            hierarchy=ComponentRef(args.hierarchy),
            store=store,
            seed=args.seed,
            sample=args.sample,
            metrics=tuple(args.metrics) if args.metrics else None,
        )
        resolved = Experiment(spec).resolve()
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.window_time is not None:
        window = WindowSpec(time=args.window_time)
    else:
        window = WindowSpec(events=args.window_events or 1000)
    _print_banner(resolved)
    print(f"windows: {window.size} {window.mode} per window")
    try:
        database, analysis = windowed_exploration(
            resolved.engine,
            window,
            metrics=resolved.metrics,
            sink=resolved.sink,
        )
    finally:
        resolved.engine.close()
        if resolved.store is not None:
            resolved.store.close()
        if resolved.sink is not None and hasattr(resolved.sink, "finish"):
            resolved.sink.finish()
    database.to_json(args.out)
    print(
        f"stored {len(database)} results ({len(analysis)} windows, "
        f"{len(analysis.shifts())} front shifts) in {args.out}"
    )
    print(
        exploration_report(
            database,
            title=f"{spec.workload.name} windowed exploration",
            metrics=resolved.metrics,
        )
    )
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    workload = registry.workloads.create(args.workload)
    trace = workload.generate(seed=args.seed)
    lines = save_trace(trace, args.out)
    summary = trace.summary()
    print(f"wrote {lines} lines to {args.out}")
    print(
        f"{summary.alloc_count} allocations / {summary.free_count} frees, "
        f"peak live {summary.peak_live_bytes} bytes"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``dmexplore`` and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "explore": _command_explore,
        "run": _command_run,
        "spec": _command_spec,
        "list": _command_list,
        "merge": _command_merge,
        "pareto": _command_pareto,
        "report": _command_report,
        "serve": _command_serve,
        "worker": _command_worker,
        "store": _command_store,
        "windows": _command_windows,
        "trace": _command_trace,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
