"""Exploration core: parameter spaces, configurations, factory, Pareto analysis."""

from .configuration import (
    POOL_KINDS,
    AllocatorConfiguration,
    PoolSpec,
    configuration_from_point,
)
from .exploration import (
    EvaluationBackend,
    ExplorationEngine,
    ExplorationSettings,
    ProcessPoolBackend,
    SerialBackend,
    canonical_point_key,
    explore,
    make_backend,
)
from .factory import AllocatorFactory, BuiltAllocator, build_allocator
from .parameters import Parameter, ParameterSpace
from .pareto import (
    dominates,
    hypervolume_2d,
    knee_point,
    non_dominated,
    pareto_front,
    pareto_front_indices,
    pareto_rank,
    sort_front,
)
from .reporting import (
    describe_record,
    exploration_report,
    format_metric_value,
    pareto_listing,
    tradeoff_table,
)
from .results import ExplorationRecord, ResultDatabase
from .search import (
    EvolutionarySearch,
    HillClimbSearch,
    RandomSearch,
    SearchBudget,
    SearchStrategy,
)
from .space import (
    compact_parameter_space,
    default_parameter_space,
    easyport_parameter_space,
    smoke_parameter_space,
    vtc_parameter_space,
)
from .tradeoff import (
    MetricTradeoff,
    TradeoffAnalysis,
    TradeoffSummary,
    compare_against_baseline,
)

__all__ = [
    "AllocatorConfiguration",
    "AllocatorFactory",
    "BuiltAllocator",
    "EvaluationBackend",
    "EvolutionarySearch",
    "ExplorationEngine",
    "ExplorationRecord",
    "ExplorationSettings",
    "ProcessPoolBackend",
    "SerialBackend",
    "HillClimbSearch",
    "MetricTradeoff",
    "POOL_KINDS",
    "Parameter",
    "ParameterSpace",
    "PoolSpec",
    "RandomSearch",
    "ResultDatabase",
    "SearchBudget",
    "SearchStrategy",
    "TradeoffAnalysis",
    "TradeoffSummary",
    "build_allocator",
    "canonical_point_key",
    "compact_parameter_space",
    "compare_against_baseline",
    "configuration_from_point",
    "default_parameter_space",
    "describe_record",
    "dominates",
    "easyport_parameter_space",
    "exploration_report",
    "explore",
    "format_metric_value",
    "hypervolume_2d",
    "knee_point",
    "make_backend",
    "non_dominated",
    "pareto_front",
    "pareto_front_indices",
    "pareto_listing",
    "pareto_rank",
    "smoke_parameter_space",
    "sort_front",
    "tradeoff_table",
    "vtc_parameter_space",
]
