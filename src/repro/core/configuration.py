"""Allocator configurations.

A configuration is the complete recipe for one candidate allocator: the list
of pools to compose (with their types, block sizes and policies) and the
memory-hierarchy placement of each pool.  Configurations are pure data —
they can be hashed, serialised, stored in result databases and rebuilt into
a live allocator by :mod:`repro.core.factory`.

:func:`configuration_from_point` translates a parameter-space point (the
"what the designer swept" view) into a configuration (the "what gets built"
view).  That translation encodes the paper's methodology: the ``n`` most
frequent block sizes of the application get dedicated pools, placed where
the mapping parameter says, in front of a general fallback pool whose
internal policies are the remaining parameters.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..allocator.errors import ConfigurationError

#: Pool kinds the factory knows how to build.
POOL_KINDS = ("fixed", "slab", "general", "segregated", "buddy", "region")


@dataclass(frozen=True)
class PoolSpec:
    """Declarative description of one pool of a composed allocator.

    Attributes
    ----------
    name:
        Unique pool name within the configuration.
    kind:
        One of :data:`POOL_KINDS`.
    block_size:
        Served block size for ``fixed``/``slab`` pools (ignored otherwise).
    module:
        Name of the memory module the pool is placed on; empty string means
        the hierarchy's background (last-level) module.
    reserved_bytes:
        Explicit capacity reservation on the module (``None`` = remaining).
    free_list / fit / coalescing / splitting:
        Policy names for ``general`` pools.
    chunk_size:
        Growth granularity of the pool's backing region.
    max_block_size:
        Largest request the pool accepts (``None`` = unbounded); used to
        bound general pools when a larger fallback exists behind them.
    """

    name: str
    kind: str = "general"
    block_size: int = 0
    module: str = ""
    reserved_bytes: int | None = None
    free_list: str = "lifo"
    fit: str = "first_fit"
    coalescing: str = "never"
    splitting: str = "never"
    chunk_size: int = 4096
    max_block_size: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("pool spec needs a name")
        if self.kind not in POOL_KINDS:
            raise ConfigurationError(
                f"unknown pool kind '{self.kind}' (valid: {', '.join(POOL_KINDS)})"
            )
        if self.kind in ("fixed", "slab") and self.block_size <= 0:
            raise ConfigurationError(
                f"pool '{self.name}' of kind '{self.kind}' needs a positive block_size"
            )
        if self.chunk_size <= 0:
            raise ConfigurationError(f"pool '{self.name}' needs a positive chunk_size")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "block_size": self.block_size,
            "module": self.module,
            "reserved_bytes": self.reserved_bytes,
            "free_list": self.free_list,
            "fit": self.fit,
            "coalescing": self.coalescing,
            "splitting": self.splitting,
            "chunk_size": self.chunk_size,
            "max_block_size": self.max_block_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PoolSpec":
        return cls(**data)


@dataclass
class AllocatorConfiguration:
    """One point of the design space, ready to be built and profiled."""

    pools: list[PoolSpec] = field(default_factory=list)
    label: str = ""
    parameters: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.pools:
            raise ConfigurationError("a configuration needs at least one pool")
        names = [pool.name for pool in self.pools]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate pool names in configuration: {names}")

    @property
    def configuration_id(self) -> str:
        """Stable identifier derived from the configuration contents."""
        if self.label:
            return self.label
        return self.fingerprint()

    def fingerprint(self) -> str:
        """Content hash (stable across processes) of the configuration."""
        payload = json.dumps(
            [pool.as_dict() for pool in self.pools], sort_keys=True
        ).encode("utf-8")
        return "cfg_" + hashlib.sha1(payload).hexdigest()[:12]

    @property
    def dedicated_pools(self) -> list[PoolSpec]:
        """Pools serving a single block size (fixed or slab)."""
        return [pool for pool in self.pools if pool.kind in ("fixed", "slab")]

    @property
    def fallback_pool(self) -> PoolSpec:
        """The last pool, which must accept every request size."""
        return self.pools[-1]

    def pools_on_module(self, module_name: str) -> list[PoolSpec]:
        return [pool for pool in self.pools if pool.module == module_name]

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "parameters": self.parameters,
            "pools": [pool.as_dict() for pool in self.pools],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AllocatorConfiguration":
        return cls(
            pools=[PoolSpec.from_dict(entry) for entry in data["pools"]],
            label=data.get("label", ""),
            parameters=dict(data.get("parameters", {})),
        )

    def describe(self) -> str:
        lines = [f"Configuration {self.configuration_id}:"]
        for pool in self.pools:
            placement = pool.module or "(background)"
            if pool.kind in ("fixed", "slab"):
                detail = f"{pool.kind} pool for {pool.block_size}-byte blocks"
            elif pool.kind == "general":
                detail = (
                    f"general pool [{pool.free_list}/{pool.fit}/"
                    f"coalesce:{pool.coalescing}/split:{pool.splitting}]"
                )
            else:
                detail = f"{pool.kind} pool"
            lines.append(f"  {pool.name}: {detail} -> {placement}")
        return "\n".join(lines)


def configuration_from_point(
    point: dict,
    hot_sizes: list[int],
    scratchpad_module: str = "l1_scratchpad",
    main_module: str = "main_memory",
    label: str = "",
) -> AllocatorConfiguration:
    """Translate a parameter-space point into a buildable configuration.

    The expected parameters (each optional, with a general-purpose default)
    are the axes of :func:`repro.core.space.default_parameter_space`:

    ``num_dedicated_pools``
        How many of the application's ``hot_sizes`` get a dedicated pool.
    ``dedicated_pool_kind``
        ``"fixed"`` or ``"slab"`` dedicated pools.
    ``dedicated_pool_placement``
        ``"scratchpad"`` or ``"main"`` — where dedicated pools live.
    ``general_free_list`` / ``general_fit`` / ``general_coalescing`` /
    ``general_splitting``
        Policies of the general fallback pool.
    ``general_placement``
        Placement of the general pool (usually main memory).
    ``chunk_size``
        Growth granularity of the general pool.
    """
    num_dedicated = int(point.get("num_dedicated_pools", 0))
    if num_dedicated < 0:
        raise ConfigurationError("num_dedicated_pools must be non-negative")
    if num_dedicated > len(hot_sizes):
        num_dedicated = len(hot_sizes)

    dedicated_kind = str(point.get("dedicated_pool_kind", "fixed"))
    dedicated_placement = str(point.get("dedicated_pool_placement", "scratchpad"))
    general_placement = str(point.get("general_placement", "main"))
    chunk_size = int(point.get("chunk_size", 4096))

    def module_for(placement: str) -> str:
        if placement == "scratchpad":
            return scratchpad_module
        if placement == "main":
            return main_module
        # Allow explicit module names to pass through for richer hierarchies.
        return placement

    pools: list[PoolSpec] = []
    # Dedicated pools are dispatched smallest-block-size first so that a
    # request is served by the tightest dedicated pool that fits it.
    selected_sizes = sorted(hot_sizes[:num_dedicated])
    for size in selected_sizes:
        pools.append(
            PoolSpec(
                name=f"dedicated_{size}B",
                kind=dedicated_kind,
                block_size=size,
                module=module_for(dedicated_placement),
                chunk_size=min(chunk_size, 4096),
            )
        )

    pools.append(
        PoolSpec(
            name="general",
            kind="general",
            module=module_for(general_placement),
            free_list=str(point.get("general_free_list", "lifo")),
            fit=str(point.get("general_fit", "first_fit")),
            coalescing=str(point.get("general_coalescing", "never")),
            splitting=str(point.get("general_splitting", "never")),
            chunk_size=chunk_size,
        )
    )

    return AllocatorConfiguration(pools=pools, label=label, parameters=dict(point))
