"""Exploration engine: the automated flow of the paper.

Given a parameter space, a workload trace and a memory hierarchy, the engine

1. enumerates the space (exhaustively or by sampling),
2. builds the allocator for every point (:mod:`repro.core.factory`),
3. profiles the trace through it (:mod:`repro.profiling.profiler`),
4. stores the metrics in a :class:`ResultDatabase`,
5. and extracts the Pareto-optimal configurations.

This is the fully automated loop of Figure 1 of the paper; the GUI/plot
outputs live in :mod:`repro.gui` and consume the database produced here.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from ..memhier.energy import EnergyModel
from ..memhier.hierarchy import MemoryHierarchy, embedded_two_level
from ..profiling.metrics import metric_keys
from ..profiling.profiler import Profiler, ProfilerOptions
from ..profiling.tracer import AllocationTrace
from .configuration import AllocatorConfiguration, configuration_from_point
from .factory import AllocatorFactory
from .parameters import ParameterSpace
from .results import ExplorationRecord, ResultDatabase


@dataclass
class ExplorationSettings:
    """Tunables of an exploration run."""

    metrics: list[str] = field(default_factory=metric_keys)
    sample: int | None = None
    sample_seed: int = 0
    payload_access_factor: float = 2.0
    progress_every: int = 0
    label_prefix: str = "cfg"


class ExplorationEngine:
    """Drives the explore → profile → Pareto pipeline for one workload trace."""

    def __init__(
        self,
        space: ParameterSpace,
        trace: AllocationTrace,
        hierarchy: MemoryHierarchy | None = None,
        hot_sizes: list[int] | None = None,
        settings: ExplorationSettings | None = None,
        energy_model: EnergyModel | None = None,
        progress_callback: Callable[[int, int], None] | None = None,
    ) -> None:
        self.space = space
        self.trace = trace
        self.hierarchy = hierarchy or embedded_two_level()
        self.settings = settings or ExplorationSettings()
        self.energy_model = energy_model or EnergyModel(self.hierarchy)
        self.progress_callback = progress_callback
        # The hot block sizes drive which dedicated pools a configuration can
        # create; by default they are derived from the trace itself, exactly
        # as the paper's profiling pass would.
        self.hot_sizes = hot_sizes or trace.hot_sizes(top=8)
        self.factory = AllocatorFactory(self.hierarchy)

    # -- configuration construction ------------------------------------------

    def configuration_for(self, point: dict, label: str = "") -> AllocatorConfiguration:
        """Build the configuration corresponding to one parameter point."""
        return configuration_from_point(
            point,
            hot_sizes=self.hot_sizes,
            scratchpad_module=self.hierarchy.fastest.name,
            main_module=self.hierarchy.background_module.name,
            label=label,
        )

    def enumerate_points(self) -> Iterable[tuple[int, dict]]:
        """Yield (index, point) pairs according to the sampling settings."""
        if self.settings.sample is None:
            yield from enumerate(self.space.points())
        else:
            points = self.space.sample(self.settings.sample, seed=self.settings.sample_seed)
            yield from enumerate(points)

    # -- the exploration loop -----------------------------------------------

    def run_point(self, point: dict, label: str = "") -> ExplorationRecord:
        """Profile a single parameter point and return its record."""
        configuration = self.configuration_for(point, label=label)
        built = self.factory.build(configuration)
        profiler = Profiler(
            built.mapping,
            energy_model=self.energy_model,
            options=ProfilerOptions(
                payload_access_factor=self.settings.payload_access_factor
            ),
        )
        profile = profiler.run(built.allocator, self.trace, configuration.configuration_id)
        oom_failures = int(
            profile.per_pool.get("__profile__", {}).get("oom_failures", 0)
        )
        return ExplorationRecord(
            configuration=configuration,
            metrics=profile.totals,
            trace_name=self.trace.name,
            oom_failures=oom_failures,
        )

    def explore(self) -> ResultDatabase:
        """Run the exploration over the whole (or sampled) space."""
        database = ResultDatabase(name=f"{self.trace.name}-exploration")
        total = (
            self.space.size() if self.settings.sample is None else self.settings.sample
        )
        for index, point in self.enumerate_points():
            label = f"{self.settings.label_prefix}{index:05d}"
            record = self.run_point(point, label=label)
            database.add(record)
            if self.progress_callback is not None:
                self.progress_callback(index + 1, total)
            elif (
                self.settings.progress_every
                and (index + 1) % self.settings.progress_every == 0
            ):
                print(f"explored {index + 1}/{total} configurations", flush=True)
        return database

    # -- analysis shortcuts -----------------------------------------------

    def pareto(self, database: ResultDatabase) -> list[ExplorationRecord]:
        """Pareto-optimal records over the metrics chosen in the settings."""
        return database.pareto_records(self.settings.metrics)


def explore(
    space: ParameterSpace,
    trace: AllocationTrace,
    hierarchy: MemoryHierarchy | None = None,
    hot_sizes: list[int] | None = None,
    sample: int | None = None,
    metrics: list[str] | None = None,
) -> ResultDatabase:
    """One-shot exploration helper used by examples and benchmarks."""
    settings = ExplorationSettings(
        metrics=metrics or metric_keys(),
        sample=sample,
    )
    engine = ExplorationEngine(
        space,
        trace,
        hierarchy=hierarchy,
        hot_sizes=hot_sizes,
        settings=settings,
    )
    return engine.explore()
