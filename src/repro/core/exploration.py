"""Exploration engine: the automated flow of the paper.

Given a parameter space, a workload trace and a memory hierarchy, the engine

1. enumerates the space (exhaustively or by sampling),
2. builds the allocator for every point (:mod:`repro.core.factory`),
3. profiles the trace through it (:mod:`repro.profiling.profiler`),
4. stores the metrics in a :class:`ResultDatabase`,
5. and extracts the Pareto-optimal configurations.

This is the fully automated loop of Figure 1 of the paper; the GUI/plot
outputs live in :mod:`repro.gui` and consume the database produced here.

Point evaluations are independent of each other, so the engine delegates
them to a pluggable :class:`EvaluationBackend`:

* :class:`SerialBackend`      — evaluate the whole batch in-process through
                                the batch replay kernel (the default).
* :class:`ProcessPoolBackend` — fan whole sub-batches out over a
                                ``multiprocessing`` worker pool, one
                                contiguous slice per worker.  Results come
                                back in submission order, so a parallel run
                                produces a :class:`ResultDatabase` identical
                                to the serial one; batches at or below the
                                ``serial_threshold`` run in-process instead.

Independently of the backend, the engine memoises evaluations by the
canonicalised parameter point, so heuristic searches that revisit points
(hill-climb restarts, evolutionary populations) never re-profile the trace;
the cache hit/miss counters are surfaced on the produced databases.

Two further layers make large sweeps practical (see :mod:`repro.core.store`):

* the in-memory cache can be backed by a persistent
  :class:`~repro.core.store.ResultStore` (the L2), so repeated explorations
  of the same workload are incremental across processes and machines;
* exhaustive enumeration can be partitioned with a :class:`ShardSpec`
  (``--shard K/N`` on the CLI) so independent workers each evaluate a
  deterministic slice of the space and their artefacts are merged back with
  :func:`repro.core.store.merge_databases`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import multiprocessing
import os
import pickle
from collections import OrderedDict
from collections.abc import Callable, Iterable, Sequence
from dataclasses import asdict, dataclass, field, replace
from typing import Protocol, runtime_checkable

from ..memhier.energy import EnergyModel
from ..memhier.hierarchy import MemoryHierarchy, embedded_two_level
from ..profiling.batch import BatchReplayEngine
from ..profiling.metrics import metric_keys
from ..profiling.profiler import Profiler, ProfilerOptions
from ..profiling.tracer import AllocationTrace
from .configuration import AllocatorConfiguration, configuration_from_point
from .factory import AllocatorFactory
from .parameters import ParameterSpace
from .results import ExplorationRecord, Provenance, ResultDatabase, ResultSink
from .store import METRIC_VERSION, ResultStore


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a deterministically partitioned enumeration.

    Shard ``index`` (1-based) of ``count`` owns every enumeration position
    ``i`` with ``i % count == index - 1``.  The strided partition keeps the
    shards balanced whatever the enumeration order, and because ownership
    depends only on the position, ``N`` workers running ``1/N .. N/N`` cover
    the space exactly once with no coordination.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"K/N"`` (e.g. ``"2/3"``)."""
        parts = text.split("/")
        if len(parts) != 2:
            raise ValueError(f"shard must look like K/N (e.g. 2/3), got {text!r}")
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"shard must look like K/N (e.g. 2/3), got {text!r}"
            ) from None
        return cls(index=index, count=count)

    def owns(self, position: int) -> bool:
        """True when this shard evaluates enumeration position ``position``."""
        return position % self.count == self.index - 1

    def size_of(self, total: int) -> int:
        """How many of ``total`` enumeration positions this shard owns."""
        return len(range(self.index - 1, total, self.count))

    @property
    def label(self) -> str:
        """The ``"K/N"`` form, used in provenance and reports."""
        return f"{self.index}/{self.count}"


@dataclass
class ExplorationSettings:
    """Tunables of an exploration run."""

    metrics: list[str] = field(default_factory=metric_keys)
    sample: int | None = None
    sample_seed: int = 0
    payload_access_factor: float = 2.0
    progress_every: int = 0
    label_prefix: str = "cfg"
    shard: ShardSpec | None = None
    #: Route cache-miss batches through the shared
    #: :class:`~repro.profiling.batch.BatchReplayEngine` (one trace sweep
    #: scores every configuration that shares a pool group) instead of one
    #: full replay per point.  Byte-identical either way — the flag exists
    #: for A/B tests and as an escape hatch, not because results differ.
    batch_replay: bool = True


def canonical_point_key(point: dict) -> tuple:
    """Canonical, hashable form of a parameter point (sorted name/value pairs).

    Two dicts describing the same point — whatever their insertion order —
    map to the same key; this is the memoisation key of the engine cache.
    """
    return tuple(sorted(point.items()))


def _cached_copy(record: ExplorationRecord, label: str) -> ExplorationRecord:
    """Copy a memoised record for a repeat caller, honouring *their* label.

    The cached record carries the label of whoever profiled the point first
    (e.g. ``hillclimb_000012``); a later caller submitting its own label
    (e.g. ``evolutionary_000012``) must not record the point under the
    first caller's identity.  The copy also protects the cache from
    :meth:`ResultDatabase.add` assigning ``record.index`` in place.
    """
    copy = replace(record)
    if label and copy.configuration.label != label:
        copy.configuration = replace(copy.configuration, label=label)
    return copy


# -- evaluation backends -----------------------------------------------------


@runtime_checkable
class EvaluationBackend(Protocol):
    """Strategy object that evaluates a batch of parameter points.

    Implementations must return one :class:`ExplorationRecord` per submitted
    ``(point, label)`` item, **in submission order** — the engine relies on
    that to keep parallel runs byte-identical with serial ones.
    """

    def evaluate(
        self, engine: "ExplorationEngine", items: Sequence[tuple[dict, str]]
    ) -> list[ExplorationRecord]:
        """Profile every ``(point, label)`` item and return ordered records.

        The contract is batch-first: implementations receive the whole
        miss-batch at once so they can hand it to the shared batch replay
        kernel (serial) or carve it into per-worker sub-batches (pool)
        instead of profiling point by point.
        """
        ...

    def close(self) -> None:
        """Release any worker resources (idempotent)."""
        ...


class SerialBackend:
    """Evaluate batches in the calling process via the batch replay kernel."""

    jobs = 1

    def evaluate(
        self, engine: "ExplorationEngine", items: Sequence[tuple[dict, str]]
    ) -> list[ExplorationRecord]:
        return engine.run_points(items)

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialBackend()"


# Per-worker-process engine, installed by the pool initializer.  Module-level
# because ``multiprocessing`` can only dispatch to importable functions.
_WORKER_ENGINE: "ExplorationEngine | None" = None

# Compiled traces received by this process, keyed by (fingerprint, name).
# With the ``fork`` start method the parent pre-populates this cache before
# spawning workers, so re-created pools (e.g. after an engine settings
# change) inherit the trace through copy-on-write memory instead of
# re-deserialising it; ``spawn`` workers fall back to the shipped payload.
_WORKER_TRACE_CACHE: "dict[tuple[str, str], AllocationTrace]" = {}

#: Bound on the trace cache (a long-lived parent exploring many workloads
#: should not pin every trace it ever shipped).
_WORKER_TRACE_CACHE_LIMIT = 8


def _cache_trace(key: tuple[str, str], trace: AllocationTrace) -> None:
    if len(_WORKER_TRACE_CACHE) >= _WORKER_TRACE_CACHE_LIMIT:
        _WORKER_TRACE_CACHE.pop(next(iter(_WORKER_TRACE_CACHE)))
    _WORKER_TRACE_CACHE[key] = trace


#: Below this pickled-trace size the parent ships plain bytes: creating and
#: mapping a shared-memory segment costs more than copying a few kilobytes
#: into each worker's initargs.
_SHM_MIN_BYTES = 1 << 16


def _read_trace_ref(trace_ref: tuple) -> bytes:
    """Materialise a shipped trace payload from its descriptor.

    ``("bytes", payload)`` carries the pickle inline; ``("shm", name,
    nbytes)`` names a :mod:`multiprocessing.shared_memory` segment the
    parent created once for all workers — the worker attaches, copies the
    payload out and detaches immediately, so the mapping never outlives
    initialisation.
    """
    if trace_ref[0] == "bytes":
        return trace_ref[1]
    _kind, name, nbytes = trace_ref
    from multiprocessing import resource_tracker, shared_memory

    segment = shared_memory.SharedMemory(name=name)
    try:
        payload = bytes(segment.buf[:nbytes])
    finally:
        segment.close()
        try:
            # Attaching registers the segment with this process's resource
            # tracker (Python < 3.13 has no track=False); undo that so a
            # worker exiting cannot unlink the parent-owned segment.
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    return payload


def _pool_worker_init(
    engine_payload: bytes, trace_key: tuple[str, str], trace_ref: tuple
) -> None:
    """Install the worker's private engine (once per worker, not per task).

    ``engine_payload`` is the engine state *without* the trace;
    ``trace_ref`` describes the pickled compiled (columnar) trace (inline
    bytes or a shared-memory segment, see :func:`_read_trace_ref`), cached
    by ``trace_key`` so forked workers that already inherited the trace
    skip deserialisation entirely.
    """
    global _WORKER_ENGINE
    trace = _WORKER_TRACE_CACHE.get(trace_key)
    if trace is None:
        trace = AllocationTrace.from_compiled(pickle.loads(_read_trace_ref(trace_ref)))
        _cache_trace(trace_key, trace)
    state = pickle.loads(engine_payload)
    state["trace"] = trace
    engine = ExplorationEngine.__new__(ExplorationEngine)
    engine.__setstate__(state)
    _WORKER_ENGINE = engine


def _pool_worker_evaluate(item: tuple[dict, str]) -> ExplorationRecord:
    """Evaluate one (point, label) item on the worker's private engine."""
    if _WORKER_ENGINE is None:  # pragma: no cover - defensive
        raise RuntimeError("worker engine not initialised")
    point, label = item
    return _WORKER_ENGINE.run_point(point, label=label)


def _pool_worker_evaluate_batch(
    items: Sequence[tuple[dict, str]],
) -> list[ExplorationRecord]:
    """Evaluate one sub-batch on the worker's private engine.

    Whole sub-batches (not single points) are the pool's unit of dispatch,
    so each worker's :class:`~repro.profiling.batch.BatchReplayEngine`
    amortises its stream partitions and group simulations across the
    sub-batch — and, because the worker engine is long-lived, across every
    sub-batch the worker ever receives for this trace.
    """
    if _WORKER_ENGINE is None:  # pragma: no cover - defensive
        raise RuntimeError("worker engine not initialised")
    return _WORKER_ENGINE.run_points(items)


class ProcessPoolBackend:
    """Evaluate batches of points on a ``multiprocessing`` worker pool.

    The engine state is shipped **once** per worker via the pool
    initializer, split into two payloads: the engine-sans-trace state (a
    few kilobytes, whatever the workload) and the compiled columnar trace —
    placed in a single :mod:`multiprocessing.shared_memory` segment that
    every worker reads instead of one pickled copy per worker's initargs —
    keyed by its content fingerprint and cached per process.  Tasks carry
    whole sub-batches of points, so each worker scores its sub-batch
    through its own batch replay kernel; results come back in submission
    order, which keeps parallel explorations deterministic and
    byte-identical with serial ones.

    Batches at or below ``serial_threshold`` points never touch the pool:
    worker startup plus IPC costs more than evaluating a handful of points
    in-process (BENCH_eval.json once recorded a 0.72x "speedup" on a small
    sweep), so small batches take the serial batch-kernel path and a
    ``--jobs`` run is never slower than a serial one.

    Parameters
    ----------
    jobs:
        Worker-process count; defaults to ``os.cpu_count()``.
    chunk_size:
        Points per dispatched sub-batch.  Default: batch split into roughly
        four sub-batches per worker, a standard latency/imbalance
        compromise.
    start_method:
        ``multiprocessing`` start method (``fork``/``spawn``/``forkserver``);
        ``None`` uses the platform default.
    serial_threshold:
        Largest batch evaluated in-process instead of on the pool.
        Default: ``4 * jobs`` (below one sub-batch per worker, dispatch
        cannot pay for itself).
    share_trace:
        Ship the compiled trace through shared memory (default).  Disabled,
        every worker receives its own pickled copy via initargs — the
        pre-batch behaviour, kept as an escape hatch for platforms without
        ``/dev/shm``.
    """

    def __init__(
        self,
        jobs: int | None = None,
        chunk_size: int | None = None,
        start_method: str | None = None,
        serial_threshold: int | None = None,
        share_trace: bool = True,
    ) -> None:
        resolved = jobs if jobs is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ValueError("jobs must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if serial_threshold is not None and serial_threshold < 0:
            raise ValueError("serial_threshold must be >= 0")
        self.jobs = resolved
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.serial_threshold = (
            serial_threshold if serial_threshold is not None else 4 * resolved
        )
        self.share_trace = share_trace
        self._pool: multiprocessing.pool.Pool | None = None
        # Parent-owned shared-memory segment holding the pickled compiled
        # trace for the current pool's workers (None when shipped inline).
        self._trace_shm = None
        # Digest of the engine state the current workers were pickled from.
        # Comparing state (not object identity) makes the pool track any
        # mutation that would change evaluation results — e.g. assigning
        # ``engine.hot_sizes`` between batches — so parallel runs can never
        # silently keep profiling against a stale worker snapshot.
        self._pool_state_digest: bytes | None = None
        # Serialised compiled traces, keyed by (fingerprint, name): a pool
        # re-created because of a settings change re-uses the bytes.
        self._trace_payloads: dict[tuple[str, str], bytes] = {}

    def _engine_payloads(
        self, engine: "ExplorationEngine"
    ) -> tuple[bytes, tuple[str, str], bytes]:
        """Split the engine into its per-worker payloads.

        Returns ``(engine-sans-trace payload, trace key, compiled-trace
        payload)``.  The engine payload is O(settings), not O(events) — the
        regression test asserts it stays flat as traces grow.
        """
        trace = engine.trace
        compiled = trace.compiled()
        key = (compiled.fingerprint, trace.name)
        trace_payload = self._trace_payloads.get(key)
        if trace_payload is None:
            trace_payload = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
            if len(self._trace_payloads) >= _WORKER_TRACE_CACHE_LIMIT:
                self._trace_payloads.pop(next(iter(self._trace_payloads)))
            self._trace_payloads[key] = trace_payload
        state = engine.__getstate__()
        state.pop("trace")
        engine_payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        return engine_payload, key, trace_payload

    # The pool is created lazily on the first batch and kept while the
    # engine state is unchanged: heuristic searches evaluate many small
    # generations, and re-forking workers per generation would dominate the
    # runtime.  The freshness digest covers the engine-sans-trace payload
    # plus the trace fingerprint, both cheap — the trace itself is never
    # re-serialised once its payload is cached.
    def _trace_ref_for(self, trace_payload: bytes) -> tuple:
        """Stage the pickled trace for worker pickup (shared memory or inline).

        One segment serves every worker of the pool; it stays mapped in the
        parent until the pool is torn down (workers attach by name during
        their initialisation, which can happen lazily on some platforms).
        """
        if self.share_trace and len(trace_payload) >= _SHM_MIN_BYTES:
            try:
                from multiprocessing import shared_memory

                segment = shared_memory.SharedMemory(
                    create=True, size=len(trace_payload)
                )
            except (ImportError, OSError):  # pragma: no cover - no /dev/shm
                return ("bytes", trace_payload)
            segment.buf[: len(trace_payload)] = trace_payload
            self._trace_shm = segment
            return ("shm", segment.name, len(trace_payload))
        return ("bytes", trace_payload)

    def _release_trace_shm(self) -> None:
        segment, self._trace_shm = self._trace_shm, None
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass

    def _ensure_pool(self, engine: "ExplorationEngine") -> multiprocessing.pool.Pool:
        engine_payload, trace_key, trace_payload = self._engine_payloads(engine)
        digest = hashlib.sha256(
            engine_payload + repr(trace_key).encode()
        ).digest()
        if self._pool is None or self._pool_state_digest != digest:
            self.close()
            # Pre-populate the process-level cache so fork-started workers
            # inherit the trace instead of deserialising it.  Cache an
            # immutable snapshot wrapped around the compiled form — never
            # the live trace object: a caller could mutate that in place
            # later, and a stale cache entry under a content-keyed
            # fingerprint would hand workers the wrong events.
            if _WORKER_TRACE_CACHE.get(trace_key) is None:
                _cache_trace(
                    trace_key, AllocationTrace.from_compiled(engine.trace.compiled())
                )
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(
                processes=self.jobs,
                initializer=_pool_worker_init,
                initargs=(engine_payload, trace_key, self._trace_ref_for(trace_payload)),
            )
            self._pool_state_digest = digest
        return self._pool

    def _chunk_size_for(self, batch: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(batch / (self.jobs * 4)))

    def evaluate(
        self, engine: "ExplorationEngine", items: Sequence[tuple[dict, str]]
    ) -> list[ExplorationRecord]:
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 or len(items) <= max(1, self.serial_threshold):
            # A pool of one worker only adds IPC overhead, and a small
            # batch cannot amortise worker startup: evaluate in-process.
            return engine.run_points(items)
        pool = self._ensure_pool(engine)
        size = self._chunk_size_for(len(items))
        batches = [items[start : start + size] for start in range(0, len(items), size)]
        results = pool.map(_pool_worker_evaluate_batch, batches, chunksize=1)
        return [record for batch in results for record in batch]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_state_digest = None
        self._release_trace_shm()

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessPoolBackend(jobs={self.jobs}, chunk_size={self.chunk_size})"


def make_backend(jobs: int | None) -> EvaluationBackend:
    """Backend for a ``--jobs`` style count.

    ``None`` or ``1`` → :class:`SerialBackend`; ``0`` → a
    :class:`ProcessPoolBackend` with one worker per CPU core; ``N > 1`` →
    a pool of ``N`` workers.  Negative counts raise :class:`ValueError`.

    Pool backends keep their serial fallback for small batches (see
    :class:`ProcessPoolBackend`'s ``serial_threshold``), so requesting
    ``--jobs`` for a sweep that turns out to be tiny costs nothing.
    """
    if jobs is None or jobs == 1:
        return SerialBackend()
    if jobs == 0:
        return ProcessPoolBackend()
    return ProcessPoolBackend(jobs=jobs)


# -- the engine --------------------------------------------------------------

#: Bound on the predict_point prefix-trace cache.  Pruning strategies use a
#: handful of fractions at most; anything past this is a leak, not a working
#: set, so the least recently used prefix is evicted.
_PREFIX_TRACE_LIMIT = 8


class ExplorationEngine:
    """Drives the explore → profile → Pareto pipeline for one workload trace."""

    def __init__(
        self,
        space: ParameterSpace,
        trace: AllocationTrace,
        hierarchy: MemoryHierarchy | None = None,
        hot_sizes: list[int] | None = None,
        settings: ExplorationSettings | None = None,
        energy_model: EnergyModel | None = None,
        progress_callback: Callable[[int, int], None] | None = None,
        backend: EvaluationBackend | None = None,
        store: ResultStore | None = None,
    ) -> None:
        self.space = space
        self.trace = trace
        self.hierarchy = hierarchy or embedded_two_level()
        self.settings = settings or ExplorationSettings()
        self.energy_model = energy_model or EnergyModel(self.hierarchy)
        self.progress_callback = progress_callback
        self.backend = backend or SerialBackend()
        # Persistent L2 behind the in-memory memoisation cache (may be None).
        self.store = store
        # Canonical hash of the ExperimentSpec driving this engine ("" when
        # the engine is used directly).  Stamped into artefact provenance
        # and persisted store entries so a stored result can state exactly
        # which experiment produced it; set by repro.api.Experiment.
        self.spec_hash = ""
        # The hot block sizes drive which dedicated pools a configuration can
        # create; by default they are derived from the trace itself, exactly
        # as the paper's profiling pass would.
        self.hot_sizes = hot_sizes or trace.hot_sizes(top=8)
        self.factory = AllocatorFactory(self.hierarchy)
        # Point-level memoisation: canonical point -> record, plus counters.
        self._point_cache: dict[tuple, ExplorationRecord] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self._fingerprint: str | None = None
        # Prefix traces used by predict_point, keyed by event count and
        # LRU-bounded (see _PREFIX_TRACE_LIMIT), so pruning does not
        # recompile the same prefix for every candidate yet a long sweep
        # over many distinct fractions cannot grow memory without bound.
        self._prefix_traces: OrderedDict[int, AllocationTrace] = OrderedDict()
        # Lazily-built batch replay engine shared by every run_points call
        # (see _batch_engine); dropped from pickles, rebuilt per process.
        self._batch: BatchReplayEngine | None = None

    # Worker processes receive a pickled copy of the engine; the progress
    # callback may be a closure (unpicklable) and is meaningless off-process,
    # and shipping the parent's backend, cache or store handle along would be
    # wasteful (or impossible — open file handles don't pickle) — workers
    # only ever call ``run_point``.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["progress_callback"] = None
        state["backend"] = None
        state["store"] = None
        state["_point_cache"] = {}
        state["_prefix_traces"] = OrderedDict()
        state["_batch"] = None
        state["cache_hits"] = 0
        state["cache_misses"] = 0
        state["store_hits"] = 0
        state["store_misses"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.backend is None:
            self.backend = SerialBackend()

    # -- identity ------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Hex SHA-256 identifying everything that determines a point's metrics.

        Covers the trace events (:meth:`AllocationTrace.fingerprint`), the
        memory hierarchy modules, the energy-model constants, the hot block
        sizes and the profiler's payload-access factor — but *not* the
        parameter space, backend or sampling settings, which choose *which*
        points are evaluated, never what one point measures.  Together with
        the canonicalised point and :data:`~repro.core.store.METRIC_VERSION`
        this keys the persistent result store and artefact provenance.
        """
        if self._fingerprint is None:
            context = {
                "trace": self.trace.fingerprint(),
                "hierarchy": [asdict(module) for module in self.hierarchy],
                "energy": {
                    "cpu_overhead_cycles": self.energy_model.cpu_overhead_cycles,
                    "cpu_energy_nj_per_op": self.energy_model.cpu_energy_nj_per_op,
                    "static_nj_per_byte": self.energy_model.static_nj_per_byte,
                },
                "hot_sizes": list(self.hot_sizes),
                "payload_access_factor": self.settings.payload_access_factor,
            }
            payload = json.dumps(context, sort_keys=True, separators=(",", ":"))
            self._fingerprint = hashlib.sha256(payload.encode()).hexdigest()
        return self._fingerprint

    # -- configuration construction ------------------------------------------

    def configuration_for(self, point: dict, label: str = "") -> AllocatorConfiguration:
        """Build the configuration corresponding to one parameter point."""
        return configuration_from_point(
            point,
            hot_sizes=self.hot_sizes,
            scratchpad_module=self.hierarchy.fastest.name,
            main_module=self.hierarchy.background_module.name,
            label=label,
        )

    def enumerate_points(self) -> Iterable[tuple[int, dict]]:
        """Yield (index, point) pairs according to the sampling/shard settings.

        ``index`` is always the *global* enumeration position — when a
        :class:`ShardSpec` is set, only the positions the shard owns are
        yielded, but they keep their global index, so configuration labels
        (and therefore merged artefacts) are identical to a single full run.
        """
        if self.settings.sample is None:
            pairs: Iterable[tuple[int, dict]] = enumerate(self.space.points())
        else:
            points = self.space.sample(self.settings.sample, seed=self.settings.sample_seed)
            pairs = enumerate(points)
        shard = self.settings.shard
        if shard is None:
            yield from pairs
        else:
            for index, point in pairs:
                if shard.owns(index):
                    yield index, point

    # -- point evaluation ----------------------------------------------------

    def run_point(self, point: dict, label: str = "") -> ExplorationRecord:
        """Profile a single parameter point and return its record.

        This is the pure evaluation kernel: no cache, no backend.  It is what
        worker processes execute; in-process callers that want memoisation
        and parallel dispatch go through :meth:`evaluate_points`.
        """
        configuration = self.configuration_for(point, label=label)
        built = self.factory.build(configuration)
        profiler = Profiler(
            built.mapping,
            energy_model=self.energy_model,
            options=ProfilerOptions(
                payload_access_factor=self.settings.payload_access_factor
            ),
        )
        profile = profiler.run(built.allocator, self.trace, configuration.configuration_id)
        oom_failures = int(
            profile.per_pool.get("__profile__", {}).get("oom_failures", 0)
        )
        return ExplorationRecord(
            configuration=configuration,
            metrics=profile.totals,
            trace_name=self.trace.name,
            oom_failures=oom_failures,
        )

    def _batch_engine(self) -> BatchReplayEngine:
        """The engine's shared batch replay kernel (rebuilt when stale).

        Staleness is checked against the compiled trace *object* — the
        trace invalidates its compiled form on mutation, so a new compiled
        object means new events — and against the profiler knobs baked into
        the kernel's cached simulations.
        """
        batch = self._batch
        if (
            batch is None
            or batch.compiled is not self.trace.compiled()
            or batch.options.payload_access_factor
            != self.settings.payload_access_factor
        ):
            batch = BatchReplayEngine(
                self.trace,
                self.factory,
                energy_model=self.energy_model,
                options=ProfilerOptions(
                    payload_access_factor=self.settings.payload_access_factor
                ),
            )
            self._batch = batch
        return batch

    def run_points(
        self, items: Sequence[tuple[dict, str]]
    ) -> list[ExplorationRecord]:
        """Profile a batch of ``(point, label)`` items (no cache, no backend).

        The batch counterpart of :meth:`run_point`: one shared
        :class:`~repro.profiling.batch.BatchReplayEngine` scores the whole
        batch, so configurations that share pool groups share their
        simulations.  Configurations the batch kernel cannot express fall
        back to a single replay inside the kernel; with
        ``settings.batch_replay`` off, every point takes :meth:`run_point`.
        Byte-identical either way.
        """
        if not self.settings.batch_replay:
            return [self.run_point(point, label=label) for point, label in items]
        batch = self._batch_engine()
        records = []
        for point, label in items:
            configuration = self.configuration_for(point, label=label)
            profile = batch.run_configuration(configuration)
            oom_failures = int(
                profile.per_pool.get("__profile__", {}).get("oom_failures", 0)
            )
            records.append(
                ExplorationRecord(
                    configuration=configuration,
                    metrics=profile.totals,
                    trace_name=self.trace.name,
                    oom_failures=oom_failures,
                )
            )
        return records

    def evaluate_points(
        self, items: Sequence[tuple[dict, str]]
    ) -> list[ExplorationRecord]:
        """Evaluate a batch of ``(point, label)`` items through caches + backend.

        An explicit three-stage pipeline:

        1. **partition** (:meth:`_partition_batch`) — dedupe the batch and
           answer what the in-memory memoisation cache (L1) or the
           persistent :class:`~repro.core.store.ResultStore` (L2, when
           attached) already knows;
        2. **profile** (:meth:`_profile_misses`) — hand the remaining
           misses to the backend as one batch (one evaluation even if a
           point repeats within the batch), which routes them through the
           batch replay kernel serially or as per-worker sub-batches;
        3. **commit** (:meth:`_commit_records`) — memoise fresh records,
           write them back to the store so the next process exploring the
           same workload starts warm, and fan answers out to duplicate
           submission positions.

        The returned list matches the submission order item-for-item.
        Repeat answers are shallow copies of the memoised record,
        relabelled with the submitted label (see :func:`_cached_copy`).
        """
        items = list(items)
        results, pending, pending_keys, positions_by_key = self._partition_batch(items)
        if pending:
            records = self._profile_misses(pending)
            self._commit_records(
                items, results, pending, pending_keys, positions_by_key, records
            )
        return results  # type: ignore[return-value]

    def _partition_batch(
        self, items: list[tuple[dict, str]]
    ) -> tuple[
        list[ExplorationRecord | None],
        list[tuple[dict, str]],
        list[tuple],
        dict[tuple, list[int]],
    ]:
        """Stage 1: split a batch into cache answers and profiling misses.

        Returns ``(results, pending, pending_keys, positions_by_key)``:
        ``results`` holds the submission-ordered answers with ``None`` at
        every miss position, ``pending`` the deduplicated items still to
        profile, and ``positions_by_key`` every submission position a
        pending key must answer (head position first).
        """
        results: list[ExplorationRecord | None] = [None] * len(items)
        pending: list[tuple[dict, str]] = []
        pending_keys: list[tuple] = []
        positions_by_key: dict[tuple, list[int]] = {}
        for position, (point, label) in enumerate(items):
            key = canonical_point_key(point)
            cached = self._point_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                results[position] = _cached_copy(cached, label)
                continue
            if key in positions_by_key:
                # Duplicate within the batch: profiled once, counted once.
                self.cache_hits += 1
                positions_by_key[key].append(position)
                continue
            if self.store is not None:
                stored = self.store.get(self.fingerprint, point)
                if stored is not None:
                    self.store_hits += 1
                    self._point_cache[key] = stored
                    results[position] = _cached_copy(stored, label)
                    continue
                self.store_misses += 1
            positions_by_key[key] = [position]
            pending.append((point, label))
            pending_keys.append(key)
        return results, pending, pending_keys, positions_by_key

    def _profile_misses(
        self, pending: list[tuple[dict, str]]
    ) -> list[ExplorationRecord]:
        """Stage 2: profile the cache misses through the backend, in order."""
        self.cache_misses += len(pending)
        records = self.backend.evaluate(self, pending)
        if len(records) != len(pending):  # pragma: no cover - defensive
            raise RuntimeError(
                f"backend returned {len(records)} records for "
                f"{len(pending)} submitted points"
            )
        return records

    def _commit_records(
        self,
        items: list[tuple[dict, str]],
        results: list[ExplorationRecord | None],
        pending: list[tuple[dict, str]],
        pending_keys: list[tuple],
        positions_by_key: dict[tuple, list[int]],
        records: list[ExplorationRecord],
    ) -> None:
        """Stage 3: memoise fresh records, persist them, fill every position."""
        for (point, _label), key, record in zip(pending, pending_keys, records):
            self._point_cache[key] = record
            if self.store is not None:
                self.store.put(
                    self.fingerprint, point, record, spec_hash=self.spec_hash
                )
            first, *rest = positions_by_key[key]
            results[first] = record
            for position in rest:
                results[position] = _cached_copy(record, items[position][1])

    def evaluate_point(self, point: dict, label: str = "") -> ExplorationRecord:
        """Cached evaluation of one point (single-item :meth:`evaluate_points`)."""
        return self.evaluate_points([(point, label)])[0]

    def is_known(self, point: dict) -> bool:
        """True when evaluating ``point`` would cost no fresh profiling.

        Checks the in-memory memoisation cache (L1) and, when attached, the
        persistent result store (L2) — without touching any hit/miss
        counter.  Dominance pruning uses this to never predict-and-skip a
        point whose exact metrics are already available for free.
        """
        if canonical_point_key(point) in self._point_cache:
            return True
        return self.store is not None and self.store.contains(self.fingerprint, point)

    def predict_point(
        self,
        point: dict,
        fraction: float = 0.25,
        metrics: Sequence[str] | None = None,
    ) -> tuple[tuple[float, ...], int]:
        """Cheap metric prediction: replay only a prefix of the trace.

        Profiles the configuration of ``point`` over the first ``fraction``
        of the trace events and returns ``(partial metric vector, prefix OOM
        failures)``.  Every profiled metric accumulates monotonically over
        the event stream (accesses, energy and cycles are cumulative sums;
        footprint is a running peak), so the partial vector is a sound
        component-wise *lower bound* of the full-trace vector — and because
        all candidates are bounded on the same prefix, partial vectors are
        also comparable with each other as a dominance surrogate.  A prefix
        that already fails allocations proves the full replay infeasible.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"prediction fraction must be in (0, 1], got {fraction}")
        keys = list(metrics or self.settings.metrics)
        count = max(1, int(len(self.trace) * fraction))
        prefix = self._prefix_traces.get(count)
        if prefix is None:
            prefix = AllocationTrace(
                events=self.trace.events[:count], name=self.trace.name
            )
            while len(self._prefix_traces) >= _PREFIX_TRACE_LIMIT:
                self._prefix_traces.popitem(last=False)
            self._prefix_traces[count] = prefix
        else:
            self._prefix_traces.move_to_end(count)
        configuration = self.configuration_for(point)
        built = self.factory.build(configuration)
        profiler = Profiler(
            built.mapping,
            energy_model=self.energy_model,
            options=ProfilerOptions(
                payload_access_factor=self.settings.payload_access_factor
            ),
        )
        profile = profiler.run(built.allocator, prefix, configuration.configuration_id)
        oom_failures = int(
            profile.per_pool.get("__profile__", {}).get("oom_failures", 0)
        )
        return profile.totals.values(keys), oom_failures

    @property
    def cached_point_count(self) -> int:
        """Number of distinct points currently memoised."""
        return len(self._point_cache)

    def clear_cache(self) -> None:
        """Drop memoised records and reset the hit/miss counters (L1 only;
        an attached persistent store is unaffected)."""
        self._point_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self.store_hits = 0
        self.store_misses = 0

    def _counter_snapshot(self) -> tuple[int, int, int, int]:
        """Current (cache_hits, cache_misses, store_hits, store_misses)."""
        return (self.cache_hits, self.cache_misses, self.store_hits, self.store_misses)

    def _record_counters(
        self, database: ResultDatabase, snapshot: tuple[int, int, int, int]
    ) -> None:
        """Write the counter deltas since ``snapshot`` onto ``database``."""
        hits, misses, store_hits, store_misses = snapshot
        database.cache_hits = self.cache_hits - hits
        database.cache_misses = self.cache_misses - misses
        database.store_hits = self.store_hits - store_hits
        database.store_misses = self.store_misses - store_misses
        if self.store is not None:
            database.store_loaded = self.store.loaded

    def _attach_provenance(self, database: ResultDatabase) -> None:
        """Stamp the database with the identity merge/resume validation needs."""
        shard = self.settings.shard
        database.provenance = Provenance(
            fingerprint=self.fingerprint,
            space=self.space.as_dict(),
            metric_version=METRIC_VERSION,
            sample=self.settings.sample,
            sample_seed=self.settings.sample_seed,
            shard=shard.label if shard is not None else "",
            spec_hash=self.spec_hash,
        )

    def close(self) -> None:
        """Release backend workers (safe to call repeatedly)."""
        self.backend.close()

    # -- the exploration loop -----------------------------------------------

    def explore(self, sink: ResultSink | None = None) -> ResultDatabase:
        """Run the exploration over the whole (or sampled, or sharded) space.

        ``sink`` receives every record the moment its batch completes — a
        live Pareto front, a progress dashboard or a forwarder sees results
        *while* the run progresses rather than from the returned database.
        """
        database = ResultDatabase(name=f"{self.trace.name}-exploration")
        snapshot = self._counter_snapshot()
        total = (
            self.space.size() if self.settings.sample is None else self.settings.sample
        )
        if self.settings.shard is not None:
            total = self.settings.shard.size_of(total)
        batch_size = self._explore_batch_size(total)
        batch: list[tuple[int, dict]] = []
        completed = 0
        for index, point in self.enumerate_points():
            batch.append((index, point))
            if len(batch) >= batch_size:
                completed = self._explore_batch(batch, total, completed, database, sink)
                batch = []
        if batch:
            self._explore_batch(batch, total, completed, database, sink)
        self._record_counters(database, snapshot)
        self._attach_provenance(database)
        return database

    def _explore_batch_size(self, total: int) -> int:
        """Points per dispatched batch of :meth:`explore`.

        Serial evaluation batches nothing: progress callbacks keep firing
        after every single point, exactly as before backends existed.  A
        pool batches enough points to amortise dispatch over all workers.
        """
        jobs = getattr(self.backend, "jobs", 1) or 1
        if jobs <= 1:
            return 1
        return max(jobs * 8, self.settings.progress_every or 1)

    def _explore_batch(
        self,
        batch: list[tuple[int, dict]],
        total: int,
        completed: int,
        database: ResultDatabase,
        sink: ResultSink | None = None,
    ) -> int:
        """Evaluate one batch; returns the updated completed-point count.

        Labels derive from the *global* enumeration index (stable across
        shards); progress counts positions this run actually evaluates, so
        a shard reports ``k/shard_total``, not its global indices.
        """
        items = [
            (point, f"{self.settings.label_prefix}{index:05d}") for index, point in batch
        ]
        records = self.evaluate_points(items)
        for (_index, _point), record in zip(batch, records):
            database.add(record)
            if sink is not None:
                sink.accept(record)
            completed += 1
            if self.progress_callback is not None:
                self.progress_callback(completed, total)
            elif (
                self.settings.progress_every
                and completed % self.settings.progress_every == 0
            ):
                print(f"explored {completed}/{total} configurations", flush=True)
        return completed

    # -- range evaluation (the distributed unit of work) -------------------

    def points_in_range(self, start: int, stop: int) -> list[tuple[int, dict]]:
        """The ``(index, point)`` pairs of enumeration positions [start, stop).

        Contiguous ranges are the lease unit of the distributed service
        (:mod:`repro.distrib`): a coordinator partitions ``[0, total)`` into
        ranges and this method materialises one range identically in every
        process.  Ranges slice the *unsharded* enumeration — combining them
        with a :class:`ShardSpec` would make positions ambiguous, so that is
        rejected.
        """
        if self.settings.shard is not None:
            raise ValueError("range evaluation cannot be combined with a shard")
        if start < 0 or stop < start:
            raise ValueError(f"invalid range [{start}, {stop})")
        if self.settings.sample is None:
            source: Iterable[dict] = self.space.points()
        else:
            source = self.space.sample(
                self.settings.sample, seed=self.settings.sample_seed
            )
        return list(itertools.islice(enumerate(source), start, stop))

    def explore_range(
        self, start: int, stop: int, sink: ResultSink | None = None
    ) -> ResultDatabase:
        """Evaluate enumeration positions [start, stop) into a database.

        The range counterpart of :meth:`explore`: same labels (derived from
        the global enumeration index), same caches (L1 memoisation and the
        attached store answer known points — which is how a worker resuming
        a re-leased range re-evaluates only the points its predecessor never
        committed), same counters and provenance.  The provenance ``shard``
        field records the range as ``"start:stop"`` so a range artefact is
        recognisable; merged artefacts normalise it away exactly like shard
        labels.
        """
        database = ResultDatabase(name=f"{self.trace.name}-range-{start}-{stop}")
        snapshot = self._counter_snapshot()
        batch = self.points_in_range(start, stop)
        total = len(batch)
        completed = 0
        batch_size = self._explore_batch_size(total)
        for offset in range(0, total, max(1, batch_size)):
            completed = self._explore_batch(
                batch[offset : offset + max(1, batch_size)],
                total,
                completed,
                database,
                sink,
            )
        self._record_counters(database, snapshot)
        self._attach_provenance(database)
        if database.provenance is not None:
            database.provenance = replace(
                database.provenance, shard=f"{start}:{stop}"
            )
        return database

    # -- analysis shortcuts -----------------------------------------------

    def pareto(self, database: ResultDatabase) -> list[ExplorationRecord]:
        """Pareto-optimal records over the metrics chosen in the settings."""
        return database.pareto_records(self.settings.metrics)


def explore(
    space: ParameterSpace,
    trace: AllocationTrace,
    hierarchy: MemoryHierarchy | None = None,
    hot_sizes: list[int] | None = None,
    sample: int | None = None,
    metrics: list[str] | None = None,
    jobs: int | None = None,
    backend: EvaluationBackend | None = None,
    store: ResultStore | None = None,
    shard: ShardSpec | None = None,
) -> ResultDatabase:
    """One-shot exploration helper used by examples and benchmarks.

    ``jobs`` > 1 selects a :class:`ProcessPoolBackend` (ignored when an
    explicit ``backend`` is given); workers are shut down before returning.
    ``store`` attaches a persistent result store (kept open for the caller);
    ``shard`` restricts the run to one slice of the enumeration.
    """
    settings = ExplorationSettings(
        metrics=metrics or metric_keys(),
        sample=sample,
        shard=shard,
    )
    engine = ExplorationEngine(
        space,
        trace,
        hierarchy=hierarchy,
        hot_sizes=hot_sizes,
        settings=settings,
        backend=backend or make_backend(jobs),
        store=store,
    )
    try:
        return engine.explore()
    finally:
        if backend is None:
            engine.close()
