"""Allocator factory: configurations → live composed allocators.

This is the "automatically create ... and map in the memory hierarchy" step
of the DATE'06 flow: given an :class:`AllocatorConfiguration` and a
:class:`MemoryHierarchy`, the factory instantiates every pool with its
policies, carves its address space out of the memory module it is placed on,
and wires everything into a :class:`ComposedAllocator` plus the
:class:`PoolMapping` the profiler needs for per-level accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..allocator.blocks import gross_block_size
from ..allocator.buddy import BuddyPool
from ..allocator.composed import ComposedAllocator
from ..allocator.errors import ConfigurationError
from ..allocator.pool import FixedSizePool, GeneralPool, Pool, RegionPool
from ..allocator.segregated import SegregatedFitPool
from ..allocator.slab import SlabPool
from ..memhier.hierarchy import MemoryHierarchy
from ..memhier.mapping import PoolMapping, PoolPlacement
from .configuration import AllocatorConfiguration, PoolSpec


@dataclass
class BuiltAllocator:
    """A constructed allocator together with its hierarchy mapping."""

    allocator: ComposedAllocator
    mapping: PoolMapping
    configuration: AllocatorConfiguration


class AllocatorFactory:
    """Builds composed allocators from configurations over one hierarchy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        scratchpad_module: str | None = None,
        main_module: str | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.scratchpad_module = scratchpad_module or hierarchy.fastest.name
        self.main_module = main_module or hierarchy.background_module.name

    # -- public API ------------------------------------------------------

    def build(self, configuration: AllocatorConfiguration) -> BuiltAllocator:
        """Construct the allocator and mapping described by ``configuration``."""
        mapping = self.build_mapping(configuration)
        pools = [
            self._build_pool(spec, mapping) for spec in configuration.pools
        ]
        allocator = ComposedAllocator(pools, name=configuration.configuration_id)
        return BuiltAllocator(
            allocator=allocator, mapping=mapping, configuration=configuration
        )

    def build_mapping(self, configuration: AllocatorConfiguration) -> PoolMapping:
        """Place every pool, sharing bounded modules between co-located pools.

        Pools with an explicit ``reserved_bytes`` keep their reservation.
        Pools without one that share a *bounded* module split the module's
        remaining capacity equally, so that (for instance) three dedicated
        pools mapped to the 64 KB scratchpad each get a third of it instead
        of the first pool starving the other two.

        Public because the batched replay engine
        (:class:`repro.profiling.batch.BatchReplayEngine`) needs the
        placements — and through them each pool's capacity — without paying
        for pool construction.
        """
        resolved = [(spec, self._resolve_module(spec)) for spec in configuration.pools]

        explicit_by_module: dict[str, int] = {}
        unsized_by_module: dict[str, int] = {}
        for spec, module_name in resolved:
            if spec.reserved_bytes is not None:
                explicit_by_module[module_name] = (
                    explicit_by_module.get(module_name, 0) + spec.reserved_bytes
                )
            else:
                unsized_by_module[module_name] = unsized_by_module.get(module_name, 0) + 1

        share_by_module: dict[str, int | None] = {}
        for module_name, count in unsized_by_module.items():
            module = self.hierarchy.module(module_name)
            if module.size is None:
                share_by_module[module_name] = None
            else:
                remaining = module.size - explicit_by_module.get(module_name, 0)
                if remaining <= 0:
                    raise ConfigurationError(
                        f"explicit reservations exhaust module '{module_name}'"
                    )
                share_by_module[module_name] = remaining // count

        mapping = PoolMapping(self.hierarchy)
        for spec, module_name in resolved:
            reserved = spec.reserved_bytes
            if reserved is None:
                reserved = share_by_module[module_name]
            mapping.place(
                PoolPlacement(
                    pool_name=spec.name,
                    module_name=module_name,
                    reserved_bytes=reserved,
                )
            )
        mapping.validate_reservations()
        return mapping

    # -- internals -----------------------------------------------------------

    def _resolve_module(self, spec: PoolSpec) -> str:
        if not spec.module:
            return self.hierarchy.background_module.name
        if spec.module in self.hierarchy:
            return spec.module
        # Convenience aliases used by configuration_from_point.
        if spec.module == "scratchpad":
            return self.scratchpad_module
        if spec.module == "main":
            return self.main_module
        raise ConfigurationError(
            f"pool '{spec.name}' is placed on unknown memory module '{spec.module}' "
            f"(hierarchy has: {', '.join(self.hierarchy.module_names())})"
        )

    def _build_pool(self, spec: PoolSpec, mapping: PoolMapping) -> Pool:
        space = mapping.address_space_for(spec.name)
        if spec.kind == "fixed":
            # Dedicated pools serve exactly their block size (the paper's
            # "dedicated pool for 74-byte blocks"); other sizes fall through
            # to the pools behind them.
            return FixedSizePool(
                name=spec.name,
                block_size=spec.block_size,
                address_space=space,
                strict=True,
            )
        if spec.kind == "slab":
            # A slab must hold at least one object; large dedicated block
            # sizes therefore get proportionally larger slabs.
            object_gross = gross_block_size(spec.block_size)
            slab_bytes = max(spec.chunk_size, 1024, object_gross * 4)
            return SlabPool(
                name=spec.name,
                block_size=spec.block_size,
                slab_bytes=slab_bytes,
                address_space=space,
                strict=True,
            )
        if spec.kind == "general":
            return GeneralPool(
                name=spec.name,
                address_space=space,
                free_list=spec.free_list,
                fit=spec.fit,
                coalescing=spec.coalescing,
                splitting=spec.splitting,
                chunk_size=spec.chunk_size,
                max_block_size=spec.max_block_size,
            )
        if spec.kind == "segregated":
            return SegregatedFitPool(
                name=spec.name,
                address_space=space,
                chunk_size=spec.chunk_size,
            )
        if spec.kind == "buddy":
            arena = spec.reserved_bytes or (1 << 20)
            return BuddyPool(
                name=spec.name,
                arena_size=arena,
                address_space=space,
            )
        if spec.kind == "region":
            return RegionPool(
                name=spec.name,
                address_space=space,
                chunk_size=spec.chunk_size,
            )
        raise ConfigurationError(f"unknown pool kind '{spec.kind}'")


def build_allocator(
    configuration: AllocatorConfiguration, hierarchy: MemoryHierarchy
) -> BuiltAllocator:
    """One-shot convenience wrapper around :class:`AllocatorFactory`."""
    return AllocatorFactory(hierarchy).build(configuration)
