"""Parameter space: the "list of arrays" input of the exploration tool.

The only input the DATE'06 tool requires from the designer is, per
parameter, the array of values to explore.  :class:`Parameter` is one such
named array; :class:`ParameterSpace` is the ordered collection whose
cartesian product is the configuration space.  The space knows how to
enumerate itself exhaustively (the paper's default), to random-sample for
quick estimates, and to report its size before any simulation is run so the
designer knows what they asked for ("tens of thousands of highly customized
DM allocators").
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Parameter:
    """One explored parameter: a name and the array of values to try."""

    name: str
    values: tuple = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter name must be non-empty")
        if not self.values:
            raise ValueError(f"parameter '{self.name}' needs at least one value")
        # Freeze the values into a tuple so a space cannot be mutated after
        # enumeration started.
        object.__setattr__(self, "values", tuple(self.values))

    def __len__(self) -> int:
        return len(self.values)

    def index_of(self, value) -> int:
        """Position of ``value`` in the array (raises ValueError when absent)."""
        return self.values.index(value)


class ParameterSpace:
    """Ordered collection of parameters; its product is the design space."""

    def __init__(self, parameters: Sequence[Parameter] | None = None) -> None:
        self._parameters: list[Parameter] = []
        self._by_name: dict[str, Parameter] = {}
        for parameter in parameters or []:
            self.add(parameter)

    # -- construction ------------------------------------------------------

    def add(self, parameter: Parameter) -> "ParameterSpace":
        """Add a parameter (chainable); names must be unique."""
        if parameter.name in self._by_name:
            raise ValueError(f"duplicate parameter '{parameter.name}'")
        self._parameters.append(parameter)
        self._by_name[parameter.name] = parameter
        return self

    def add_array(self, name: str, values, description: str = "") -> "ParameterSpace":
        """Convenience: add a parameter from a plain name + value array."""
        return self.add(Parameter(name, tuple(values), description))

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._parameters)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters)

    def parameter(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            valid = ", ".join(self._by_name)
            raise KeyError(f"unknown parameter '{name}' (known: {valid})") from None

    def names(self) -> list[str]:
        return [parameter.name for parameter in self._parameters]

    def size(self) -> int:
        """Number of points in the full cartesian product."""
        total = 1
        for parameter in self._parameters:
            total *= len(parameter)
        return total

    # -- enumeration -----------------------------------------------------------

    def points(self) -> Iterator[dict]:
        """Yield every point of the space as a ``{name: value}`` dict.

        The iteration order is deterministic: the last parameter varies
        fastest (row-major over the declared order), so point indices are
        stable across runs and machines.
        """
        if not self._parameters:
            return iter(())
        names = self.names()
        value_arrays = [parameter.values for parameter in self._parameters]
        return (
            dict(zip(names, combination))
            for combination in itertools.product(*value_arrays)
        )

    def point_at(self, index: int) -> dict:
        """The ``index``-th point of :meth:`points` without full enumeration."""
        if index < 0 or index >= self.size():
            raise IndexError(f"point index {index} out of range (size {self.size()})")
        point = {}
        remainder = index
        for parameter in reversed(self._parameters):
            count = len(parameter)
            point[parameter.name] = parameter.values[remainder % count]
            remainder //= count
        return {name: point[name] for name in self.names()}

    def index_of(self, point: dict) -> int:
        """Inverse of :meth:`point_at` for a complete point."""
        index = 0
        for parameter in self._parameters:
            if parameter.name not in point:
                raise KeyError(f"point is missing parameter '{parameter.name}'")
            index = index * len(parameter) + parameter.index_of(point[parameter.name])
        return index

    def sample(self, count: int, seed: int = 0) -> list[dict]:
        """Uniform random sample of ``count`` distinct points (deterministic)."""
        if count < 0:
            raise ValueError("sample count must be non-negative")
        total = self.size()
        count = min(count, total)
        rng = random.Random(seed)
        indices = rng.sample(range(total), count)
        return [self.point_at(index) for index in sorted(indices)]

    def validate_point(self, point: dict) -> None:
        """Check that ``point`` assigns a legal value to every parameter."""
        for parameter in self._parameters:
            if parameter.name not in point:
                raise ValueError(f"point is missing parameter '{parameter.name}'")
            if point[parameter.name] not in parameter.values:
                raise ValueError(
                    f"value {point[parameter.name]!r} is not in the array of "
                    f"parameter '{parameter.name}'"
                )
        extras = set(point) - set(self._by_name)
        if extras:
            raise ValueError(f"point has unknown parameters: {sorted(extras)}")

    # -- serialisation -----------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-dict form (name -> value array) for docs and result files."""
        return {parameter.name: list(parameter.values) for parameter in self._parameters}

    @classmethod
    def from_dict(cls, data: dict) -> "ParameterSpace":
        space = cls()
        for name, values in data.items():
            space.add_array(name, values)
        return space

    def describe(self) -> str:
        lines = [f"Parameter space: {self.size()} configurations"]
        for parameter in self._parameters:
            values = ", ".join(repr(value) for value in parameter.values)
            lines.append(f"  {parameter.name}: [{values}]")
        return "\n".join(lines)
