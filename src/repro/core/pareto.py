"""Pareto-dominance machinery.

The final step of the DATE'06 flow: given the metric values of every
explored configuration, keep only the Pareto-optimal ones — those for which
no other configuration is at least as good on every chosen metric and
strictly better on one.  All metrics are minimised (accesses, footprint,
energy, execution time).

Two ways to obtain a front live here:

* the batch functions (:func:`non_dominated`, :func:`pareto_front`,
  :func:`pareto_front_indices`) recompute the front from a full vector set —
  O(n·front) per call, fine for one-shot analysis of a finished run;
* :class:`IncrementalParetoFront` maintains the front *online*: each insert
  either rejects a dominated candidate or evicts the members the candidate
  dominates.  After inserting a sequence of items its member set (and
  order) is exactly what the batch functions return for the same sequence,
  so streaming consumers (the exploration engine, store-backed reporting,
  dominance pruning) never hold more than the front in memory.

The functions here are generic over "items with metric vectors"; the
exploration layer calls them with :class:`ExplorationRecord` objects, and
tests call them with plain tuples.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from typing import Generic, TypeVar

T = TypeVar("T")


def dominates(first: Sequence[float], second: Sequence[float]) -> bool:
    """True when vector ``first`` Pareto-dominates vector ``second``.

    Domination (minimisation): ``first`` is no worse than ``second`` on
    every objective and strictly better on at least one.  Vectors must have
    the same length.
    """
    if len(first) != len(second):
        raise ValueError(
            f"cannot compare vectors of different lengths ({len(first)} vs {len(second)})"
        )
    strictly_better = False
    for left, right in zip(first, second):
        if left > right:
            return False
        if left < right:
            strictly_better = True
    return strictly_better


def non_dominated(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated vectors (the Pareto front).

    Duplicated vectors are all kept (they do not dominate each other), which
    matches the paper's counting of distinct *configurations* rather than
    distinct metric points.
    """
    front: list[int] = []
    for index, candidate in enumerate(vectors):
        dominated = False
        for other_index, other in enumerate(vectors):
            if other_index == index:
                continue
            if dominates(other, candidate):
                dominated = True
                break
            # A duplicate earlier in the list keeps only its first occurrence
            # out of strictness concerns?  No: keep both (see docstring).
        if not dominated:
            front.append(index)
    return front


def pareto_front(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
) -> list[T]:
    """Return the Pareto-optimal subset of ``items`` under metric ``key``."""
    vectors = [tuple(key(item)) for item in items]
    return [items[index] for index in non_dominated(vectors)]


def pareto_front_indices(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
) -> list[int]:
    """Indices (into ``items``) of the Pareto-optimal subset."""
    vectors = [tuple(key(item)) for item in items]
    return non_dominated(vectors)


class IncrementalParetoFront(Generic[T]):
    """Online Pareto front: insert items one at a time, keep only the front.

    Equivalent to the batch computation: after ``add``-ing every item of a
    sequence, :meth:`items` holds exactly the items whose indices
    :func:`pareto_front_indices` would return for that sequence, in the same
    (insertion) order.  Duplicated vectors do not dominate each other, so
    all duplicates of a non-dominated vector are kept — matching
    :func:`non_dominated`.

    Each insert costs O(front · dimensions): a scan of the current members
    to detect domination of the candidate, and (only when the candidate is
    accepted) an eviction pass over the members it dominates.  Nothing
    outside the front is ever retained, which is what lets the streaming
    report path serve a 19 440-point store in O(front) record memory.
    """

    def __init__(self, key: Callable[[T], Sequence[float]] | None = None) -> None:
        self._key = key
        self._items: list[T] = []
        self._vectors: list[tuple[float, ...]] = []

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def items(self) -> list[T]:
        """Current front members, in insertion order."""
        return list(self._items)

    def vectors(self) -> list[tuple[float, ...]]:
        """Metric vectors of the current members, aligned with :meth:`items`."""
        return list(self._vectors)

    def dominates(self, vector: Sequence[float]) -> bool:
        """True when some current member dominates ``vector``."""
        candidate = tuple(vector)
        return any(dominates(member, candidate) for member in self._vectors)

    def add(self, item: T, vector: Sequence[float] | None = None) -> bool:
        """Offer one item to the front; returns True when it was accepted.

        ``vector`` defaults to ``key(item)`` when the front was built with a
        key function.  A dominated candidate is rejected; an accepted
        candidate evicts every member it dominates.
        """
        if vector is None:
            if self._key is None:
                raise ValueError("no vector given and the front has no key function")
            vector = self._key(item)
        candidate = tuple(vector)
        if any(dominates(member, candidate) for member in self._vectors):
            return False
        survivors_items: list[T] = []
        survivors_vectors: list[tuple[float, ...]] = []
        for member_item, member_vector in zip(self._items, self._vectors):
            if not dominates(candidate, member_vector):
                survivors_items.append(member_item)
                survivors_vectors.append(member_vector)
        survivors_items.append(item)
        survivors_vectors.append(candidate)
        self._items = survivors_items
        self._vectors = survivors_vectors
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IncrementalParetoFront(size={len(self._items)})"


def pareto_rank(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Non-dominated sorting rank of every vector (0 = on the Pareto front).

    Rank ``k`` means the vector becomes non-dominated once all vectors of
    rank < ``k`` are removed — the standard NSGA-style layering, useful for
    the evolutionary search extension and for reporting "how far from
    optimal" a configuration is.
    """
    remaining = list(range(len(vectors)))
    ranks = [0] * len(vectors)
    current_rank = 0
    while remaining:
        subset = [vectors[index] for index in remaining]
        front_local = non_dominated(subset)
        front_global = {remaining[i] for i in front_local}
        if not front_global:
            # Should not happen, but guard against infinite loops.
            front_global = set(remaining)
        for index in front_global:
            ranks[index] = current_rank
        remaining = [index for index in remaining if index not in front_global]
        current_rank += 1
    return ranks


def sort_front(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
    objective_index: int = 0,
) -> list[T]:
    """Sort Pareto-front items by one objective (for plotting a curve)."""
    return sorted(items, key=lambda item: tuple(key(item))[objective_index])


def hypervolume_2d(
    vectors: Sequence[Sequence[float]],
    reference: Sequence[float],
) -> float:
    """Hypervolume (area) dominated by a 2-D front w.r.t. a reference point.

    A standard quality indicator for two-objective fronts: larger is better.
    The reference point must be dominated by every vector (i.e. be the
    "worst corner"); vectors outside it contribute nothing.
    """
    if len(reference) != 2:
        raise ValueError("hypervolume_2d needs a 2-D reference point")
    front = [
        tuple(vector)
        for vector in vectors
        if len(vector) == 2 and vector[0] <= reference[0] and vector[1] <= reference[1]
    ]
    if not front:
        return 0.0
    # Keep only non-dominated points, sorted by the first objective.
    front = [front[i] for i in non_dominated(front)]
    front.sort()
    area = 0.0
    previous_y = reference[1]
    for x, y in front:
        width = reference[0] - x
        height = previous_y - y
        if width > 0 and height > 0:
            area += width * height
        previous_y = min(previous_y, y)
    return area


def reference_point(
    vectors: Sequence[Sequence[float]],
    margin: float = 0.1,
) -> tuple[float, ...]:
    """Auto-derive a hypervolume reference point from a vector set.

    The reference is the "worst corner" of the vectors — the per-objective
    maximum — pushed outward by ``margin`` of the per-objective span, so
    every vector (including the per-objective worst ones, which would
    otherwise sit *on* the reference and contribute zero volume) dominates
    a region of positive measure.  Objectives with zero span are pushed by
    ``margin`` of their magnitude instead (or by ``margin`` itself when the
    value is zero), keeping the reference strictly worse on every axis.

    Derive the reference once from a fixed vector set (e.g. an exhaustive
    ground truth) and reuse it for every front you compare — hypervolumes
    against different references are not comparable.
    """
    if not vectors:
        raise ValueError("cannot derive a reference point from no vectors")
    if margin < 0:
        raise ValueError("reference margin must be non-negative")
    dimensions = len(vectors[0])
    lows = [min(vector[d] for vector in vectors) for d in range(dimensions)]
    highs = [max(vector[d] for vector in vectors) for d in range(dimensions)]
    reference = []
    for low, high in zip(lows, highs):
        span = high - low
        if span == 0:
            span = abs(high) if high != 0 else 1.0
        reference.append(high + margin * span)
    return tuple(reference)


def hypervolume(
    vectors: Sequence[Sequence[float]],
    reference: Sequence[float],
) -> float:
    """Hypervolume dominated by an n-D front w.r.t. a reference point.

    The standard quality indicator generalised to any number of objectives
    (all minimised; larger is better): the measure of the region dominated
    by at least one vector and bounded by ``reference``.  Computed with the
    WFG-style inclusion–exclusion recursion — exact, and fast for the small
    fronts design-space exploration produces (tens of points); it is *not*
    meant for fronts of thousands of points.  On 2-D inputs it agrees with
    :func:`hypervolume_2d` (property-tested).

    Vectors outside the reference box contribute nothing; a vector on the
    reference boundary contributes zero volume.  Use
    :func:`reference_point` to derive a reference from a ground-truth set.
    """
    reference = tuple(float(value) for value in reference)
    dimensions = len(reference)
    points = []
    for vector in vectors:
        if len(vector) != dimensions:
            raise ValueError(
                f"vector of length {len(vector)} against a "
                f"{dimensions}-D reference point"
            )
        candidate = tuple(float(value) for value in vector)
        if all(value < bound for value, bound in zip(candidate, reference)):
            points.append(candidate)
    if not points:
        return 0.0
    # Only the non-dominated, de-duplicated subset carries volume; pruning
    # it here keeps the recursion over limit sets small.
    points = _unique_non_dominated(points)
    points.sort()
    return _wfg_volume(points, reference)


def _unique_non_dominated(points: list[tuple[float, ...]]) -> list[tuple[float, ...]]:
    """The distinct non-dominated members of ``points``."""
    distinct = list(dict.fromkeys(points))
    return [distinct[index] for index in non_dominated(distinct)]


def _wfg_volume(
    points: list[tuple[float, ...]],
    reference: tuple[float, ...],
) -> float:
    """Inclusion–exclusion over a sorted, non-dominated, distinct point set.

    Each point contributes its own box volume minus the volume it shares
    with the points after it (the hypervolume of its "limit set": every
    later point clipped to be no better than this one in any objective).
    """
    total = 0.0
    for position, point in enumerate(points):
        own = 1.0
        for value, bound in zip(point, reference):
            own *= bound - value
        later = points[position + 1 :]
        if later:
            limited = [
                tuple(max(a, b) for a, b in zip(point, other)) for other in later
            ]
            limited = _unique_non_dominated(limited)
            limited.sort()
            own -= _wfg_volume(limited, reference)
        total += own
    return total


def knee_point(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
) -> T | None:
    """The "knee" of a front: the item closest to the normalised ideal point.

    A common way to suggest a single balanced trade-off to the designer when
    they do not want to inspect the whole front.
    """
    if not items:
        return None
    vectors = [tuple(key(item)) for item in items]
    dimensions = len(vectors[0])
    minima = [min(vector[d] for vector in vectors) for d in range(dimensions)]
    maxima = [max(vector[d] for vector in vectors) for d in range(dimensions)]

    def normalised_distance(vector: Sequence[float]) -> float:
        distance = 0.0
        for d in range(dimensions):
            span = maxima[d] - minima[d]
            if span == 0:
                continue
            normalised = (vector[d] - minima[d]) / span
            distance += normalised**2
        return distance

    best_index = min(range(len(items)), key=lambda i: normalised_distance(vectors[i]))
    return items[best_index]
