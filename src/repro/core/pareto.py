"""Pareto-dominance machinery.

The final step of the DATE'06 flow: given the metric values of every
explored configuration, keep only the Pareto-optimal ones — those for which
no other configuration is at least as good on every chosen metric and
strictly better on one.  All metrics are minimised (accesses, footprint,
energy, execution time).

The functions here are generic over "items with metric vectors"; the
exploration layer calls them with :class:`ExplorationRecord` objects, and
tests call them with plain tuples.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

T = TypeVar("T")


def dominates(first: Sequence[float], second: Sequence[float]) -> bool:
    """True when vector ``first`` Pareto-dominates vector ``second``.

    Domination (minimisation): ``first`` is no worse than ``second`` on
    every objective and strictly better on at least one.  Vectors must have
    the same length.
    """
    if len(first) != len(second):
        raise ValueError(
            f"cannot compare vectors of different lengths ({len(first)} vs {len(second)})"
        )
    strictly_better = False
    for left, right in zip(first, second):
        if left > right:
            return False
        if left < right:
            strictly_better = True
    return strictly_better


def non_dominated(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated vectors (the Pareto front).

    Duplicated vectors are all kept (they do not dominate each other), which
    matches the paper's counting of distinct *configurations* rather than
    distinct metric points.
    """
    front: list[int] = []
    for index, candidate in enumerate(vectors):
        dominated = False
        for other_index, other in enumerate(vectors):
            if other_index == index:
                continue
            if dominates(other, candidate):
                dominated = True
                break
            # A duplicate earlier in the list keeps only its first occurrence
            # out of strictness concerns?  No: keep both (see docstring).
        if not dominated:
            front.append(index)
    return front


def pareto_front(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
) -> list[T]:
    """Return the Pareto-optimal subset of ``items`` under metric ``key``."""
    vectors = [tuple(key(item)) for item in items]
    return [items[index] for index in non_dominated(vectors)]


def pareto_front_indices(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
) -> list[int]:
    """Indices (into ``items``) of the Pareto-optimal subset."""
    vectors = [tuple(key(item)) for item in items]
    return non_dominated(vectors)


def pareto_rank(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Non-dominated sorting rank of every vector (0 = on the Pareto front).

    Rank ``k`` means the vector becomes non-dominated once all vectors of
    rank < ``k`` are removed — the standard NSGA-style layering, useful for
    the evolutionary search extension and for reporting "how far from
    optimal" a configuration is.
    """
    remaining = list(range(len(vectors)))
    ranks = [0] * len(vectors)
    current_rank = 0
    while remaining:
        subset = [vectors[index] for index in remaining]
        front_local = non_dominated(subset)
        front_global = {remaining[i] for i in front_local}
        if not front_global:
            # Should not happen, but guard against infinite loops.
            front_global = set(remaining)
        for index in front_global:
            ranks[index] = current_rank
        remaining = [index for index in remaining if index not in front_global]
        current_rank += 1
    return ranks


def sort_front(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
    objective_index: int = 0,
) -> list[T]:
    """Sort Pareto-front items by one objective (for plotting a curve)."""
    return sorted(items, key=lambda item: tuple(key(item))[objective_index])


def hypervolume_2d(
    vectors: Sequence[Sequence[float]],
    reference: Sequence[float],
) -> float:
    """Hypervolume (area) dominated by a 2-D front w.r.t. a reference point.

    A standard quality indicator for two-objective fronts: larger is better.
    The reference point must be dominated by every vector (i.e. be the
    "worst corner"); vectors outside it contribute nothing.
    """
    if len(reference) != 2:
        raise ValueError("hypervolume_2d needs a 2-D reference point")
    front = [
        tuple(vector)
        for vector in vectors
        if len(vector) == 2 and vector[0] <= reference[0] and vector[1] <= reference[1]
    ]
    if not front:
        return 0.0
    # Keep only non-dominated points, sorted by the first objective.
    front = [front[i] for i in non_dominated(front)]
    front.sort()
    area = 0.0
    previous_y = reference[1]
    for x, y in front:
        width = reference[0] - x
        height = previous_y - y
        if width > 0 and height > 0:
            area += width * height
        previous_y = min(previous_y, y)
    return area


def knee_point(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
) -> T | None:
    """The "knee" of a front: the item closest to the normalised ideal point.

    A common way to suggest a single balanced trade-off to the designer when
    they do not want to inspect the whole front.
    """
    if not items:
        return None
    vectors = [tuple(key(item)) for item in items]
    dimensions = len(vectors[0])
    minima = [min(vector[d] for vector in vectors) for d in range(dimensions)]
    maxima = [max(vector[d] for vector in vectors) for d in range(dimensions)]

    def normalised_distance(vector: Sequence[float]) -> float:
        distance = 0.0
        for d in range(dimensions):
            span = maxima[d] - minima[d]
            if span == 0:
                continue
            normalised = (vector[d] - minima[d]) / span
            distance += normalised**2
        return distance

    best_index = min(range(len(items)), key=lambda i: normalised_distance(vectors[i]))
    return items[best_index]
