"""Human-readable exploration reports.

The paper's tool presents its output "either on a GUI or in a format easy to
import to Excel or Gnuplot".  This module produces the textual report: the
per-metric trade-off table, the list of Pareto-optimal configurations with
their parameters, and the suggested knee-point configuration.  CSV/gnuplot
exports live in :mod:`repro.gui`.
"""

from __future__ import annotations

from ..profiling.metrics import metric_keys, metric_spec
from .results import ExplorationRecord, ResultDatabase, StreamingResultView
from .tradeoff import TradeoffAnalysis


def format_metric_value(metric: str, value: float) -> str:
    """Render a metric value with its unit, compactly."""
    spec = metric_spec(metric)
    if metric == "energy_nj":
        if value >= 1e6:
            return f"{value / 1e6:.2f} mJ"
        if value >= 1e3:
            return f"{value / 1e3:.2f} uJ"
        return f"{value:.1f} nJ"
    if metric == "footprint":
        if value >= 1 << 20:
            return f"{value / (1 << 20):.2f} MB"
        if value >= 1 << 10:
            return f"{value / (1 << 10):.1f} KB"
        return f"{int(value)} B"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M {spec.unit}"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k {spec.unit}"
    return f"{int(value)} {spec.unit}"


def describe_record(record: ExplorationRecord, metrics: list[str] | None = None) -> str:
    """One-line description of a record: id, key parameters, metric values."""
    keys = metrics or metric_keys()
    parameters = record.parameters
    highlights = []
    if "num_dedicated_pools" in parameters:
        highlights.append(f"{parameters['num_dedicated_pools']} dedicated pools")
    if "dedicated_pool_placement" in parameters and parameters.get("num_dedicated_pools"):
        highlights.append(f"on {parameters['dedicated_pool_placement']}")
    if "general_fit" in parameters:
        highlights.append(f"{parameters['general_fit']}")
    if "general_coalescing" in parameters:
        highlights.append(f"coalesce:{parameters['general_coalescing']}")
    values = ", ".join(
        f"{key}={format_metric_value(key, record.metrics.value(key))}" for key in keys
    )
    detail = "; ".join(highlights)
    return f"{record.configuration_id} [{detail}] -> {values}"


def tradeoff_table(analysis: TradeoffAnalysis, metrics: list[str] | None = None) -> str:
    """ASCII table of the per-metric ranges and within-Pareto gains."""
    keys = metrics or metric_keys()
    header = (
        f"{'metric':<12} {'overall min':>14} {'overall max':>14} "
        f"{'range':>8} {'pareto gain':>12} {'decrease':>9}"
    )
    lines = [header, "-" * len(header)]
    for key in keys:
        tradeoff = analysis.metric_tradeoff(key)
        lines.append(
            f"{key:<12} "
            f"{format_metric_value(key, tradeoff.overall_min):>14} "
            f"{format_metric_value(key, tradeoff.overall_max):>14} "
            f"x{tradeoff.overall_range_factor:>6.1f} "
            f"x{tradeoff.pareto_gain_factor:>10.2f} "
            f"{tradeoff.pareto_gain_percent:>8.2f}%"
        )
    return "\n".join(lines)


def pareto_listing(
    analysis: TradeoffAnalysis,
    metrics: list[str] | None = None,
    sort_by: str = "accesses",
) -> str:
    """Listing of every Pareto-optimal configuration, sorted by one metric.

    When ``sort_by`` is not among the emitted ``metrics``, the first emitted
    metric orders the listing instead.
    """
    keys = metrics or metric_keys()
    if sort_by not in keys:
        sort_by = keys[0]
    records = sorted(
        analysis.pareto_records, key=lambda record: record.metrics.value(sort_by)
    )
    lines = [f"Pareto-optimal configurations ({len(records)}):"]
    for record in records:
        lines.append("  " + describe_record(record, keys))
    return "\n".join(lines)


def exploration_report(
    database: ResultDatabase | StreamingResultView,
    pareto_metrics: list[str] | None = None,
    title: str = "",
    metrics: list[str] | None = None,
) -> str:
    """Full textual report for one exploration run.

    Works identically on an in-memory :class:`ResultDatabase` and on a
    :class:`StreamingResultView` over a persistent store — everything the
    report body states is a pure function of the records; the
    cache/store/pruning counter lines only appear when the database carries
    that execution metadata.

    ``metrics`` restricts which metrics the table, the listing and the knee
    description emit (all four by default); ``pareto_metrics`` (defaulting
    to ``metrics``) chooses the dominance objectives.
    """
    pareto_metrics = pareto_metrics or metrics
    analysis = TradeoffAnalysis(database, pareto_metrics=pareto_metrics)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        f"Explored {len(database)} configurations of trace "
        f"'{database.trace_name or '?'}'."
    )
    lines.append(f"Pareto-optimal configurations: {analysis.pareto_count}")
    if database.cache_hits or database.cache_misses or database.store_hits:
        parts = [
            f"Point evaluations: {database.cache_misses} profiled",
            f"{database.cache_hits} answered from the memoisation cache",
        ]
        if database.store_hits or database.store_misses or database.store_loaded:
            parts.append(f"{database.store_hits} answered from the result store")
        lines.append(", ".join(parts))
    if database.store_hits or database.store_misses or database.store_loaded:
        lines.append(
            f"Result store: {database.store_hits} hits, "
            f"{database.store_misses} misses, "
            f"{database.store_loaded} entries loaded from disk"
        )
    if database.prune_skipped or database.prune_predicted:
        lines.append(
            f"Dominance pruning: {database.prune_skipped} of "
            f"{database.prune_predicted} predicted candidates skipped "
            "before profiling"
        )
    surrogate_skips = getattr(database, "surrogate_skips", 0)
    if surrogate_skips:
        lines.append(
            f"Surrogate skips: {surrogate_skips} candidates discarded on "
            "model prediction alone (no dominance proof)"
        )
    if database.provenance is not None and database.provenance.shard:
        lines.append(f"Shard: {database.provenance.shard} of the enumeration")
    lines.append("")
    lines.append(tradeoff_table(analysis, metrics))
    lines.append("")
    lines.append(pareto_listing(analysis, metrics))
    knee = database.knee_record(pareto_metrics)
    if knee is not None:
        lines.append("")
        lines.append("Suggested balanced configuration (knee point):")
        lines.append("  " + describe_record(knee, metrics))
    windows = getattr(database, "windows", None)
    if windows:
        lines.append("")
        lines.append(windows_section(windows))
    return "\n".join(lines)


def windows_section(windows: dict) -> str:
    """Render the windowed phase analysis attached by ``dmexplore windows``.

    One line per window — index, span, front size, the front's labels —
    plus the shift summary (windows whose optimal set differs from the
    previous window's).  Consumes the JSON-ready ``windows`` dict, so the
    section renders identically from a live run and a reloaded artefact.
    """
    unit = "events" if windows.get("mode") == "events" else "ticks"
    lines = [
        f"Windowed analysis: {windows.get('count', 0)} windows of "
        f"{windows.get('size', 0)} {unit}, metrics "
        f"{'/'.join(windows.get('metrics', []))}"
    ]
    shifts = windows.get("shifts", [])
    if shifts:
        lines.append(
            f"Front shifts at windows: {', '.join(str(s) for s in shifts)}"
        )
    else:
        lines.append("Front shifts at windows: none (stationary workload)")
    for window in windows.get("windows", []):
        labels = [member.get("label", "?") for member in window.get("front", [])]
        shown = ", ".join(labels[:4])
        if len(labels) > 4:
            shown += f", ... ({len(labels)} total)"
        marker = " *" if window.get("shifted") else ""
        lines.append(
            f"  window {window.get('index'):>3}  "
            f"{window.get('events'):>7} events  "
            f"front {window.get('front_size'):>3}{marker}  [{shown}]"
        )
    return "\n".join(lines)
