"""Result database: storage, query and export of exploration outcomes.

Each explored configuration yields one :class:`ExplorationRecord` (the
configuration, its parameter point and the measured metrics).
:class:`ResultDatabase` collects them, answers the queries the analysis
layer needs (best/worst per metric, Pareto subsets, parameter slices) and
exports to CSV / JSON / gnuplot-friendly data files, mirroring the paper's
"results ... in a format easy to import to Excel or Gnuplot".

Results *flow* rather than accumulate: anything that consumes records as
they are produced implements the :class:`ResultSink` protocol (the database
itself is one), the database maintains its Pareto fronts incrementally on
every :meth:`ResultDatabase.add` (so querying the front is O(front), not an
O(n²) recomputation), and :class:`StreamingResultView` offers the same
query/report surface over a re-iterable record *stream* — e.g. a persistent
result store on disk — without ever materialising the record list.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

from ..profiling.metrics import MetricSet, metric_keys
from .configuration import AllocatorConfiguration
from .pareto import IncrementalParetoFront, knee_point


@dataclass
class ExplorationRecord:
    """Outcome of profiling one configuration.

    ``oom_failures`` counts allocations the configuration could not serve
    (its pools exhausted the memory modules they are mapped on).  Such a
    configuration is *infeasible*: it did not actually run the application,
    so by default it is excluded from ranges and Pareto extraction — an
    allocator that drops requests would trivially "win" every metric.
    """

    configuration: AllocatorConfiguration
    metrics: MetricSet
    trace_name: str = ""
    index: int = 0
    oom_failures: int = 0

    @property
    def configuration_id(self) -> str:
        return self.configuration.configuration_id

    @property
    def parameters(self) -> dict:
        return self.configuration.parameters

    @property
    def feasible(self) -> bool:
        """True when the configuration served every allocation of the trace."""
        return self.oom_failures == 0

    def metric_vector(self, keys: list[str] | None = None) -> tuple[float, ...]:
        return self.metrics.values(keys)

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "configuration": self.configuration.as_dict(),
            "metrics": self.metrics.as_dict(),
            "trace_name": self.trace_name,
            "oom_failures": self.oom_failures,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationRecord":
        return cls(
            configuration=AllocatorConfiguration.from_dict(data["configuration"]),
            metrics=MetricSet.from_dict(data["metrics"]),
            trace_name=data.get("trace_name", ""),
            index=int(data.get("index", 0)),
            oom_failures=int(data.get("oom_failures", 0)),
        )


@dataclass(frozen=True)
class Provenance:
    """Where a :class:`ResultDatabase` came from, for resume and merge.

    An artefact written by ``dmexplore explore`` is only mergeable with (or
    comparable to) another artefact when they were produced from the same
    evaluation context.  Provenance captures that context:

    ``fingerprint``
        The evaluation fingerprint of the producing engine (trace events,
        memory hierarchy, energy model, hot sizes, profiler options — see
        :attr:`repro.core.exploration.ExplorationEngine.fingerprint`).
    ``space``
        The parameter space as a plain ``{name: [values]}`` dict.
    ``metric_version``
        :data:`repro.core.store.METRIC_VERSION` at production time.
    ``sample`` / ``sample_seed``
        The sampling settings (``None`` sample = exhaustive enumeration).
    ``shard``
        ``"K/N"`` when the artefact holds one shard of the enumeration,
        ``""`` for a complete (or merged) artefact.
    ``spec_hash``
        Canonical hash of the :class:`repro.api.ExperimentSpec` that
        produced the artefact (shard-independent, so all shards of one
        experiment share it), or ``""`` when the run was driven directly
        through the engine rather than through an experiment spec.
    """

    fingerprint: str
    space: dict
    metric_version: int
    sample: int | None = None
    sample_seed: int = 0
    shard: str = ""
    spec_hash: str = ""

    def compatible_with(self, other: "Provenance") -> bool:
        """True when two artefacts may be merged (everything but shard matches).

        An empty ``spec_hash`` means "unknown experiment" (a direct engine
        run, or an artefact from before spec hashes existed) and is
        compatible with anything whose evaluation context otherwise
        matches — two *different* non-empty hashes are distinct
        experiments and never merge.
        """
        return (
            self.fingerprint == other.fingerprint
            and self.space == other.space
            and self.metric_version == other.metric_version
            and self.sample == other.sample
            and self.sample_seed == other.sample_seed
            and (
                not self.spec_hash
                or not other.spec_hash
                or self.spec_hash == other.spec_hash
            )
        )

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "space": self.space,
            "metric_version": self.metric_version,
            "sample": self.sample,
            "sample_seed": self.sample_seed,
            "shard": self.shard,
            "spec_hash": self.spec_hash,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Provenance":
        sample = data.get("sample")
        return cls(
            fingerprint=data.get("fingerprint", ""),
            space=data.get("space", {}),
            metric_version=int(data.get("metric_version", 0)),
            sample=None if sample is None else int(sample),
            sample_seed=int(data.get("sample_seed", 0)),
            shard=data.get("shard", ""),
            spec_hash=data.get("spec_hash", ""),
        )


@runtime_checkable
class ResultSink(Protocol):
    """Anything that consumes exploration records as they are produced.

    The exploration engine and the search strategies push every record they
    generate into the sinks handed to them, so downstream consumers (live
    Pareto fronts, progress dashboards, persistent stores, network
    forwarders) see results *while* the exploration runs instead of from a
    finished-database snapshot.  :class:`ResultDatabase` is itself a sink.
    """

    def accept(self, record: "ExplorationRecord") -> None:
        """Consume one freshly produced record."""
        ...


class StreamingParetoSink:
    """A :class:`ResultSink` maintaining a live Pareto front, nothing else.

    The constant-memory consumer for very large explorations: only the
    current front (and a pair of counters) is retained.  Infeasible records
    never enter the front, mirroring :meth:`ResultDatabase.pareto_records`.
    """

    def __init__(self, metrics: list[str] | None = None) -> None:
        self.metrics = list(metrics or metric_keys())
        self.front: IncrementalParetoFront[ExplorationRecord] = IncrementalParetoFront()
        self.seen = 0
        self.feasible = 0

    def accept(self, record: "ExplorationRecord") -> None:
        self.seen += 1
        if not record.feasible:
            return
        self.feasible += 1
        self.front.add(record, record.metric_vector(self.metrics))

    def records(self) -> list["ExplorationRecord"]:
        """Current front members, in arrival order."""
        return self.front.items()


def write_metric_csv(
    records: Iterable["ExplorationRecord"],
    path: str | Path,
    metrics: list[str] | None = None,
) -> int:
    """Stream ids, parameters and the chosen metrics of ``records`` as CSV.

    One row is built and written per record — nothing is accumulated — so
    the writer serves a streamed store exactly as it serves an in-memory
    database.  Returns the number of data rows written.
    """
    keys = metrics or metric_keys()
    rows = 0
    writer: csv.DictWriter | None = None
    with open(path, "w", newline="", encoding="utf-8") as handle:
        for record in records:
            row = {"index": record.index, "configuration_id": record.configuration_id}
            row.update({f"param_{k}": v for k, v in sorted(record.parameters.items())})
            for key in keys:
                row[key] = record.metrics.value(key)
            if writer is None:
                writer = csv.DictWriter(handle, fieldnames=list(row.keys()))
                writer.writeheader()
            writer.writerow(row)
            rows += 1
    return rows


class ResultDatabase:
    """In-memory store of exploration records with query and export helpers.

    The Pareto fronts the analysis layer asks for are maintained
    *incrementally*: every :meth:`add` offers the record to the live
    :class:`~repro.core.pareto.IncrementalParetoFront` of each metric
    selection queried so far, so :meth:`pareto_records` is an O(front)
    lookup rather than an O(n²) recomputation — with membership and order
    identical to the batch functions (property-tested).
    """

    def __init__(self, name: str = "exploration") -> None:
        self.name = name
        self._records: list[ExplorationRecord] = []
        # Live fronts, keyed by (metric-key tuple, feasible_only); created
        # lazily on the first pareto_records() query for that selection and
        # kept up to date by add().
        self._fronts: dict[
            tuple[tuple[str, ...], bool], IncrementalParetoFront[ExplorationRecord]
        ] = {}
        # Filled in by the producing engine/search: how many point
        # evaluations were answered from the memoisation cache (L1) vs the
        # persistent result store (L2) vs freshly profiled.
        self.cache_hits = 0
        self.cache_misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self.store_loaded = 0
        # Dominance-pruning outcome of the producing search (0 when the
        # producer did not prune): candidates skipped before profiling, and
        # cheap partial predictions performed to decide the skips.  Of the
        # skips, ``surrogate_skips`` counts those decided on a surrogate
        # prediction alone (quorum rule or learned model) rather than on a
        # sound dominance/infeasibility proof.
        self.prune_skipped = 0
        self.prune_predicted = 0
        self.surrogate_skips = 0
        # Evaluation-context identity; set by the producing engine, required
        # by ``dmexplore merge`` to validate artefact compatibility.
        self.provenance: Provenance | None = None
        # Windowed phase analysis attached by ``dmexplore windows`` (the
        # JSON-ready dict of repro.stream.WindowedAnalysis.as_dict); empty
        # for ordinary explorations.
        self.windows: dict = {}

    # -- collection ------------------------------------------------------

    def add(self, record: ExplorationRecord) -> None:
        record.index = len(self._records)
        self._records.append(record)
        for (keys, feasible_only), front in self._fronts.items():
            if feasible_only and not record.feasible:
                continue
            front.add(record, record.metric_vector(list(keys)))

    def accept(self, record: ExplorationRecord) -> None:
        """:class:`ResultSink` interface: same as :meth:`add`."""
        self.add(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ExplorationRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> ExplorationRecord:
        return self._records[index]

    @property
    def records(self) -> list[ExplorationRecord]:
        return list(self._records)

    # -- queries -----------------------------------------------------------

    @property
    def trace_name(self) -> str:
        """Name of the trace the records were profiled on ("" when empty)."""
        return self._records[0].trace_name if self._records else ""

    @property
    def feasible_count(self) -> int:
        """How many records served every allocation of the trace."""
        return sum(1 for record in self._records if record.feasible)

    @property
    def has_feasible(self) -> bool:
        """True when at least one record is feasible."""
        return any(record.feasible for record in self._records)

    def feasible_records(self) -> list[ExplorationRecord]:
        """Records of configurations that served every allocation of the trace."""
        return [record for record in self._records if record.feasible]

    def infeasible_records(self) -> list[ExplorationRecord]:
        """Records of configurations that ran out of memory on the trace."""
        return [record for record in self._records if not record.feasible]

    def _candidate_records(self, feasible_only: bool) -> list[ExplorationRecord]:
        records = self.feasible_records() if feasible_only else list(self._records)
        if not records:
            raise ValueError(
                "result database has no "
                + ("feasible " if feasible_only else "")
                + "records"
            )
        return records

    def best_by(self, metric: str, feasible_only: bool = True) -> ExplorationRecord:
        """Record with the lowest value of ``metric``."""
        records = self._candidate_records(feasible_only)
        return min(records, key=lambda record: record.metrics.value(metric))

    def worst_by(self, metric: str, feasible_only: bool = True) -> ExplorationRecord:
        """Record with the highest value of ``metric``."""
        records = self._candidate_records(feasible_only)
        return max(records, key=lambda record: record.metrics.value(metric))

    def metric_range(self, metric: str, feasible_only: bool = True) -> tuple[float, float]:
        """(min, max) of ``metric`` across the (feasible by default) records."""
        records = self._candidate_records(feasible_only)
        values = [record.metrics.value(metric) for record in records]
        return min(values), max(values)

    def filter(self, predicate: Callable[[ExplorationRecord], bool]) -> list[ExplorationRecord]:
        return [record for record in self._records if predicate(record)]

    def where_parameter(self, name: str, value) -> list[ExplorationRecord]:
        """Records whose parameter point assigns ``value`` to ``name``."""
        return self.filter(lambda record: record.parameters.get(name) == value)

    def pareto_records(
        self, metrics: list[str] | None = None, feasible_only: bool = True
    ) -> list[ExplorationRecord]:
        """The Pareto-optimal subset over the chosen metrics (all four by default).

        Infeasible configurations (OOM on the trace) are excluded by default:
        an allocator that dropped allocations would otherwise look
        artificially cheap on every metric.

        Served from a live :class:`IncrementalParetoFront` — built once per
        metric selection, updated on every :meth:`add` — so repeated queries
        (reports, exports, search-strategy selection) cost O(front).
        """
        keys = tuple(metrics or metric_keys())
        front = self._fronts.get((keys, feasible_only))
        if front is None:
            front = IncrementalParetoFront()
            for record in self._records:
                if feasible_only and not record.feasible:
                    continue
                front.add(record, record.metric_vector(list(keys)))
            self._fronts[(keys, feasible_only)] = front
        return front.items()

    def knee_record(self, metrics: list[str] | None = None) -> ExplorationRecord | None:
        """The balanced "knee" configuration of the Pareto front."""
        keys = metrics or metric_keys()
        front = self.pareto_records(keys)
        return knee_point(front, key=lambda record: record.metric_vector(keys))

    # -- export -----------------------------------------------------------

    def metric_table(self, metrics: list[str] | None = None) -> list[dict]:
        """Flat table (one dict per record) of ids, parameters and metrics."""
        keys = metrics or metric_keys()
        table = []
        for record in self._records:
            row = {"index": record.index, "configuration_id": record.configuration_id}
            row.update({f"param_{k}": v for k, v in sorted(record.parameters.items())})
            for key in keys:
                row[key] = record.metrics.value(key)
            table.append(row)
        return table

    def to_csv(self, path: str | Path, metrics: list[str] | None = None) -> int:
        """Write the metric table as CSV (Excel-importable); returns row count.

        ``metrics`` selects which metric columns are emitted (all four by
        default).  Rows are streamed one record at a time.
        """
        return write_metric_csv(self._records, path, metrics)

    def to_json(self, path: str | Path) -> None:
        """Serialise the whole database (records + configurations) as JSON."""
        payload = {
            "name": self.name,
            "records": [record.as_dict() for record in self._records],
        }
        if self.cache_hits or self.cache_misses:
            payload["cache"] = {"hits": self.cache_hits, "misses": self.cache_misses}
        if self.store_hits or self.store_misses or self.store_loaded:
            payload["store"] = {
                "hits": self.store_hits,
                "misses": self.store_misses,
                "loaded": self.store_loaded,
            }
        if self.prune_skipped or self.prune_predicted or self.surrogate_skips:
            payload["pruning"] = {
                "skipped": self.prune_skipped,
                "predicted": self.prune_predicted,
                "surrogate": self.surrogate_skips,
            }
        if self.provenance is not None:
            payload["provenance"] = self.provenance.as_dict()
        if self.windows:
            payload["windows"] = self.windows
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")

    @classmethod
    def from_json(cls, path: str | Path) -> "ResultDatabase":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        database = cls(name=payload.get("name", "exploration"))
        cache = payload.get("cache", {})
        database.cache_hits = int(cache.get("hits", 0))
        database.cache_misses = int(cache.get("misses", 0))
        store = payload.get("store", {})
        database.store_hits = int(store.get("hits", 0))
        database.store_misses = int(store.get("misses", 0))
        database.store_loaded = int(store.get("loaded", 0))
        pruning = payload.get("pruning", {})
        database.prune_skipped = int(pruning.get("skipped", 0))
        database.prune_predicted = int(pruning.get("predicted", 0))
        database.surrogate_skips = int(pruning.get("surrogate", 0))
        if "provenance" in payload:
            database.provenance = Provenance.from_dict(payload["provenance"])
        database.windows = payload.get("windows", {})
        for entry in payload.get("records", []):
            database.add(ExplorationRecord.from_dict(entry))
        return database

    def summary(self) -> dict:
        """Aggregate view used by reports: sizes, ranges, Pareto count."""
        if not self._records:
            return {"records": 0}
        data: dict = {
            "records": len(self._records),
            "feasible": self.feasible_count,
        }
        if self.cache_hits or self.cache_misses:
            data["cache"] = {"hits": self.cache_hits, "misses": self.cache_misses}
        if self.store_hits or self.store_misses or self.store_loaded:
            data["store"] = {
                "hits": self.store_hits,
                "misses": self.store_misses,
                "loaded": self.store_loaded,
            }
        if self.prune_skipped or self.prune_predicted or self.surrogate_skips:
            data["pruning"] = {
                "skipped": self.prune_skipped,
                "predicted": self.prune_predicted,
                "surrogate": self.surrogate_skips,
            }
        if not self.has_feasible:
            return data
        for key in metric_keys():
            low, high = self.metric_range(key)
            data[key] = {"min": low, "max": high}
        data["pareto_count"] = len(self.pareto_records())
        return data


class StreamingResultView:
    """Read-only :class:`ResultDatabase` stand-in over a record *stream*.

    ``source`` is any re-iterable of :class:`ExplorationRecord` — each
    ``iter(source)`` must yield the same records in the same order (e.g. a
    :class:`~repro.core.store.StoreRecordSource` replaying a persistent
    store file, or simply a list).  The view answers everything the
    reporting and export layers ask of a database — length, iteration,
    metric ranges, Pareto front, knee, CSV — while holding only aggregates
    and the front itself in memory: queries that need the records again
    re-iterate the source instead of caching them.

    Execution metadata (cache/store/pruning counters, provenance) is zero /
    absent: a stream describes *results*, not how a particular run produced
    them.
    """

    def __init__(self, source: Iterable[ExplorationRecord], name: str = "exploration") -> None:
        self._source = source
        self.name = name
        self.cache_hits = 0
        self.cache_misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self.store_loaded = 0
        self.prune_skipped = 0
        self.prune_predicted = 0
        self.surrogate_skips = 0
        self.provenance: Provenance | None = None
        self.windows: dict = {}
        self._fronts: dict[
            tuple[tuple[str, ...], bool], IncrementalParetoFront[ExplorationRecord]
        ] = {}
        self._count = 0
        self._feasible_count = 0
        self._trace_name = ""
        # (metric, feasible_only) -> (min, max), gathered in one pass.
        self._ranges: dict[tuple[str, bool], tuple[float, float]] = {}
        keys = metric_keys()
        for record in source:
            if self._count == 0:
                self._trace_name = record.trace_name
            self._count += 1
            if record.feasible:
                self._feasible_count += 1
            for key in keys:
                value = record.metrics.value(key)
                self._fold_range(key, False, value)
                if record.feasible:
                    self._fold_range(key, True, value)

    def _fold_range(self, metric: str, feasible_only: bool, value: float) -> None:
        known = self._ranges.get((metric, feasible_only))
        if known is None:
            self._ranges[(metric, feasible_only)] = (value, value)
        else:
            low, high = known
            self._ranges[(metric, feasible_only)] = (min(low, value), max(high, value))

    # -- the ResultDatabase query surface ---------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[ExplorationRecord]:
        return iter(self._source)

    @property
    def trace_name(self) -> str:
        return self._trace_name

    @property
    def feasible_count(self) -> int:
        return self._feasible_count

    @property
    def has_feasible(self) -> bool:
        return self._feasible_count > 0

    def metric_range(self, metric: str, feasible_only: bool = True) -> tuple[float, float]:
        """(min, max) of ``metric`` across the (feasible by default) records."""
        known = self._ranges.get((metric, feasible_only))
        if known is None:
            raise ValueError(
                "result stream has no "
                + ("feasible " if feasible_only else "")
                + "records"
            )
        return known

    def pareto_records(
        self, metrics: list[str] | None = None, feasible_only: bool = True
    ) -> list[ExplorationRecord]:
        """Pareto front of the streamed records (one extra pass per selection)."""
        keys = tuple(metrics or metric_keys())
        front = self._fronts.get((keys, feasible_only))
        if front is None:
            front = IncrementalParetoFront()
            for record in self._source:
                if feasible_only and not record.feasible:
                    continue
                front.add(record, record.metric_vector(list(keys)))
            self._fronts[(keys, feasible_only)] = front
        return front.items()

    def knee_record(self, metrics: list[str] | None = None) -> ExplorationRecord | None:
        """The balanced "knee" configuration of the Pareto front."""
        keys = metrics or metric_keys()
        front = self.pareto_records(keys)
        return knee_point(front, key=lambda record: record.metric_vector(keys))

    def to_csv(self, path: str | Path, metrics: list[str] | None = None) -> int:
        """Stream the metric table as CSV; returns the row count."""
        return write_metric_csv(self._source, path, metrics)
