"""Result database: storage, query and export of exploration outcomes.

Each explored configuration yields one :class:`ExplorationRecord` (the
configuration, its parameter point and the measured metrics).
:class:`ResultDatabase` collects them, answers the queries the analysis
layer needs (best/worst per metric, Pareto subsets, parameter slices) and
exports to CSV / JSON / gnuplot-friendly data files, mirroring the paper's
"results ... in a format easy to import to Excel or Gnuplot".
"""

from __future__ import annotations

import csv
import json
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from ..profiling.metrics import MetricSet, metric_keys
from .configuration import AllocatorConfiguration
from .pareto import knee_point, pareto_front


@dataclass
class ExplorationRecord:
    """Outcome of profiling one configuration.

    ``oom_failures`` counts allocations the configuration could not serve
    (its pools exhausted the memory modules they are mapped on).  Such a
    configuration is *infeasible*: it did not actually run the application,
    so by default it is excluded from ranges and Pareto extraction — an
    allocator that drops requests would trivially "win" every metric.
    """

    configuration: AllocatorConfiguration
    metrics: MetricSet
    trace_name: str = ""
    index: int = 0
    oom_failures: int = 0

    @property
    def configuration_id(self) -> str:
        return self.configuration.configuration_id

    @property
    def parameters(self) -> dict:
        return self.configuration.parameters

    @property
    def feasible(self) -> bool:
        """True when the configuration served every allocation of the trace."""
        return self.oom_failures == 0

    def metric_vector(self, keys: list[str] | None = None) -> tuple[float, ...]:
        return self.metrics.values(keys)

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "configuration": self.configuration.as_dict(),
            "metrics": self.metrics.as_dict(),
            "trace_name": self.trace_name,
            "oom_failures": self.oom_failures,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationRecord":
        return cls(
            configuration=AllocatorConfiguration.from_dict(data["configuration"]),
            metrics=MetricSet.from_dict(data["metrics"]),
            trace_name=data.get("trace_name", ""),
            index=int(data.get("index", 0)),
            oom_failures=int(data.get("oom_failures", 0)),
        )


@dataclass(frozen=True)
class Provenance:
    """Where a :class:`ResultDatabase` came from, for resume and merge.

    An artefact written by ``dmexplore explore`` is only mergeable with (or
    comparable to) another artefact when they were produced from the same
    evaluation context.  Provenance captures that context:

    ``fingerprint``
        The evaluation fingerprint of the producing engine (trace events,
        memory hierarchy, energy model, hot sizes, profiler options — see
        :attr:`repro.core.exploration.ExplorationEngine.fingerprint`).
    ``space``
        The parameter space as a plain ``{name: [values]}`` dict.
    ``metric_version``
        :data:`repro.core.store.METRIC_VERSION` at production time.
    ``sample`` / ``sample_seed``
        The sampling settings (``None`` sample = exhaustive enumeration).
    ``shard``
        ``"K/N"`` when the artefact holds one shard of the enumeration,
        ``""`` for a complete (or merged) artefact.
    """

    fingerprint: str
    space: dict
    metric_version: int
    sample: int | None = None
    sample_seed: int = 0
    shard: str = ""

    def compatible_with(self, other: "Provenance") -> bool:
        """True when two artefacts may be merged (everything but shard matches)."""
        return (
            self.fingerprint == other.fingerprint
            and self.space == other.space
            and self.metric_version == other.metric_version
            and self.sample == other.sample
            and self.sample_seed == other.sample_seed
        )

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "space": self.space,
            "metric_version": self.metric_version,
            "sample": self.sample,
            "sample_seed": self.sample_seed,
            "shard": self.shard,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Provenance":
        sample = data.get("sample")
        return cls(
            fingerprint=data.get("fingerprint", ""),
            space=data.get("space", {}),
            metric_version=int(data.get("metric_version", 0)),
            sample=None if sample is None else int(sample),
            sample_seed=int(data.get("sample_seed", 0)),
            shard=data.get("shard", ""),
        )


class ResultDatabase:
    """In-memory store of exploration records with query and export helpers."""

    def __init__(self, name: str = "exploration") -> None:
        self.name = name
        self._records: list[ExplorationRecord] = []
        # Filled in by the producing engine/search: how many point
        # evaluations were answered from the memoisation cache (L1) vs the
        # persistent result store (L2) vs freshly profiled.
        self.cache_hits = 0
        self.cache_misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self.store_loaded = 0
        # Evaluation-context identity; set by the producing engine, required
        # by ``dmexplore merge`` to validate artefact compatibility.
        self.provenance: Provenance | None = None

    # -- collection ------------------------------------------------------

    def add(self, record: ExplorationRecord) -> None:
        record.index = len(self._records)
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ExplorationRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> ExplorationRecord:
        return self._records[index]

    @property
    def records(self) -> list[ExplorationRecord]:
        return list(self._records)

    # -- queries -----------------------------------------------------------

    def feasible_records(self) -> list[ExplorationRecord]:
        """Records of configurations that served every allocation of the trace."""
        return [record for record in self._records if record.feasible]

    def infeasible_records(self) -> list[ExplorationRecord]:
        """Records of configurations that ran out of memory on the trace."""
        return [record for record in self._records if not record.feasible]

    def _candidate_records(self, feasible_only: bool) -> list[ExplorationRecord]:
        records = self.feasible_records() if feasible_only else list(self._records)
        if not records:
            raise ValueError(
                "result database has no "
                + ("feasible " if feasible_only else "")
                + "records"
            )
        return records

    def best_by(self, metric: str, feasible_only: bool = True) -> ExplorationRecord:
        """Record with the lowest value of ``metric``."""
        records = self._candidate_records(feasible_only)
        return min(records, key=lambda record: record.metrics.value(metric))

    def worst_by(self, metric: str, feasible_only: bool = True) -> ExplorationRecord:
        """Record with the highest value of ``metric``."""
        records = self._candidate_records(feasible_only)
        return max(records, key=lambda record: record.metrics.value(metric))

    def metric_range(self, metric: str, feasible_only: bool = True) -> tuple[float, float]:
        """(min, max) of ``metric`` across the (feasible by default) records."""
        records = self._candidate_records(feasible_only)
        values = [record.metrics.value(metric) for record in records]
        return min(values), max(values)

    def filter(self, predicate: Callable[[ExplorationRecord], bool]) -> list[ExplorationRecord]:
        return [record for record in self._records if predicate(record)]

    def where_parameter(self, name: str, value) -> list[ExplorationRecord]:
        """Records whose parameter point assigns ``value`` to ``name``."""
        return self.filter(lambda record: record.parameters.get(name) == value)

    def pareto_records(
        self, metrics: list[str] | None = None, feasible_only: bool = True
    ) -> list[ExplorationRecord]:
        """The Pareto-optimal subset over the chosen metrics (all four by default).

        Infeasible configurations (OOM on the trace) are excluded by default:
        an allocator that dropped allocations would otherwise look
        artificially cheap on every metric.
        """
        keys = metrics or metric_keys()
        candidates = (
            self.feasible_records() if feasible_only else list(self._records)
        )
        return pareto_front(candidates, key=lambda record: record.metric_vector(keys))

    def knee_record(self, metrics: list[str] | None = None) -> ExplorationRecord | None:
        """The balanced "knee" configuration of the Pareto front."""
        keys = metrics or metric_keys()
        front = self.pareto_records(keys)
        return knee_point(front, key=lambda record: record.metric_vector(keys))

    # -- export -----------------------------------------------------------

    def metric_table(self, metrics: list[str] | None = None) -> list[dict]:
        """Flat table (one dict per record) of ids, parameters and metrics."""
        keys = metrics or metric_keys()
        table = []
        for record in self._records:
            row = {"index": record.index, "configuration_id": record.configuration_id}
            row.update({f"param_{k}": v for k, v in sorted(record.parameters.items())})
            for key in keys:
                row[key] = record.metrics.value(key)
            table.append(row)
        return table

    def to_csv(self, path: str | Path, metrics: list[str] | None = None) -> int:
        """Write the metric table as CSV (Excel-importable); returns row count."""
        table = self.metric_table(metrics)
        if not table:
            Path(path).write_text("", encoding="utf-8")
            return 0
        fieldnames = list(table[0].keys())
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for row in table:
                writer.writerow(row)
        return len(table)

    def to_json(self, path: str | Path) -> None:
        """Serialise the whole database (records + configurations) as JSON."""
        payload = {
            "name": self.name,
            "records": [record.as_dict() for record in self._records],
        }
        if self.cache_hits or self.cache_misses:
            payload["cache"] = {"hits": self.cache_hits, "misses": self.cache_misses}
        if self.store_hits or self.store_misses or self.store_loaded:
            payload["store"] = {
                "hits": self.store_hits,
                "misses": self.store_misses,
                "loaded": self.store_loaded,
            }
        if self.provenance is not None:
            payload["provenance"] = self.provenance.as_dict()
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")

    @classmethod
    def from_json(cls, path: str | Path) -> "ResultDatabase":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        database = cls(name=payload.get("name", "exploration"))
        cache = payload.get("cache", {})
        database.cache_hits = int(cache.get("hits", 0))
        database.cache_misses = int(cache.get("misses", 0))
        store = payload.get("store", {})
        database.store_hits = int(store.get("hits", 0))
        database.store_misses = int(store.get("misses", 0))
        database.store_loaded = int(store.get("loaded", 0))
        if "provenance" in payload:
            database.provenance = Provenance.from_dict(payload["provenance"])
        for entry in payload.get("records", []):
            database.add(ExplorationRecord.from_dict(entry))
        return database

    def summary(self) -> dict:
        """Aggregate view used by reports: sizes, ranges, Pareto count."""
        if not self._records:
            return {"records": 0}
        data: dict = {
            "records": len(self._records),
            "feasible": len(self.feasible_records()),
        }
        if self.cache_hits or self.cache_misses:
            data["cache"] = {"hits": self.cache_hits, "misses": self.cache_misses}
        if self.store_hits or self.store_misses or self.store_loaded:
            data["store"] = {
                "hits": self.store_hits,
                "misses": self.store_misses,
                "loaded": self.store_loaded,
            }
        if not self.feasible_records():
            return data
        for key in metric_keys():
            low, high = self.metric_range(key)
            data[key] = {"min": low, "max": high}
        data["pareto_count"] = len(self.pareto_records())
        return data
