"""Heuristic search strategies over the parameter space (extension).

The paper explores the space exhaustively (its spaces are enumerable in a
night of simulation).  For larger spaces, or when the designer wants a
preview before committing to a full run, this module provides three
classic design-space-exploration strategies that reuse the same
point-evaluation machinery as the exhaustive engine:

* :class:`RandomSearch`        — uniform sampling of the space.
* :class:`HillClimbSearch`     — local search mutating one parameter at a
                                 time, restarted from random points.
* :class:`EvolutionarySearch`  — a small (mu + lambda) evolutionary
                                 algorithm with Pareto-rank selection, the
                                 standard tool for multi-objective DSE.

All strategies return a :class:`ResultDatabase`, so the downstream Pareto /
trade-off / reporting code is identical to the exhaustive path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..profiling.metrics import metric_keys
from .exploration import ExplorationEngine
from .pareto import pareto_rank
from .results import ExplorationRecord, ResultDatabase


@dataclass
class SearchBudget:
    """How many configuration evaluations a heuristic search may spend."""

    evaluations: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.evaluations <= 0:
            raise ValueError("evaluation budget must be positive")


class SearchStrategy:
    """Base class: evaluates points through an :class:`ExplorationEngine`."""

    name = "abstract"

    def __init__(self, engine: ExplorationEngine, budget: SearchBudget | None = None) -> None:
        self.engine = engine
        self.budget = budget or SearchBudget()
        self.rng = random.Random(self.budget.seed)
        self._evaluated: dict[int, ExplorationRecord] = {}

    # -- helpers ------------------------------------------------------------

    def _evaluate(self, point: dict, database: ResultDatabase) -> ExplorationRecord:
        """Evaluate a point, memoising by its index in the space."""
        index = self.engine.space.index_of(point)
        if index in self._evaluated:
            return self._evaluated[index]
        record = self.engine.run_point(point, label=f"{self.name}_{index:06d}")
        self._evaluated[index] = record
        database.add(record)
        return record

    @property
    def evaluations_used(self) -> int:
        return len(self._evaluated)

    def _random_point(self) -> dict:
        return self.engine.space.point_at(self.rng.randrange(self.engine.space.size()))

    def _mutate(self, point: dict) -> dict:
        """Change one randomly chosen parameter to a different value."""
        mutated = dict(point)
        parameter = self.rng.choice(list(self.engine.space))
        alternatives = [value for value in parameter.values if value != point[parameter.name]]
        if alternatives:
            mutated[parameter.name] = self.rng.choice(alternatives)
        return mutated

    def _crossover(self, first: dict, second: dict) -> dict:
        """Uniform crossover of two points."""
        child = {}
        for parameter in self.engine.space:
            source = first if self.rng.random() < 0.5 else second
            child[parameter.name] = source[parameter.name]
        return child

    def run(self) -> ResultDatabase:
        raise NotImplementedError


class RandomSearch(SearchStrategy):
    """Uniformly sample the space until the budget is spent."""

    name = "random"

    def run(self) -> ResultDatabase:
        database = ResultDatabase(name=f"{self.engine.trace.name}-random-search")
        total = min(self.budget.evaluations, self.engine.space.size())
        points = self.engine.space.sample(total, seed=self.budget.seed)
        for point in points:
            self._evaluate(point, database)
        return database


class HillClimbSearch(SearchStrategy):
    """Single-parameter hill climbing with random restarts.

    Minimises a scalarised objective (the normalised sum of the chosen
    metrics) — a simple but effective local search when the designer wants
    one good configuration quickly rather than the whole front.
    """

    name = "hillclimb"

    def __init__(
        self,
        engine: ExplorationEngine,
        budget: SearchBudget | None = None,
        metrics: list[str] | None = None,
        neighbours_per_step: int = 4,
    ) -> None:
        super().__init__(engine, budget)
        self.metrics = metrics or metric_keys()
        self.neighbours_per_step = neighbours_per_step

    def _score(self, record: ExplorationRecord, scales: dict[str, float]) -> float:
        return sum(
            record.metrics.value(metric) / scales[metric] for metric in self.metrics
        )

    def run(self) -> ResultDatabase:
        database = ResultDatabase(name=f"{self.engine.trace.name}-hillclimb")
        # Scale metrics by the value of an initial random point so that
        # objectives with large magnitudes do not dominate the scalarisation.
        current_point = self._random_point()
        current = self._evaluate(current_point, database)
        scales = {
            metric: max(current.metrics.value(metric), 1.0) for metric in self.metrics
        }
        current_score = self._score(current, scales)
        while self.evaluations_used < self.budget.evaluations:
            improved = False
            for _ in range(self.neighbours_per_step):
                if self.evaluations_used >= self.budget.evaluations:
                    break
                neighbour_point = self._mutate(current_point)
                neighbour = self._evaluate(neighbour_point, database)
                score = self._score(neighbour, scales)
                if score < current_score:
                    current_point, current, current_score = (
                        neighbour_point,
                        neighbour,
                        score,
                    )
                    improved = True
            if not improved:
                # Random restart.
                if self.evaluations_used >= self.budget.evaluations:
                    break
                current_point = self._random_point()
                current = self._evaluate(current_point, database)
                current_score = self._score(current, scales)
        return database


class EvolutionarySearch(SearchStrategy):
    """(mu + lambda) evolutionary search with Pareto-rank selection."""

    name = "evolutionary"

    def __init__(
        self,
        engine: ExplorationEngine,
        budget: SearchBudget | None = None,
        metrics: list[str] | None = None,
        population: int = 16,
        offspring: int = 16,
        mutation_rate: float = 0.3,
    ) -> None:
        super().__init__(engine, budget)
        if population <= 1 or offspring <= 0:
            raise ValueError("population must be > 1 and offspring > 0")
        self.metrics = metrics or metric_keys()
        self.population_size = population
        self.offspring_size = offspring
        self.mutation_rate = mutation_rate

    def _select(self, records: list[ExplorationRecord]) -> list[ExplorationRecord]:
        """Keep the best ``population_size`` records by Pareto rank, then by
        the first metric as a tiebreaker."""
        vectors = [record.metric_vector(self.metrics) for record in records]
        ranks = pareto_rank(vectors)
        order = sorted(
            range(len(records)),
            key=lambda i: (ranks[i], vectors[i][0]),
        )
        return [records[i] for i in order[: self.population_size]]

    def run(self) -> ResultDatabase:
        database = ResultDatabase(name=f"{self.engine.trace.name}-evolutionary")
        population: list[tuple[dict, ExplorationRecord]] = []
        while (
            len(population) < self.population_size
            and self.evaluations_used < self.budget.evaluations
        ):
            point = self._random_point()
            population.append((point, self._evaluate(point, database)))
        while self.evaluations_used < self.budget.evaluations:
            offspring: list[tuple[dict, ExplorationRecord]] = []
            for _ in range(self.offspring_size):
                if self.evaluations_used >= self.budget.evaluations:
                    break
                first, second = self.rng.sample(population, 2)
                child_point = self._crossover(first[0], second[0])
                if self.rng.random() < self.mutation_rate:
                    child_point = self._mutate(child_point)
                offspring.append((child_point, self._evaluate(child_point, database)))
            combined = population + offspring
            selected_records = self._select([record for _point, record in combined])
            selected_ids = {id(record) for record in selected_records}
            population = [
                (point, record) for point, record in combined if id(record) in selected_ids
            ][: self.population_size]
            if not offspring:
                break
        return database
