"""Heuristic search strategies over the parameter space (extension).

The paper explores the space exhaustively (its spaces are enumerable in a
night of simulation).  For larger spaces, or when the designer wants a
preview before committing to a full run, this module provides three
classic design-space-exploration strategies that reuse the same
point-evaluation machinery as the exhaustive engine:

* :class:`RandomSearch`        — uniform sampling of the space.
* :class:`HillClimbSearch`     — local search mutating one parameter at a
                                 time, restarted from random points.
* :class:`EvolutionarySearch`  — a small (mu + lambda) evolutionary
                                 algorithm with Pareto-rank selection, the
                                 standard tool for multi-objective DSE.

All strategies return a :class:`ResultDatabase`, so the downstream Pareto /
trade-off / reporting code is identical to the exhaustive path.

Candidate generation is separated from candidate evaluation: each strategy
first draws a full generation/batch of points from its **private**
``random.Random(seed)`` stream (no shared module-level RNG state), then
evaluates the batch in one :meth:`ExplorationEngine.evaluate_points` call.
Because no random draws happen during evaluation, the search trajectory for
a given seed is identical whatever :class:`~repro.core.exploration.
EvaluationBackend` performs the evaluations — serial and process-pool runs
produce the same databases.

Dominance pruning (``prune=True``) spends a *fraction* of a profiling run
per new candidate to avoid whole ones: the engine replays only a prefix of
the trace (:meth:`ExplorationEngine.predict_point`), and a candidate is
skipped before full profiling when

* its prefix already fails allocations — a sound proof of infeasibility
  (the full replay repeats the prefix exactly), or
* its partial vector is dominated by a fully evaluated record — the
  partial vector is a sound component-wise lower bound of the full vector,
  so this is a proof of full-vector dominance, or
* at least :attr:`SearchStrategy.prune_votes` already-evaluated feasible
  configurations each beat the candidate's partial vector by at least
  :attr:`SearchStrategy.prune_margin` of the observed per-metric spread on
  *every* objective.  This surrogate test compares like with like (all
  candidates are profiled on the same prefix); the margin and the vote
  quorum absorb prefix-vs-full noise.  Calibrated over 16 seeds × 4
  workloads on the compact space, the defaults produced zero skips of
  true front members while skipping 10-25 % of candidates.

Skipped candidates therefore never (first two rules) or only in
pathological cases (quorum rule) carry Pareto-optimal configurations; the
skip and prediction counters are surfaced on the produced database, its
summary, JSON artefact and text report.  Quorum skips — decided by a
surrogate prediction rather than a sound proof — are additionally counted
in ``surrogate_skips``, alongside the skips the learned-model strategies
perform.

The modern surrogate-guided portfolio (NSGA-II, the TPE sampler and the
random-forest surrogate search) lives in :mod:`repro.core.strategies` and
builds on the same :class:`SearchStrategy` base.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..profiling.metrics import metric_keys
from .exploration import ExplorationEngine
from .pareto import IncrementalParetoFront, pareto_rank
from .results import ExplorationRecord, ResultDatabase, ResultSink

#: Default evaluation budget of a heuristic search.  This is the single
#: definition — :class:`SearchBudget`, the experiment spec and the CLI all
#: derive their default from it.
DEFAULT_SEARCH_BUDGET = 200

#: Default fraction of the trace replayed per dominance-pruning prediction.
#: Single definition, consumed by :class:`SearchStrategy`, the experiment
#: spec and the CLI.
DEFAULT_PRUNE_FRACTION = 0.25


@dataclass
class SearchBudget:
    """How many configuration evaluations a heuristic search may spend."""

    evaluations: int = DEFAULT_SEARCH_BUDGET
    seed: int = 0

    def __post_init__(self) -> None:
        if self.evaluations <= 0:
            raise ValueError("evaluation budget must be positive")


class SearchStrategy:
    """Base class: evaluates points through an :class:`ExplorationEngine`.

    ``metrics`` are the objectives (all four by default) — they drive the
    scalarisation / selection of the concrete strategies *and* the live
    Pareto front that dominance pruning tests candidates against.  With
    ``prune=True``, every genuinely new candidate is first profiled over a
    ``prune_fraction`` prefix of the trace and skipped when that partial
    vector is already dominated (see the module docstring for the exact
    rules); ``prune_skipped`` / ``prune_predicted`` count the outcome.
    """

    name = "abstract"

    #: Consecutive generations allowed to add no new evaluation before a
    #: strategy gives up (guards against spinning forever on a small space
    #: whose points are all memoised while budget remains).
    max_stalled_generations = 10

    #: Generation size used when a single-batch strategy (random search)
    #: prunes: the live front must be allowed to grow between batches for
    #: dominance tests to have anything to test against.  Fixed, so the
    #: pruned trajectory never depends on the evaluation backend.
    prune_batch_size = 16

    #: Surrogate-skip quorum: this many evaluated configurations must each
    #: clearly beat a candidate's partial vector before it is skipped.
    prune_votes = 3

    #: "Clearly beat" margin of the surrogate test, as a fraction of the
    #: running per-metric spread observed across partial vectors.
    prune_margin = 0.1

    def __init__(
        self,
        engine: ExplorationEngine,
        budget: SearchBudget | None = None,
        metrics: list[str] | None = None,
        prune: bool = False,
        prune_fraction: float = DEFAULT_PRUNE_FRACTION,
    ) -> None:
        self.engine = engine
        self.budget = budget or SearchBudget()
        self.metrics = metrics or metric_keys()
        self.prune = prune
        self.prune_fraction = prune_fraction
        if prune and not 0.0 < prune_fraction < 1.0:
            raise ValueError(
                f"prune_fraction must be in (0, 1) when pruning, got {prune_fraction}"
            )
        # Every strategy instance owns its RNG; nothing here touches the
        # process-wide ``random`` module, so concurrently constructed
        # strategies (or parallel backends) cannot perturb each other.
        self.rng = random.Random(self.budget.seed)
        self._evaluated: dict[int, ExplorationRecord] = {}
        self._sink: ResultSink | None = None
        # Pruning state: the live front of fully evaluated feasible records,
        # the *partial* (prefix) vectors of those records (the surrogate
        # voters), the running per-metric spread of every partial vector
        # seen, and a cache of predictions so a candidate resubmitted by a
        # later generation is never prefix-profiled twice.
        self._live_front: IncrementalParetoFront[ExplorationRecord] = (
            IncrementalParetoFront()
        )
        self._partial_vectors: list[tuple[float, ...]] = []
        self._partial_low: list[float] = []
        self._partial_high: list[float] = []
        self._predictions: dict[int, tuple[tuple[float, ...], int]] = {}
        self._pruned_indices: set[int] = set()
        self.prune_skipped = 0
        self.prune_predicted = 0
        # Of the skipped candidates, how many were discarded on a *surrogate
        # prediction alone* (the quorum rule here, or a learned model in the
        # surrogate strategies) rather than on a sound proof.  Always a
        # separate counter so designers can tell recoverable, model-driven
        # skips from provable ones.
        self.surrogate_skips = 0

    # -- helpers ------------------------------------------------------------

    def _evaluate(self, point: dict, database: ResultDatabase) -> ExplorationRecord:
        """Evaluate one point (memoised by its index in the space)."""
        return self._evaluate_batch([point], database)[0]

    def _evaluate_batch(
        self, points: list[dict], database: ResultDatabase
    ) -> list[ExplorationRecord]:
        """Evaluate a generation of points as one backend batch.

        The whole generation goes through the engine, whose memoisation
        cache answers revisited points (hill-climb no-op mutations, repeated
        offspring) without re-profiling; only points this strategy has not
        produced before are appended to ``database``, in generation order.
        Returns one record per submitted point, order preserved.
        """
        indices = [self.engine.space.index_of(point) for point in points]
        items = [
            (point, f"{self.name}_{index:06d}")
            for point, index in zip(points, indices)
        ]
        records = self.engine.evaluate_points(items)
        for index, record in zip(indices, records):
            if index not in self._evaluated:
                self._evaluated[index] = record
                database.add(record)
                if self._sink is not None:
                    self._sink.accept(record)
                if record.feasible:
                    self._live_front.add(record, record.metric_vector(self.metrics))
                    prediction = self._predictions.get(index)
                    if prediction is not None and prediction[1] == 0:
                        self._partial_vectors.append(prediction[0])
        return records

    def _fold_spread(self, vector: tuple[float, ...]) -> None:
        """Fold one partial vector into the running per-metric spread."""
        if not self._partial_low:
            self._partial_low = list(vector)
            self._partial_high = list(vector)
            return
        for j, value in enumerate(vector):
            self._partial_low[j] = min(self._partial_low[j], value)
            self._partial_high[j] = max(self._partial_high[j], value)

    def _surrogate_skip(self, vector: tuple[float, ...]) -> bool:
        """Quorum test: do ``prune_votes`` evaluated configurations clearly
        beat this partial vector on every objective?"""
        if not self._partial_low:
            return False
        slack = [
            self.prune_margin * (high - low) if high > low else 0.0
            for low, high in zip(self._partial_low, self._partial_high)
        ]
        votes = 0
        for member in self._partial_vectors:
            beaten = all(
                m <= v - s for m, v, s in zip(member, vector, slack)
            ) and any(m < v - s for m, v, s in zip(member, vector, slack))
            if beaten:
                votes += 1
                if votes >= self.prune_votes:
                    return True
        return False

    def _prune_candidates(self, points: list[dict]) -> list[dict]:
        """Drop candidates whose prefix profile proves (or strongly predicts)
        they cannot reach the Pareto front; returns the survivors in order.

        Points already evaluated by this strategy, memoised by the engine or
        present in the persistent store pass through untouched — their exact
        metrics are free, so predicting would only cost accuracy.
        """
        if not self.prune:
            return points
        kept: list[dict] = []
        for point in points:
            index = self.engine.space.index_of(point)
            if index in self._evaluated or self.engine.is_known(point):
                kept.append(point)
                continue
            prediction = self._predictions.get(index)
            if prediction is None:
                prediction = self.engine.predict_point(
                    point, fraction=self.prune_fraction, metrics=self.metrics
                )
                self._predictions[index] = prediction
                self.prune_predicted += 1
            vector, prefix_oom = prediction
            if prefix_oom:
                # The prefix already failed allocations: provably infeasible.
                self._count_skip(index)
                continue
            if self._live_front.dominates(vector):
                # A full record dominates the candidate's lower bound — a
                # sound proof of full-vector dominance.
                self._count_skip(index)
                self._fold_spread(vector)
                continue
            if self._surrogate_skip(vector):
                # The quorum merely *predicts* domination; counted separately
                # so the two kinds of skip stay distinguishable downstream.
                self._count_skip(index, surrogate=True)
                self._fold_spread(vector)
                continue
            self._fold_spread(vector)
            kept.append(point)
        return kept

    def _count_skip(self, index: int, surrogate: bool = False) -> None:
        """Count a skipped candidate once, however often it is re-proposed,
        so ``prune_skipped`` never exceeds ``prune_predicted``.  A skip
        decided by surrogate prediction (rather than a sound proof) is
        additionally counted in ``surrogate_skips``."""
        if index not in self._pruned_indices:
            self._pruned_indices.add(index)
            self.prune_skipped += 1
            if surrogate:
                self.surrogate_skips += 1

    def _within_budget(self, points: list[dict]) -> list[dict]:
        """Truncate a candidate generation to the remaining budget.

        Only points that would cost a *new* evaluation consume budget;
        already-memoised points ride along for free, mirroring how
        ``evaluations_used`` is counted.
        """
        remaining = self.budget.evaluations - self.evaluations_used
        taken: list[dict] = []
        new_indices: set[int] = set()
        for point in points:
            index = self.engine.space.index_of(point)
            if index not in self._evaluated and index not in new_indices:
                if remaining <= 0:
                    continue
                new_indices.add(index)
                remaining -= 1
            taken.append(point)
        return taken

    @property
    def evaluations_used(self) -> int:
        return len(self._evaluated)

    @property
    def budget_left(self) -> bool:
        return self.evaluations_used < self.budget.evaluations

    def _random_point(self) -> dict:
        return self.engine.space.point_at(self.rng.randrange(self.engine.space.size()))

    def _mutate(self, point: dict) -> dict:
        """Change one randomly chosen parameter to a different value."""
        mutated = dict(point)
        parameter = self.rng.choice(list(self.engine.space))
        alternatives = [value for value in parameter.values if value != point[parameter.name]]
        if alternatives:
            mutated[parameter.name] = self.rng.choice(alternatives)
        return mutated

    def _crossover(self, first: dict, second: dict) -> dict:
        """Uniform crossover of two points."""
        child = {}
        for parameter in self.engine.space:
            source = first if self.rng.random() < 0.5 else second
            child[parameter.name] = source[parameter.name]
        return child

    def run(self, sink: ResultSink | None = None) -> ResultDatabase:
        """Template method: snapshot cache/store counters around :meth:`_search`.

        The produced database carries the engine's provenance, so heuristic
        results are attributable to an evaluation context (and a warm
        persistent store benefits searches exactly as it does exhaustive
        runs).  ``sink`` receives every newly evaluated record as its
        generation completes, before the search finishes.
        """
        database = ResultDatabase(name=f"{self.engine.trace.name}-{self.name}")
        snapshot = self.engine._counter_snapshot()
        self._sink = sink
        try:
            self._search(database)
        finally:
            self._sink = None
        self.engine._record_counters(database, snapshot)
        database.prune_skipped = self.prune_skipped
        database.prune_predicted = self.prune_predicted
        database.surrogate_skips = self.surrogate_skips
        self.engine._attach_provenance(database)
        return database

    def _search(self, database: ResultDatabase) -> None:
        raise NotImplementedError


class RandomSearch(SearchStrategy):
    """Uniformly sample the space until the budget is spent.

    Without pruning the whole sample is evaluated as one backend batch.
    With pruning it is evaluated in fixed-size generations so the live
    front grows between them and later candidates can be skipped.
    """

    name = "random"

    def _search(self, database: ResultDatabase) -> None:
        total = min(self.budget.evaluations, self.engine.space.size())
        points = self.engine.space.sample(total, seed=self.budget.seed)
        if not self.prune:
            self._evaluate_batch(points, database)
            return
        for start in range(0, len(points), self.prune_batch_size):
            batch = self._prune_candidates(points[start : start + self.prune_batch_size])
            if batch:
                self._evaluate_batch(batch, database)


class HillClimbSearch(SearchStrategy):
    """Steepest-descent hill climbing with random restarts.

    Minimises a scalarised objective (the normalised sum of the chosen
    metrics) — a simple but effective local search when the designer wants
    one good configuration quickly rather than the whole front.  Each step
    evaluates ``neighbours_per_step`` single-parameter mutations of the
    current point as one batch (so a parallel backend profiles them
    concurrently) and moves to the best improving neighbour.
    """

    name = "hillclimb"

    def __init__(
        self,
        engine: ExplorationEngine,
        budget: SearchBudget | None = None,
        metrics: list[str] | None = None,
        neighbours_per_step: int = 4,
        prune: bool = False,
        prune_fraction: float = DEFAULT_PRUNE_FRACTION,
    ) -> None:
        super().__init__(engine, budget, metrics, prune, prune_fraction)
        self.neighbours_per_step = neighbours_per_step

    def _score(self, record: ExplorationRecord, scales: dict[str, float]) -> float:
        # An infeasible record (OOM on the trace) has artificially low
        # metrics — it never ran the whole application — so it must never
        # look like an improvement; score it off the scale.
        if not record.feasible:
            return float("inf")
        return sum(
            record.metrics.value(metric) / scales[metric] for metric in self.metrics
        )

    def _search(self, database: ResultDatabase) -> None:
        # Scale metrics by the value of an initial random point so that
        # objectives with large magnitudes do not dominate the scalarisation.
        current_point = self._random_point()
        current = self._evaluate(current_point, database)
        scales = {
            metric: max(current.metrics.value(metric), 1.0) for metric in self.metrics
        }
        current_score = self._score(current, scales)
        stalled = 0
        while self.budget_left and stalled < self.max_stalled_generations:
            used_before = self.evaluations_used
            neighbours = [
                self._mutate(current_point) for _ in range(self.neighbours_per_step)
            ]
            neighbours = self._prune_candidates(neighbours)
            neighbours = self._within_budget(neighbours)
            improved = False
            if neighbours:
                records = self._evaluate_batch(neighbours, database)
                best_index = min(
                    range(len(records)),
                    key=lambda i: self._score(records[i], scales),
                )
                best_score = self._score(records[best_index], scales)
                if best_score < current_score:
                    current_point = neighbours[best_index]
                    current = records[best_index]
                    current_score = best_score
                    improved = True
            if not improved:
                # Random restart.
                if not self.budget_left:
                    break
                current_point = self._random_point()
                current = self._evaluate(current_point, database)
                current_score = self._score(current, scales)
            stalled = stalled + 1 if self.evaluations_used == used_before else 0


class EvolutionarySearch(SearchStrategy):
    """(mu + lambda) evolutionary search with Pareto-rank selection."""

    name = "evolutionary"

    def __init__(
        self,
        engine: ExplorationEngine,
        budget: SearchBudget | None = None,
        metrics: list[str] | None = None,
        population: int = 16,
        offspring: int = 16,
        mutation_rate: float = 0.3,
        prune: bool = False,
        prune_fraction: float = DEFAULT_PRUNE_FRACTION,
    ) -> None:
        super().__init__(engine, budget, metrics, prune, prune_fraction)
        if population <= 1 or offspring <= 0:
            raise ValueError("population must be > 1 and offspring > 0")
        self.population_size = population
        self.offspring_size = offspring
        self.mutation_rate = mutation_rate

    def _select(self, records: list[ExplorationRecord]) -> list[ExplorationRecord]:
        """Keep the best ``population_size`` records by Pareto rank, then by
        the first metric as a tiebreaker."""
        vectors = [record.metric_vector(self.metrics) for record in records]
        ranks = pareto_rank(vectors)
        order = sorted(
            range(len(records)),
            key=lambda i: (ranks[i], vectors[i][0]),
        )
        return [records[i] for i in order[: self.population_size]]

    def _search(self, database: ResultDatabase) -> None:
        population: list[tuple[dict, ExplorationRecord]] = []
        stalled = 0
        while (
            len(population) < self.population_size
            and self.budget_left
            and stalled < self.max_stalled_generations
        ):
            used_before = self.evaluations_used
            seeds = [
                self._random_point()
                for _ in range(self.population_size - len(population))
            ]
            seeds = self._prune_candidates(seeds)
            seeds = self._within_budget(seeds)
            if not seeds:
                if not self.prune:
                    break
                # Every seed was pruned: draw a fresh batch (bounded by the
                # stall counter) instead of giving up on the population.
                stalled += 1
                continue
            records = self._evaluate_batch(seeds, database)
            population.extend(zip(seeds, records))
            stalled = stalled + 1 if self.evaluations_used == used_before else 0
        while self.budget_left and len(population) >= 2 and stalled < self.max_stalled_generations:
            used_before = self.evaluations_used
            child_points = []
            for _ in range(self.offspring_size):
                first, second = self.rng.sample(population, 2)
                child_point = self._crossover(first[0], second[0])
                if self.rng.random() < self.mutation_rate:
                    child_point = self._mutate(child_point)
                child_points.append(child_point)
            child_points = self._prune_candidates(child_points)
            child_points = self._within_budget(child_points)
            if not child_points:
                if not self.prune:
                    break
                # A fully pruned generation still counts against the stall
                # limit, so a converged search terminates rather than spins.
                stalled += 1
                continue
            child_records = self._evaluate_batch(child_points, database)
            offspring = list(zip(child_points, child_records))
            combined = population + offspring
            selected_records = self._select([record for _point, record in combined])
            selected_ids = {id(record) for record in selected_records}
            population = [
                (point, record) for point, record in combined if id(record) in selected_ids
            ][: self.population_size]
            stalled = stalled + 1 if self.evaluations_used == used_before else 0
