"""Heuristic search strategies over the parameter space (extension).

The paper explores the space exhaustively (its spaces are enumerable in a
night of simulation).  For larger spaces, or when the designer wants a
preview before committing to a full run, this module provides three
classic design-space-exploration strategies that reuse the same
point-evaluation machinery as the exhaustive engine:

* :class:`RandomSearch`        — uniform sampling of the space.
* :class:`HillClimbSearch`     — local search mutating one parameter at a
                                 time, restarted from random points.
* :class:`EvolutionarySearch`  — a small (mu + lambda) evolutionary
                                 algorithm with Pareto-rank selection, the
                                 standard tool for multi-objective DSE.

All strategies return a :class:`ResultDatabase`, so the downstream Pareto /
trade-off / reporting code is identical to the exhaustive path.

Candidate generation is separated from candidate evaluation: each strategy
first draws a full generation/batch of points from its **private**
``random.Random(seed)`` stream (no shared module-level RNG state), then
evaluates the batch in one :meth:`ExplorationEngine.evaluate_points` call.
Because no random draws happen during evaluation, the search trajectory for
a given seed is identical whatever :class:`~repro.core.exploration.
EvaluationBackend` performs the evaluations — serial and process-pool runs
produce the same databases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..profiling.metrics import metric_keys
from .exploration import ExplorationEngine
from .pareto import pareto_rank
from .results import ExplorationRecord, ResultDatabase


@dataclass
class SearchBudget:
    """How many configuration evaluations a heuristic search may spend."""

    evaluations: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.evaluations <= 0:
            raise ValueError("evaluation budget must be positive")


class SearchStrategy:
    """Base class: evaluates points through an :class:`ExplorationEngine`."""

    name = "abstract"

    #: Consecutive generations allowed to add no new evaluation before a
    #: strategy gives up (guards against spinning forever on a small space
    #: whose points are all memoised while budget remains).
    max_stalled_generations = 10

    def __init__(self, engine: ExplorationEngine, budget: SearchBudget | None = None) -> None:
        self.engine = engine
        self.budget = budget or SearchBudget()
        # Every strategy instance owns its RNG; nothing here touches the
        # process-wide ``random`` module, so concurrently constructed
        # strategies (or parallel backends) cannot perturb each other.
        self.rng = random.Random(self.budget.seed)
        self._evaluated: dict[int, ExplorationRecord] = {}

    # -- helpers ------------------------------------------------------------

    def _evaluate(self, point: dict, database: ResultDatabase) -> ExplorationRecord:
        """Evaluate one point (memoised by its index in the space)."""
        return self._evaluate_batch([point], database)[0]

    def _evaluate_batch(
        self, points: list[dict], database: ResultDatabase
    ) -> list[ExplorationRecord]:
        """Evaluate a generation of points as one backend batch.

        The whole generation goes through the engine, whose memoisation
        cache answers revisited points (hill-climb no-op mutations, repeated
        offspring) without re-profiling; only points this strategy has not
        produced before are appended to ``database``, in generation order.
        Returns one record per submitted point, order preserved.
        """
        indices = [self.engine.space.index_of(point) for point in points]
        items = [
            (point, f"{self.name}_{index:06d}")
            for point, index in zip(points, indices)
        ]
        records = self.engine.evaluate_points(items)
        for index, record in zip(indices, records):
            if index not in self._evaluated:
                self._evaluated[index] = record
                database.add(record)
        return records

    def _within_budget(self, points: list[dict]) -> list[dict]:
        """Truncate a candidate generation to the remaining budget.

        Only points that would cost a *new* evaluation consume budget;
        already-memoised points ride along for free, mirroring how
        ``evaluations_used`` is counted.
        """
        remaining = self.budget.evaluations - self.evaluations_used
        taken: list[dict] = []
        new_indices: set[int] = set()
        for point in points:
            index = self.engine.space.index_of(point)
            if index not in self._evaluated and index not in new_indices:
                if remaining <= 0:
                    continue
                new_indices.add(index)
                remaining -= 1
            taken.append(point)
        return taken

    @property
    def evaluations_used(self) -> int:
        return len(self._evaluated)

    @property
    def budget_left(self) -> bool:
        return self.evaluations_used < self.budget.evaluations

    def _random_point(self) -> dict:
        return self.engine.space.point_at(self.rng.randrange(self.engine.space.size()))

    def _mutate(self, point: dict) -> dict:
        """Change one randomly chosen parameter to a different value."""
        mutated = dict(point)
        parameter = self.rng.choice(list(self.engine.space))
        alternatives = [value for value in parameter.values if value != point[parameter.name]]
        if alternatives:
            mutated[parameter.name] = self.rng.choice(alternatives)
        return mutated

    def _crossover(self, first: dict, second: dict) -> dict:
        """Uniform crossover of two points."""
        child = {}
        for parameter in self.engine.space:
            source = first if self.rng.random() < 0.5 else second
            child[parameter.name] = source[parameter.name]
        return child

    def run(self) -> ResultDatabase:
        """Template method: snapshot cache/store counters around :meth:`_search`.

        The produced database carries the engine's provenance, so heuristic
        results are attributable to an evaluation context (and a warm
        persistent store benefits searches exactly as it does exhaustive
        runs).
        """
        database = ResultDatabase(name=f"{self.engine.trace.name}-{self.name}")
        snapshot = self.engine._counter_snapshot()
        self._search(database)
        self.engine._record_counters(database, snapshot)
        self.engine._attach_provenance(database)
        return database

    def _search(self, database: ResultDatabase) -> None:
        raise NotImplementedError


class RandomSearch(SearchStrategy):
    """Uniformly sample the space until the budget is spent."""

    name = "random"

    def _search(self, database: ResultDatabase) -> None:
        total = min(self.budget.evaluations, self.engine.space.size())
        points = self.engine.space.sample(total, seed=self.budget.seed)
        self._evaluate_batch(points, database)


class HillClimbSearch(SearchStrategy):
    """Steepest-descent hill climbing with random restarts.

    Minimises a scalarised objective (the normalised sum of the chosen
    metrics) — a simple but effective local search when the designer wants
    one good configuration quickly rather than the whole front.  Each step
    evaluates ``neighbours_per_step`` single-parameter mutations of the
    current point as one batch (so a parallel backend profiles them
    concurrently) and moves to the best improving neighbour.
    """

    name = "hillclimb"

    def __init__(
        self,
        engine: ExplorationEngine,
        budget: SearchBudget | None = None,
        metrics: list[str] | None = None,
        neighbours_per_step: int = 4,
    ) -> None:
        super().__init__(engine, budget)
        self.metrics = metrics or metric_keys()
        self.neighbours_per_step = neighbours_per_step

    def _score(self, record: ExplorationRecord, scales: dict[str, float]) -> float:
        return sum(
            record.metrics.value(metric) / scales[metric] for metric in self.metrics
        )

    def _search(self, database: ResultDatabase) -> None:
        # Scale metrics by the value of an initial random point so that
        # objectives with large magnitudes do not dominate the scalarisation.
        current_point = self._random_point()
        current = self._evaluate(current_point, database)
        scales = {
            metric: max(current.metrics.value(metric), 1.0) for metric in self.metrics
        }
        current_score = self._score(current, scales)
        stalled = 0
        while self.budget_left and stalled < self.max_stalled_generations:
            used_before = self.evaluations_used
            neighbours = [
                self._mutate(current_point) for _ in range(self.neighbours_per_step)
            ]
            neighbours = self._within_budget(neighbours)
            improved = False
            if neighbours:
                records = self._evaluate_batch(neighbours, database)
                best_index = min(
                    range(len(records)),
                    key=lambda i: self._score(records[i], scales),
                )
                best_score = self._score(records[best_index], scales)
                if best_score < current_score:
                    current_point = neighbours[best_index]
                    current = records[best_index]
                    current_score = best_score
                    improved = True
            if not improved:
                # Random restart.
                if not self.budget_left:
                    break
                current_point = self._random_point()
                current = self._evaluate(current_point, database)
                current_score = self._score(current, scales)
            stalled = stalled + 1 if self.evaluations_used == used_before else 0


class EvolutionarySearch(SearchStrategy):
    """(mu + lambda) evolutionary search with Pareto-rank selection."""

    name = "evolutionary"

    def __init__(
        self,
        engine: ExplorationEngine,
        budget: SearchBudget | None = None,
        metrics: list[str] | None = None,
        population: int = 16,
        offspring: int = 16,
        mutation_rate: float = 0.3,
    ) -> None:
        super().__init__(engine, budget)
        if population <= 1 or offspring <= 0:
            raise ValueError("population must be > 1 and offspring > 0")
        self.metrics = metrics or metric_keys()
        self.population_size = population
        self.offspring_size = offspring
        self.mutation_rate = mutation_rate

    def _select(self, records: list[ExplorationRecord]) -> list[ExplorationRecord]:
        """Keep the best ``population_size`` records by Pareto rank, then by
        the first metric as a tiebreaker."""
        vectors = [record.metric_vector(self.metrics) for record in records]
        ranks = pareto_rank(vectors)
        order = sorted(
            range(len(records)),
            key=lambda i: (ranks[i], vectors[i][0]),
        )
        return [records[i] for i in order[: self.population_size]]

    def _search(self, database: ResultDatabase) -> None:
        population: list[tuple[dict, ExplorationRecord]] = []
        stalled = 0
        while (
            len(population) < self.population_size
            and self.budget_left
            and stalled < self.max_stalled_generations
        ):
            used_before = self.evaluations_used
            seeds = [
                self._random_point()
                for _ in range(self.population_size - len(population))
            ]
            seeds = self._within_budget(seeds)
            if not seeds:
                break
            records = self._evaluate_batch(seeds, database)
            population.extend(zip(seeds, records))
            stalled = stalled + 1 if self.evaluations_used == used_before else 0
        while self.budget_left and len(population) >= 2 and stalled < self.max_stalled_generations:
            used_before = self.evaluations_used
            child_points = []
            for _ in range(self.offspring_size):
                first, second = self.rng.sample(population, 2)
                child_point = self._crossover(first[0], second[0])
                if self.rng.random() < self.mutation_rate:
                    child_point = self._mutate(child_point)
                child_points.append(child_point)
            child_points = self._within_budget(child_points)
            if not child_points:
                break
            child_records = self._evaluate_batch(child_points, database)
            offspring = list(zip(child_points, child_records))
            combined = population + offspring
            selected_records = self._select([record for _point, record in combined])
            selected_ids = {id(record) for record in selected_records}
            population = [
                (point, record) for point, record in combined if id(record) in selected_ids
            ][: self.population_size]
            stalled = stalled + 1 if self.evaluations_used == used_before else 0
