"""Standard parameter spaces for the exploration.

The paper's designer writes "the list of arrays with the parameter values to
be explored".  This module provides ready-made spaces: the default axes used
by both case studies, a small smoke-test space for examples and tests, and
workload-specific variants.  Every space here produces points understood by
:func:`repro.core.configuration.configuration_from_point`.
"""

from __future__ import annotations

from ..allocator.coalescing import coalescing_policy_names
from ..allocator.fit import fit_policy_names
from ..allocator.freelist import free_list_policy_names
from ..allocator.splitting import splitting_policy_names
from .parameters import ParameterSpace


def default_parameter_space(max_dedicated_pools: int = 5) -> ParameterSpace:
    """The full exploration space used for the case-study experiments.

    Axes (and their value arrays):

    * ``num_dedicated_pools``       0 .. max_dedicated_pools
    * ``dedicated_pool_kind``       fixed | slab
    * ``dedicated_pool_placement``  scratchpad | main
    * ``general_free_list``         lifo | fifo | address_ordered | size_ordered
    * ``general_fit``               first_fit | next_fit | best_fit | worst_fit | exact_fit
    * ``general_coalescing``        never | immediate | deferred
    * ``general_splitting``         never | always | threshold
    * ``chunk_size``                2 KB | 8 KB | 32 KB

    With ``max_dedicated_pools = 5`` this is 6·2·2·4·5·3·3·3 = 19 440
    configurations — the "tens of thousands of highly customized DM
    allocators" scale of the paper.
    """
    if max_dedicated_pools < 0:
        raise ValueError("max_dedicated_pools must be non-negative")
    space = ParameterSpace()
    space.add_array(
        "num_dedicated_pools",
        list(range(max_dedicated_pools + 1)),
        "how many hot block sizes receive a dedicated pool",
    )
    space.add_array("dedicated_pool_kind", ["fixed", "slab"], "dedicated pool type")
    space.add_array(
        "dedicated_pool_placement",
        ["scratchpad", "main"],
        "memory level of the dedicated pools",
    )
    space.add_array("general_free_list", free_list_policy_names(), "general pool free-list order")
    space.add_array("general_fit", fit_policy_names(), "general pool fit policy")
    space.add_array("general_coalescing", coalescing_policy_names(), "general pool coalescing")
    space.add_array("general_splitting", splitting_policy_names(), "general pool splitting")
    space.add_array("chunk_size", [2048, 8192, 32768], "general pool growth chunk")
    return space


def compact_parameter_space(max_dedicated_pools: int = 5) -> ParameterSpace:
    """A reduced space (a few hundred points) for examples, tests and CI runs.

    Keeps one representative value per "policy family" so the qualitative
    trade-offs of the full space survive while exploration finishes in
    seconds.
    """
    dedicated_counts = sorted({0, 2, min(4, max_dedicated_pools), max_dedicated_pools})
    space = ParameterSpace()
    space.add_array("num_dedicated_pools", dedicated_counts)
    space.add_array("dedicated_pool_kind", ["fixed"])
    space.add_array("dedicated_pool_placement", ["scratchpad", "main"])
    space.add_array("general_free_list", ["lifo", "address_ordered"])
    space.add_array("general_fit", ["first_fit", "best_fit"])
    space.add_array("general_coalescing", ["never", "immediate"])
    space.add_array("general_splitting", ["never", "always"])
    space.add_array("chunk_size", [4096])
    return space


def smoke_parameter_space() -> ParameterSpace:
    """A tiny space (a dozen points) for unit tests and the quickstart example."""
    space = ParameterSpace()
    space.add_array("num_dedicated_pools", [0, 3])
    space.add_array("dedicated_pool_kind", ["fixed"])
    space.add_array("dedicated_pool_placement", ["scratchpad"])
    space.add_array("general_free_list", ["lifo", "address_ordered"])
    space.add_array("general_fit", ["first_fit"])
    space.add_array("general_coalescing", ["never", "immediate"])
    space.add_array("general_splitting", ["always"])
    space.add_array("chunk_size", [4096])
    return space


def easyport_parameter_space() -> ParameterSpace:
    """The space explored for the Easyport case study (paper §3, first study).

    Easyport's hot sizes are few and very dominant, so the interesting axis
    is how many of them get dedicated pools and where those pools live; the
    general-pool policies govern the remaining irregular allocations.
    """
    return default_parameter_space(max_dedicated_pools=5)


def vtc_parameter_space() -> ParameterSpace:
    """The space explored for the MPEG-4 VTC case study (paper §3, second study).

    VTC has essentially two hot sizes (tree nodes and bitstream segments), so
    the dedicated-pool axis is shorter, keeping the space comparable in
    spirit but smaller.
    """
    return default_parameter_space(max_dedicated_pools=2)


#: Named parameter-space factories selectable from the CLI and the docs.
#: One registry so ``dmexplore explore --space NAME``, the documentation and
#: the tests can never drift apart on which spaces exist.  The case-study
#: spaces are included so the paper's experiments are reachable by name.
STANDARD_SPACES = {
    "default": default_parameter_space,
    "compact": compact_parameter_space,
    "smoke": smoke_parameter_space,
    "easyport": easyport_parameter_space,
    "vtc": vtc_parameter_space,
}
