"""Persistent result store (L2) and result-artefact merging.

The in-memory memoisation cache of :class:`~repro.core.exploration.
ExplorationEngine` dies with the process; re-running an exploration over the
same workload re-profiles every configuration from scratch.  This module
makes repeated explorations incremental:

* :class:`ResultStore` is an on-disk, append-only JSON-lines store of
  evaluated points, keyed by ``(evaluation fingerprint, canonical parameter
  point, metric version)``.  The engine consults it on every in-memory cache
  miss — the memoisation cache is the L1 over this L2 — and writes every
  fresh evaluation back, so a second run over the same trace performs zero
  fresh profiler evaluations.
* :func:`merge_databases` unions the :class:`~repro.core.results.
  ResultDatabase` artefacts written by independent (typically sharded)
  exploration runs into one database, after validating that the artefacts
  came from the same evaluation context, and with the combined record order
  (and therefore the recomputed Pareto front) identical to a single-run
  exhaustive exploration.

Reading back at scale is a streaming concern: :class:`StoreRecordSource`
replays a store file as an ordered record stream — an offset index decides
which line wins per key, then records are parsed one at a time — so
``dmexplore report --store`` serves the full 19 440-point space without
ever materialising the record list.

Design notes
------------

The store is a flat JSON-lines file (one self-describing entry per line)
rather than SQLite: entries are append-only, the whole store is loaded into
a dict at open time anyway, a partially written trailing line (crash,
``kill -9``, full disk) is recoverable by simply skipping it, and the file
can be inspected/filtered with standard text tools.

Concurrent writers on one host are safe: every entry is appended as a
single ``write()`` on an ``O_APPEND`` descriptor (the kernel serialises the
positioning) under an advisory ``fcntl`` lock (which additionally rules out
interleaving on the rare short-write path), so parallel shards may share
one store file.  Two writers that race to profile the same point simply
append the same key twice — last write wins at load time, exactly like a
re-recorded entry.  Writers do not *see* each other's appends until they
reopen the file; they only ever duplicate work, never corrupt it.

:data:`METRIC_VERSION` is part of every key: bump it whenever the profiler
or the metric definitions change semantically, and every stale entry is
ignored (not deleted — rolling back the code revalidates them).
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Iterator
from pathlib import Path

from .parameters import ParameterSpace
from .results import ExplorationRecord, Provenance, ResultDatabase

try:  # pragma: no cover - fcntl exists on every POSIX platform we target
    import fcntl
except ImportError:  # pragma: no cover - e.g. Windows; O_APPEND still holds
    fcntl = None  # type: ignore[assignment]

#: Version of the metric semantics baked into store keys.  Bump when the
#: profiler, the energy/timing model wiring, or the metric definitions
#: change meaning, so persisted results from older code are never reused.
METRIC_VERSION = 1


class StoreError(RuntimeError):
    """Raised when a result store file cannot be used at all."""


class MergeError(ValueError):
    """Raised when result artefacts are incompatible and cannot be merged."""


def canonical_point_json(point: dict) -> str:
    """Canonical JSON form of a parameter point (sorted keys, no spaces).

    This is the point component of the on-disk store key; it matches
    :func:`repro.core.exploration.canonical_point_key` in what it considers
    equal (same name/value pairs, any insertion order).
    """
    return json.dumps(point, sort_keys=True, separators=(",", ":"))


def default_store_path() -> Path:
    """The ``--store``-without-a-path location: ``~/.cache/dmexplore``.

    Respects ``XDG_CACHE_HOME`` when set.  The file is shared by all runs on
    the machine; keys embed the evaluation fingerprint, so results from
    different traces, hierarchies or spaces never collide.
    """
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "dmexplore" / "results.jsonl"


class ResultStore:
    """Append-only on-disk store of evaluated parameter points.

    Parameters
    ----------
    path:
        The JSON-lines file to load from and append to.  Parent directories
        are created; a missing file starts an empty store.
    metric_version:
        Key component isolating results across metric-semantics changes;
        entries recorded under a different version are invisible (but kept
        on disk).

    Counters
    --------
    ``hits`` / ``misses``
        :meth:`get` outcomes since the store was opened.
    ``loaded``
        Usable entries read from disk at open time (all versions).
    ``corrupt_entries``
        Lines skipped at open time because they were truncated or
        malformed — the recovery path for a crashed writer.
    """

    def __init__(self, path: str | Path, metric_version: int = METRIC_VERSION) -> None:
        self.path = Path(path)
        self.metric_version = metric_version
        self.hits = 0
        self.misses = 0
        self.loaded = 0
        self.corrupt_entries = 0
        self._entries: dict[tuple[str, str, int], dict] = {}
        self._fd: int | None = None
        self._needs_leading_newline = False
        # How far into the file the entries have been read; refresh() picks
        # up appends from concurrent writers beyond this offset.
        self._read_offset = 0
        self._load()

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        if self.path.exists() and self.path.is_dir():
            raise StoreError(f"store path {self.path} is a directory")
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        self._read_offset = len(raw)
        # A writer that died mid-append leaves a trailing line without a
        # newline; if that line parses it is a complete entry, otherwise it
        # is skipped below like any other corrupt line.  Either way, the
        # next append must start on a fresh line.
        self._needs_leading_newline = bool(raw) and not raw.endswith(b"\n")
        for line in raw.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                continue
            entry = self._parse_entry(line)
            if entry is None:
                self.corrupt_entries += 1
                continue
            key, payload = entry
            # Last write wins: a re-recorded point supersedes older entries.
            self._entries[key] = payload
            self.loaded += 1

    def refresh(self) -> int:
        """Pick up entries appended by other processes since the last read.

        The store reads its file once at open time; concurrent writers
        (parallel shards, distributed workers) only ever *append*, so
        catching up means parsing the bytes past the last read offset.
        Returns the number of usable entries added or superseded.  A
        trailing chunk without a newline — a writer mid-append, or a torn
        write from a killed one — is left unconsumed: it is either still
        being written (complete on the next refresh) or permanently torn
        (the next writer starts a fresh line, turning it into a complete,
        corrupt, skipped line).

        Own appends are replayed harmlessly (same key, same payload); only
        genuinely new keys change what :meth:`get`/:meth:`contains` answer.
        """
        if not self.path.exists():
            return 0
        with open(self.path, "rb") as handle:
            handle.seek(self._read_offset)
            raw = handle.read()
        if not raw:
            return 0
        # Only newline-terminated lines are consumed; the offset never
        # advances past an unterminated tail.
        complete, newline, tail = raw.rpartition(b"\n")
        if not newline:
            return 0
        self._read_offset += len(complete) + 1
        # An unterminated tail is a torn write from a crashed writer (or a
        # writer mid-append): keep the next own append starting on a fresh
        # line so it cannot be swallowed by the torn bytes.
        self._needs_leading_newline = bool(tail)
        fresh = 0
        for line in complete.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                continue
            entry = self._parse_entry(line)
            if entry is None:
                self.corrupt_entries += 1
                continue
            key, payload = entry
            self._entries[key] = payload
            self.loaded += 1
            fresh += 1
        return fresh

    @staticmethod
    def _parse_entry(line: str) -> tuple[tuple[str, str, int], dict] | None:
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(data, dict):
            return None
        try:
            fingerprint = data["fingerprint"]
            point = data["point"]
            version = int(data["metric_version"])
            record = data["record"]
        except (KeyError, TypeError, ValueError):
            return None
        if not isinstance(fingerprint, str) or not isinstance(point, dict):
            return None
        try:
            # Validate the record payload eagerly so a corrupt entry surfaces
            # at load time (and is counted), not as a crash mid-exploration.
            ExplorationRecord.from_dict(record)
        except (KeyError, TypeError, ValueError):
            return None
        return (fingerprint, canonical_point_json(point), version), record

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str, point: dict) -> ExplorationRecord | None:
        """Look one point up; returns a fresh record object or ``None``.

        Every call constructs a new :class:`ExplorationRecord` from the
        stored payload, so callers may mutate the result (relabelling,
        database index assignment) without corrupting the store.
        """
        key = (fingerprint, canonical_point_json(point), self.metric_version)
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return ExplorationRecord.from_dict(payload)

    def contains(self, fingerprint: str, point: dict) -> bool:
        """True when the store holds ``point`` — without touching counters.

        For cheap "would this evaluation be free?" probes (dominance
        pruning) that must not distort the hit/miss statistics.
        """
        key = (fingerprint, canonical_point_json(point), self.metric_version)
        return key in self._entries

    def missing_points(
        self, fingerprint: str, points: Iterable[tuple[int, dict]]
    ) -> list[tuple[int, dict]]:
        """The subset of ``(index, point)`` pairs the store does not hold.

        The lease-aware coverage probe of the distributed service: a
        coordinator verifies a leased range really committed before marking
        it done, and a worker resuming an interrupted lease learns which
        points the dead worker's appends already cover — without touching
        the hit/miss counters (pair with :meth:`refresh` to see appends from
        other processes first).
        """
        return [
            (index, point)
            for index, point in points
            if (fingerprint, canonical_point_json(point), self.metric_version)
            not in self._entries
        ]

    def put(
        self,
        fingerprint: str,
        point: dict,
        record: ExplorationRecord,
        spec_hash: str = "",
    ) -> bool:
        """Persist one evaluated point; returns False when already present.

        The entry reaches the file as one atomic, immediately written
        append (see :meth:`_append`), so a crash never loses more than the
        line being written — which the next open recovers from by skipping
        it — and appends from concurrent processes never interleave.

        ``spec_hash`` (the canonical :class:`repro.api.ExperimentSpec`
        hash, when the evaluation was driven by an experiment) is recorded
        on the entry as provenance metadata; it is not part of the lookup
        key, so experiments that differ only in strategy or backend still
        share each other's evaluations.
        """
        key = (fingerprint, canonical_point_json(point), self.metric_version)
        if key in self._entries:
            return False
        payload = record.as_dict()
        self._entries[key] = payload
        entry = {
            "fingerprint": fingerprint,
            "point": point,
            "metric_version": self.metric_version,
            "record": payload,
        }
        if spec_hash:
            entry["spec_hash"] = spec_hash
        # Insertion order is preserved on purpose: the record payload keeps
        # the evaluator's parameter order, so a record read back in another
        # process serialises byte-identically to the one the evaluator held
        # (lookups never depend on this — keys go through
        # canonical_point_json, which sorts).
        line = json.dumps(entry, separators=(",", ":"))
        self._append((line + "\n").encode("utf-8"))
        return True

    def _append(self, data: bytes) -> None:
        """Append ``data`` (a complete entry line) concurrent-writer-safely.

        The descriptor is opened with ``O_APPEND``, so the kernel positions
        every ``write()`` at end-of-file atomically even when several
        processes share the store.  The whole entry goes out in a single
        ``os.write`` call, guarded by an advisory ``fcntl`` lock that (a)
        serialises the rare short-write retry path and (b) keeps the
        crashed-writer newline repair from splitting another writer's line.
        """
        fd = self._ensure_fd()
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            if self._needs_leading_newline:
                os.write(fd, b"\n")
                self._needs_leading_newline = False
            remaining = data
            while remaining:
                written = os.write(fd, remaining)
                remaining = remaining[written:]
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
        return self._fd

    def close(self) -> None:
        """Close the append descriptor (idempotent; the store stays queryable)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore(path={str(self.path)!r}, entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


# -- streaming a store back as records ---------------------------------------


class StoreRecordSource:
    """Re-iterable record stream over one evaluation context of a store file.

    Construction scans the file once and builds an *offset index*: for every
    entry whose fingerprint and metric version match, the byte offset of the
    winning (= last) line per parameter point — the same last-write-wins
    rule :class:`ResultStore` applies at load time, but keeping only an
    integer per point instead of the record payload.  Iteration then seeks
    to each winning line and parses records one at a time, so the stream
    serves arbitrarily many passes in O(1) record memory.

    With ``space`` given, points outside the space are filtered out, the
    stream is ordered by global enumeration index, and each yielded record
    carries that index — i.e. the stream is record-for-record identical to
    iterating the :class:`~repro.core.results.ResultDatabase` a single
    exhaustive run (or a shard merge) over the same space would produce.
    Without a space, entries stream in file (append) order.

    Corrupt lines are skipped and counted (``corrupt_entries``), entries of
    other fingerprints/versions under ``foreign_entries``, points outside
    the space under ``outside_space``.
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: str,
        space: ParameterSpace | None = None,
        metric_version: int = METRIC_VERSION,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.space = space
        self.metric_version = metric_version
        self.corrupt_entries = 0
        self.foreign_entries = 0
        self.outside_space = 0
        if self.path.exists() and self.path.is_dir():
            raise StoreError(f"store path {self.path} is a directory")
        # point-json -> (global index or file position, byte offset)
        index: dict[str, tuple[int, int]] = {}
        if self.path.exists():
            with open(self.path, "rb") as handle:
                position = 0
                offset = handle.tell()
                for raw in handle:
                    line_offset = offset
                    offset += len(raw)
                    line = raw.decode("utf-8", errors="replace").strip()
                    if not line:
                        continue
                    entry = ResultStore._parse_entry(line)
                    if entry is None:
                        self.corrupt_entries += 1
                        continue
                    (entry_fingerprint, point_json, version), _payload = entry
                    if entry_fingerprint != fingerprint or version != metric_version:
                        self.foreign_entries += 1
                        continue
                    if space is not None:
                        try:
                            order = space.index_of(json.loads(point_json))
                        except (KeyError, ValueError):
                            self.outside_space += 1
                            continue
                    else:
                        order = position
                    position += 1
                    # Last write wins, but (without a space) the stream
                    # keeps the position of the *first* occurrence so a
                    # re-recorded point does not move to the tail.
                    known = index.get(point_json)
                    if known is not None and space is None:
                        order = known[0]
                    index[point_json] = (order, line_offset)
        self._plan = sorted(index.values())

    def __len__(self) -> int:
        return len(self._plan)

    def __iter__(self) -> Iterator[ExplorationRecord]:
        if not self._plan:
            return
        with open(self.path, "rb") as handle:
            for order, offset in self._plan:
                handle.seek(offset)
                line = handle.readline().decode("utf-8", errors="replace")
                entry = ResultStore._parse_entry(line.strip())
                if entry is None:  # pragma: no cover - file changed under us
                    raise StoreError(
                        f"store entry at offset {offset} of {self.path} changed "
                        "after indexing"
                    )
                record = ExplorationRecord.from_dict(entry[1])
                if self.space is not None:
                    record.index = order
                yield record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoreRecordSource(path={str(self.path)!r}, entries={len(self._plan)}, "
            f"fingerprint={self.fingerprint[:12]}...)"
        )


# -- merging shard artefacts -------------------------------------------------


def merge_databases(
    databases: list[ResultDatabase], name: str | None = None
) -> ResultDatabase:
    """Union result artefacts from sharded runs into one database.

    Every input must carry :class:`~repro.core.results.Provenance` and all
    provenances must be mutually compatible (same evaluation fingerprint,
    parameter space, metric version and sampling settings); two artefacts
    recording the same parameter point are rejected as overlapping shards.
    Records are re-ordered by their global point index in the parameter
    space — the enumeration order of a single exhaustive run — so merging
    the shards of a partition reproduces the single-run database (and its
    Pareto front) exactly.  For a partition whose shards ran cold the
    merged artefact is byte-identical with the single run's JSON; shards
    answered from a warm result store produce the same records and Pareto
    front but smaller cache counters (they profiled less).

    Raises :class:`MergeError` on any incompatibility.
    """
    if not databases:
        raise MergeError("nothing to merge: no result databases given")
    reference = databases[0].provenance
    if reference is None:
        raise MergeError(
            f"artefact '{databases[0].name}' has no provenance; it was not "
            "produced by a shard-aware exploration run"
        )
    for database in databases[1:]:
        provenance = database.provenance
        if provenance is None:
            raise MergeError(
                f"artefact '{database.name}' has no provenance; it was not "
                "produced by a shard-aware exploration run"
            )
        if provenance.fingerprint != reference.fingerprint:
            raise MergeError(
                f"artefact '{database.name}' was produced from a different "
                f"workload/platform (fingerprint {provenance.fingerprint[:12]}… "
                f"!= {reference.fingerprint[:12]}…)"
            )
        if provenance.space != reference.space:
            raise MergeError(
                f"artefact '{database.name}' explored a different parameter space"
            )
        if not provenance.compatible_with(reference):
            raise MergeError(
                f"artefact '{database.name}' is incompatible with "
                f"'{databases[0].name}' (metric version, sampling settings "
                "or experiment spec differ)"
            )
    # Spec-hash agreement must hold across *all* inputs, not just pairwise
    # against the reference: an empty hash (pre-spec artefact or direct
    # engine run) is a wildcard, but two different non-empty hashes are two
    # different experiments even when a hashless reference sits between.
    spec_hashes = {
        database.provenance.spec_hash
        for database in databases
        if database.provenance is not None and database.provenance.spec_hash
    }
    if len(spec_hashes) > 1:
        raise MergeError(
            "artefacts were produced by different experiments "
            "(their spec hashes differ)"
        )
    merged_spec_hash = spec_hashes.pop() if spec_hashes else ""
    space = ParameterSpace.from_dict(reference.space)
    indexed: dict[int, tuple[ExplorationRecord, str]] = {}
    for database in databases:
        for record in database:
            index = space.index_of(record.parameters)
            if index in indexed:
                _, other = indexed[index]
                raise MergeError(
                    f"point {index} appears in both '{other}' and "
                    f"'{database.name}': shards overlap"
                )
            indexed[index] = (record, database.name)
    merged = ResultDatabase(name=name or databases[0].name)
    for index in sorted(indexed):
        merged.add(indexed[index][0])
    # Cache counters sum meaningfully: total profiled work across the
    # shards equals what a single cold run would have profiled, which keeps
    # a cold-partition merge byte-identical with the single-run artefact.
    # Store counters do NOT survive the merge: they describe how each shard
    # *executed* (its private store's hits/loads), not what it produced, and
    # e.g. summing `loaded` over shards sharing one store would triple-count.
    merged.cache_hits = sum(database.cache_hits for database in databases)
    merged.cache_misses = sum(database.cache_misses for database in databases)
    merged.provenance = Provenance(
        fingerprint=reference.fingerprint,
        space=reference.space,
        metric_version=reference.metric_version,
        sample=reference.sample,
        sample_seed=reference.sample_seed,
        shard="",
        spec_hash=merged_spec_hash,
    )
    return merged


def load_and_merge(paths: list[str | Path], name: str | None = None) -> ResultDatabase:
    """Load JSON artefacts from ``paths`` and :func:`merge_databases` them."""
    return merge_databases([ResultDatabase.from_json(path) for path in paths], name=name)
