"""Persistent result store (L2), store formats, compaction and merging.

The in-memory memoisation cache of :class:`~repro.core.exploration.
ExplorationEngine` dies with the process; re-running an exploration over the
same workload re-profiles every configuration from scratch.  This module
makes repeated explorations incremental:

* :class:`ResultStore` is an on-disk, append-only store of evaluated
  points, keyed by ``(evaluation fingerprint, canonical parameter point,
  metric version)``.  The engine consults it on every in-memory cache
  miss — the memoisation cache is the L1 over this L2 — and writes every
  fresh evaluation back, so a second run over the same trace performs zero
  fresh profiler evaluations.
* :class:`StoreFormat` is the seam between the store's key/value semantics
  and its on-disk representation.  Two formats ship: ``jsonl`` (one
  self-describing JSON entry per line, inspectable with text tools) and
  ``binary`` (fixed-width frame headers carrying a length, a CRC and a
  32-byte key digest in front of the same JSON payload, loadable without
  parsing a single payload).  Both serialise every entry payload
  identically, which is what keeps assembled exploration artefacts
  byte-identical across formats.
* :func:`compact_store` rewrites a store down to its live (last-write-wins)
  set with an atomic replace — provenance-preserving, and safe against
  concurrent appenders, which re-attach to the replacement file.
* :func:`merge_databases` unions the :class:`~repro.core.results.
  ResultDatabase` artefacts written by independent (typically sharded)
  exploration runs into one database, after validating that the artefacts
  came from the same evaluation context, and with the combined record order
  (and therefore the recomputed Pareto front) identical to a single-run
  exhaustive exploration.

Reading back at scale is a streaming concern: :class:`StoreRecordSource`
replays a store file of either format as an ordered record stream — an
offset index decides which entry wins per key, then records are parsed one
at a time — so ``dmexplore report --store`` serves the full 19 440-point
space without ever materialising the record list.

Design notes
------------

The ``jsonl`` format is a flat JSON-lines file (one self-describing entry
per line): entries are append-only, a partially written trailing line
(crash, ``kill -9``, full disk) is recoverable by simply skipping it, and
the file can be inspected/filtered with standard text tools.  Its load
cost is a JSON parse per entry.

The ``binary`` format trades inspectability for load speed: a 16-byte file
header, then one frame per entry — a fixed-width 42-byte frame header
(marker, payload length, payload CRC-32, SHA-256 key digest) followed by
the exact bytes the ``jsonl`` format would have written as the line.
Opening a binary store walks the fixed-width headers and checksums the
payloads without JSON-parsing any of them (the whole file is ``mmap``-ed
for the initial walk); payloads are parsed lazily on first :meth:`~
ResultStore.get` of their key.  Because JSON payloads are pure ASCII
(``json.dumps`` escapes everything else), the two marker bytes (values
``>= 0x80``) can never occur inside a payload, so a reader that lands in
torn bytes resynchronises by scanning to the next marker and letting the
CRC arbitrate.

Concurrent writers on one host are safe in both formats: every entry is
appended as a single ``write()`` on an ``O_APPEND`` descriptor (the kernel
serialises the positioning) under an advisory ``fcntl`` lock (which
additionally rules out interleaving on the rare short-write path), so
parallel shards may share one store file.  Two writers that race to
profile the same point simply append the same key twice — last write wins
at load time, exactly like a re-recorded entry.  Writers do not *see*
each other's appends until they :meth:`~ResultStore.refresh`; they only
ever duplicate work, never corrupt it.  Refresh is O(appended tail), not
O(history): the store tracks the byte offset it has consumed and parses
only what lies beyond it.

Compaction (:func:`compact_store`, ``dmexplore store compact``) removes
the superseded duplicates that last-write-wins accumulates.  It rewrites
under the same advisory append lock and atomically replaces the file;
every :class:`ResultStore` re-checks, after taking the lock, that its
descriptor still belongs to the file at its path, and re-attaches when
not, so appends never land in the unlinked pre-compaction inode.

:data:`METRIC_VERSION` is part of every key: bump it whenever the profiler
or the metric definitions change semantically, and every stale entry is
ignored (not deleted — rolling back the code revalidates them).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import zlib
from collections.abc import Callable, Iterable, Iterator
from pathlib import Path

from .parameters import ParameterSpace
from .results import ExplorationRecord, Provenance, ResultDatabase

try:  # pragma: no cover - fcntl exists on every POSIX platform we target
    import fcntl
except ImportError:  # pragma: no cover - e.g. Windows; O_APPEND still holds
    fcntl = None  # type: ignore[assignment]

#: Version of the metric semantics baked into store keys.  Bump when the
#: profiler, the energy/timing model wiring, or the metric definitions
#: change meaning, so persisted results from older code are never reused.
METRIC_VERSION = 1


class StoreError(RuntimeError):
    """Raised when a result store file cannot be used at all."""


class MergeError(ValueError):
    """Raised when result artefacts are incompatible and cannot be merged."""


def canonical_point_json(point: dict) -> str:
    """Canonical JSON form of a parameter point (sorted keys, no spaces).

    This is the point component of the on-disk store key; it matches
    :func:`repro.core.exploration.canonical_point_key` in what it considers
    equal (same name/value pairs, any insertion order).
    """
    return json.dumps(point, sort_keys=True, separators=(",", ":"))


def default_store_path(format: str = "jsonl") -> Path:
    """The ``--store``-without-a-path location: ``~/.cache/dmexplore``.

    Respects ``XDG_CACHE_HOME`` when set.  The file is shared by all runs on
    the machine; keys embed the evaluation fingerprint, so results from
    different traces, hierarchies or spaces never collide.  Each format has
    its own default file so a machine can keep both warm.
    """
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    filename = "results.bin" if format == "binary" else "results.jsonl"
    return base / "dmexplore" / filename


# -- entry payloads (shared by every format) ----------------------------------


def _entry_from_dict(data: object) -> tuple[tuple[str, str, int], dict] | None:
    """Validate one decoded store entry document.

    Returns ``((fingerprint, canonical point JSON, metric version), entry)``
    or ``None`` when the document is not a usable entry.  The record payload
    is validated eagerly so a corrupt entry surfaces where it is read (and
    is counted), not as a crash mid-exploration.
    """
    if not isinstance(data, dict):
        return None
    try:
        fingerprint = data["fingerprint"]
        point = data["point"]
        version = int(data["metric_version"])
        record = data["record"]
    except (KeyError, TypeError, ValueError):
        return None
    if not isinstance(fingerprint, str) or not isinstance(point, dict):
        return None
    try:
        ExplorationRecord.from_dict(record)
    except (KeyError, TypeError, ValueError):
        return None
    return (fingerprint, canonical_point_json(point), version), data


def _decode_entry(data: bytes | str) -> tuple[tuple[str, str, int], dict] | None:
    """Decode one serialised entry (a JSONL line == a binary frame payload)."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        try:
            text = bytes(data).decode("utf-8")
        except UnicodeDecodeError:
            return None
    else:
        text = data
    try:
        parsed = json.loads(text)
    except json.JSONDecodeError:
        return None
    return _entry_from_dict(parsed)


# -- the format seam ----------------------------------------------------------


class StoreFormat:
    """One on-disk representation of the result store.

    A format owns *framing* only: how serialised entries are laid out in
    the file, how appended bytes are consumed incrementally, and how the
    torn tail a crashed writer leaves behind is repaired.  The payload of
    every format is the same compact JSON entry document — that invariant
    is what keeps assembled artefacts byte-identical across formats, and
    what makes conversion between formats a pure re-framing.
    """

    #: Registry name of the format (``jsonl`` / ``binary``).
    name: str = ""
    #: File header written once at offset 0 (empty for headerless formats).
    header: bytes = b""
    #: Bytes an appender writes before its entry when the previous file
    #: tail was torn (the JSONL newline repair; empty when the format
    #: repairs by truncation instead).
    repair: bytes = b""

    def entry_key(self, fingerprint: str, point_json: str, version: int) -> object:
        """The in-memory dict key this format indexes entries under."""
        raise NotImplementedError

    def encode_entry(self, entry: dict) -> bytes:
        """Serialise one full entry document into its on-disk framing."""
        raise NotImplementedError

    def consume(
        self,
        buffer: bytes | mmap.mmap,
        start: int,
        final: bool,
        on_entry: Callable[[object, object], None],
    ) -> tuple[int, int, bool]:
        """Incrementally parse entries from ``buffer[start:]``.

        Calls ``on_entry(key, value)`` per usable entry — ``value`` is the
        record payload dict (jsonl) or a :class:`_FrameRef` to be parsed
        lazily (binary), with offsets local to ``buffer``.  ``final`` marks
        a full-file load, where an unterminated-but-parseable tail may be
        consumed; a non-final refresh never consumes past the last complete
        unit.  Returns ``(bytes consumed, corrupt units, tail pending)``.
        """
        raise NotImplementedError

    def scan(self, buffer: bytes) -> Iterator[tuple[int, int, dict | None]]:
        """Walk every framed unit of a complete store image.

        Yields ``(payload offset, payload length, entry document)`` with the
        document fully parsed and validated, or ``None`` for a corrupt unit.
        This is the compaction / conversion / streaming-report path; unlike
        :meth:`consume` it materialises each payload (one at a time).
        """
        raise NotImplementedError


class JsonlStoreFormat(StoreFormat):
    """One self-describing JSON entry per line; text-tool friendly."""

    name = "jsonl"
    header = b""
    repair = b"\n"

    def entry_key(self, fingerprint: str, point_json: str, version: int) -> object:
        return (fingerprint, point_json, version)

    def encode_entry(self, entry: dict) -> bytes:
        # Insertion order is preserved on purpose: the record payload keeps
        # the evaluator's parameter order, so a record read back in another
        # process serialises byte-identically to the one the evaluator held
        # (lookups never depend on this — keys go through
        # canonical_point_json, which sorts).
        return (json.dumps(entry, separators=(",", ":")) + "\n").encode("utf-8")

    def consume(self, buffer, start, final, on_entry):
        data = buffer[start:]
        if final:
            # A writer that died mid-append leaves a trailing line without a
            # newline; if that line parses it is a complete entry, otherwise
            # it is counted corrupt like any other bad line.  Either way the
            # next append must start on a fresh line.
            complete = data
            consumed = len(data)
            tail_pending = bool(data) and not data.endswith(b"\n")
        else:
            # Only newline-terminated lines are consumed; the offset never
            # advances past an unterminated tail, which is either still
            # being written (complete on the next refresh) or permanently
            # torn (the next writer starts a fresh line, turning it into a
            # complete, corrupt, skipped line).
            complete, newline, tail = data.rpartition(b"\n")
            if not newline:
                return 0, 0, bool(data)
            consumed = len(complete) + 1
            tail_pending = bool(tail)
        corrupt = 0
        for line in complete.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                continue
            decoded = _decode_entry(line)
            if decoded is None:
                corrupt += 1
                continue
            (fingerprint, point_json, version), entry = decoded
            on_entry((fingerprint, point_json, version), entry["record"])
        return consumed, corrupt, tail_pending

    def scan(self, buffer):
        offset = 0
        for raw in bytes(buffer).splitlines(keepends=True):
            line_offset = offset
            offset += len(raw)
            line = raw.rstrip(b"\r\n")
            if not line.strip():
                continue
            decoded = _decode_entry(line.decode("utf-8", errors="replace"))
            yield line_offset, len(line), decoded[1] if decoded else None


#: Magic prefix identifying a binary store file.
_BINARY_MAGIC = b"DMXSTOR1"
#: On-disk format revision, bumped on incompatible layout changes.
_BINARY_VERSION = 1
#: Frame boundary marker.  Both bytes are >= 0x80, which no ASCII JSON
#: payload byte can be, so scanning for the marker resynchronises a reader
#: that landed inside torn payload bytes.
_FRAME_MARKER = b"\xd5\xaa"
#: Fixed-width frame header: marker, payload length, payload CRC-32, and
#: the SHA-256 digest of the entry key — the mmap-walkable column that lets
#: a load index every fingerprint/point without parsing any payload.
_FRAME = struct.Struct("<2sII32s")
#: Upper bound on a single payload; a claimed length beyond this is treated
#: as a torn header rather than honoured as a read size.
_MAX_PAYLOAD = 1 << 24
#: Minimum file size for which the initial binary load maps the file
#: instead of reading it into one bytes object.
_MMAP_THRESHOLD = 1 << 16


def _key_digest(fingerprint: str, point_json: str, version: int) -> bytes:
    """The fixed-width store key a binary frame header carries."""
    material = f"{fingerprint}\x00{point_json}\x00{version}".encode("utf-8")
    return hashlib.sha256(material).digest()


class _FrameRef:
    """Location of an on-disk binary frame payload, parsed on first use."""

    __slots__ = ("offset", "length")

    def __init__(self, offset: int, length: int) -> None:
        self.offset = offset
        self.length = length


class BinaryStoreFormat(StoreFormat):
    """Fixed-width frame headers over JSON payloads; parse-free loads."""

    name = "binary"
    header = _BINARY_MAGIC + struct.pack("<II", _BINARY_VERSION, 0)
    repair = b""

    def entry_key(self, fingerprint: str, point_json: str, version: int) -> object:
        return _key_digest(fingerprint, point_json, version)

    def encode_entry(self, entry: dict) -> bytes:
        payload = json.dumps(entry, separators=(",", ":")).encode("utf-8")
        digest = _key_digest(
            entry["fingerprint"],
            canonical_point_json(entry["point"]),
            int(entry["metric_version"]),
        )
        head = _FRAME.pack(_FRAME_MARKER, len(payload), zlib.crc32(payload), digest)
        return head + payload

    def consume(self, buffer, start, final, on_entry):
        end = len(buffer)
        pos = start
        corrupt = 0
        while pos + _FRAME.size <= end:
            marker, length, crc, digest = _FRAME.unpack_from(buffer, pos)
            if marker != _FRAME_MARKER or length > _MAX_PAYLOAD:
                # Torn bytes: resynchronise at the next marker and let the
                # CRC arbitrate.  No marker ahead means the tail is either
                # all torn or still being written — leave it pending (an
                # appender repairs a permanent torn tail by truncation).
                resync = buffer.find(_FRAME_MARKER, pos + 1, end)
                if resync < 0:
                    break
                corrupt += 1
                pos = resync
                continue
            payload_end = pos + _FRAME.size + length
            if payload_end > end:
                break  # incomplete frame: wait for the writer to finish
            payload = bytes(buffer[pos + _FRAME.size : payload_end])
            if zlib.crc32(payload) != crc:
                corrupt += 1
                resync = buffer.find(_FRAME_MARKER, pos + 1, end)
                if resync < 0:
                    break
                pos = resync
                continue
            on_entry(bytes(digest), _FrameRef(pos + _FRAME.size, length))
            pos = payload_end
        return pos - start, corrupt, pos < end

    def scan(self, buffer):
        buffer = bytes(buffer)
        end = len(buffer)
        if end == 0:
            return
        if end < len(self.header) or buffer[: len(_BINARY_MAGIC)] != _BINARY_MAGIC:
            raise StoreError("not a binary result store (bad or missing magic)")
        pos = len(self.header)
        while pos + _FRAME.size <= end:
            marker, length, crc, _digest = _FRAME.unpack_from(buffer, pos)
            bad_header = marker != _FRAME_MARKER or length > _MAX_PAYLOAD
            payload_end = pos + _FRAME.size + length
            if not bad_header and payload_end > end:
                yield pos, 0, None  # torn tail frame
                return
            if bad_header or zlib.crc32(buffer[pos + _FRAME.size : payload_end]) != crc:
                yield pos, 0, None
                resync = buffer.find(_FRAME_MARKER, pos + 1, end)
                if resync < 0:
                    return
                pos = resync
                continue
            payload = buffer[pos + _FRAME.size : payload_end]
            decoded = _decode_entry(payload)
            yield pos + _FRAME.size, length, decoded[1] if decoded else None
            pos = payload_end


#: The format registry the ``repro.api`` store registry builds on.
STORE_FORMATS: dict[str, StoreFormat] = {
    "jsonl": JsonlStoreFormat(),
    "binary": BinaryStoreFormat(),
}


def _lookup_format(name: str) -> StoreFormat:
    try:
        return STORE_FORMATS[name]
    except KeyError:
        known = ", ".join(sorted(STORE_FORMATS))
        raise StoreError(f"unknown store format '{name}' (known: {known})") from None


def detect_format(path: str | Path) -> str | None:
    """Sniff the store format of ``path`` from its magic.

    Returns ``None`` for a missing or empty file (either format may be
    grown there), ``"binary"`` when the binary magic is present, and
    ``"jsonl"`` for any other non-empty file.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(_BINARY_MAGIC))
    except (FileNotFoundError, IsADirectoryError, NotADirectoryError):
        return None
    if not head:
        return None
    return "binary" if head == _BINARY_MAGIC else "jsonl"


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - best effort
        pass
    finally:
        os.close(fd)


class ResultStore:
    """Append-only on-disk store of evaluated parameter points.

    Parameters
    ----------
    path:
        The store file to load from and append to.  Parent directories
        are created; a missing file starts an empty store.
    metric_version:
        Key component isolating results across metric-semantics changes;
        entries recorded under a different version are invisible (but kept
        on disk).
    format:
        ``"jsonl"`` or ``"binary"``; ``None`` sniffs the existing file and
        falls back to ``jsonl`` for a fresh path.  Opening an existing
        store under the wrong format is an error, not a rewrite.
    auto_compact:
        When the file carries at least this many dead (superseded) entries
        at open time, it is compacted in place before use.

    Counters
    --------
    ``hits`` / ``misses``
        :meth:`get` outcomes since the store was opened.
    ``loaded``
        Usable entries read from disk (all versions; reset by compaction).
    ``corrupt_entries``
        Units skipped because they were truncated or malformed — the
        recovery path for a crashed writer.
    ``dead_entries``
        Loaded entries that superseded an already-loaded key (the waste
        compaction reclaims).
    ``bytes_consumed``
        Total bytes parsed from disk; :meth:`refresh` adds only the
        appended tail, never the history.
    """

    def __init__(
        self,
        path: str | Path,
        metric_version: int = METRIC_VERSION,
        format: str | None = None,
        auto_compact: int | None = None,
    ) -> None:
        self.path = Path(path)
        self.metric_version = metric_version
        if format is not None:
            _lookup_format(format)
        if auto_compact is not None and auto_compact < 1:
            raise StoreError("auto_compact must be a positive number of dead entries")
        self.auto_compact = auto_compact
        self.hits = 0
        self.misses = 0
        self.loaded = 0
        self.corrupt_entries = 0
        self.dead_entries = 0
        self.bytes_consumed = 0
        self._entries: dict[object, object] = {}
        self._fd: int | None = None
        self._read_fd: int | None = None
        self._needs_leading_newline = False
        # How far into the file the entries have been read; refresh() picks
        # up appends from concurrent writers beyond this offset.
        self._read_offset = 0
        # Inode the offsets describe; compaction replaces the file, and a
        # changed inode tells refresh() to re-consume from the top.
        self._ino: int | None = None
        # (clean end, observed size) of a torn binary tail awaiting
        # truncation by the next append (see _append).
        self._pending_repair: tuple[int, int] | None = None
        if self.path.exists() and self.path.is_dir():
            raise StoreError(f"store path {self.path} is a directory")
        detected = detect_format(self.path)
        if format is not None and detected is not None and detected != format:
            raise StoreError(
                f"store file {self.path} is {detected}-format, but format "
                f"'{format}' was requested (use `dmexplore store convert` "
                "to change formats)"
            )
        self.format = detected or format or "jsonl"
        self._format = _lookup_format(self.format)
        self._load()
        if self.auto_compact is not None and self.dead_entries >= self.auto_compact:
            self.compact()

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        self._consume_tail(final=True)

    def refresh(self) -> int:
        """Pick up entries appended by other processes since the last read.

        The store reads its file once at open time; concurrent writers
        (parallel shards, distributed workers) only ever *append*, so
        catching up means parsing the bytes past the last consumed offset —
        O(appended tail), never O(history).  Returns the number of usable
        entries added or superseded.  When the file was atomically replaced
        (compaction), the replacement is consumed from the top; superseded
        keys simply converge to the same live set.

        Own appends are replayed harmlessly (same key, same payload); only
        genuinely new keys change what :meth:`get`/:meth:`contains` answer.
        """
        if not self.path.exists():
            return 0
        return self._consume_tail(final=False)

    def _consume_tail(self, final: bool) -> int:
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            return 0
        if self._ino is not None and (
            stat.st_ino != self._ino or stat.st_size < self._read_offset
        ):
            # The file was atomically replaced (compaction) or truncated
            # (torn-tail repair): the offsets — including every lazily held
            # frame reference — describe the old inode.  Drop the index and
            # its load counters and consume the replacement from its top;
            # compaction preserves the live set, so nothing is lost.
            self._ino = None
            self._read_offset = 0
            self._needs_leading_newline = False
            self._pending_repair = None
            self._close_read_fd()
            self._entries.clear()
            self.loaded = 0
            self.dead_entries = 0
            self.corrupt_entries = 0
        if stat.st_size == 0:
            self._ino = stat.st_ino
            return 0
        fresh = 0
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:  # pragma: no cover - deleted under us
            return 0
        with handle:
            if self._ino is None:
                self._ino = os.fstat(handle.fileno()).st_ino
            if self._read_fd is None:
                # Keep a descriptor on the *indexed* inode so lazily parsed
                # binary payloads stay readable across a later replace.
                self._read_fd = os.dup(handle.fileno())
            header = self._format.header
            if header and self._read_offset < len(header):
                head = handle.read(len(header))
                if (
                    len(head) < len(header)
                    or head[: len(_BINARY_MAGIC)] != _BINARY_MAGIC
                ):
                    raise StoreError(
                        f"store file {self.path} has a malformed "
                        f"{self.format} header"
                    )
                version = struct.unpack_from("<I", head, len(_BINARY_MAGIC))[0]
                if version != _BINARY_VERSION:
                    raise StoreError(
                        f"store file {self.path} uses {self.format} format "
                        f"revision {version}; this build reads revision "
                        f"{_BINARY_VERSION}"
                    )
                self._read_offset = len(header)
            buffer, start, base = self._read_unconsumed(handle)
        if len(buffer) <= start:
            return 0
        delta = base - start

        def on_entry(key: object, value: object) -> None:
            nonlocal fresh
            if isinstance(value, _FrameRef):
                value.offset += delta
            if key in self._entries:
                self.dead_entries += 1
            self._entries[key] = value
            self.loaded += 1
            fresh += 1

        try:
            consumed, corrupt, tail_pending = self._format.consume(
                buffer, start, final, on_entry
            )
        finally:
            if isinstance(buffer, mmap.mmap):
                buffer.close()
        self.corrupt_entries += corrupt
        self.bytes_consumed += consumed
        self._read_offset += consumed
        if self._format.repair:
            self._needs_leading_newline = tail_pending
        elif tail_pending:
            self._pending_repair = (self._read_offset, base + (len(buffer) - start))
        else:
            self._pending_repair = None
        return fresh

    def _read_unconsumed(self, handle) -> tuple[bytes | mmap.mmap, int, int]:
        """The bytes past the consumed offset, as ``(buffer, start, base)``.

        ``buffer[start:]`` is the unconsumed tail and ``base`` its absolute
        file offset.  The initial load of a large binary store maps the
        whole file (``start == base``) so the fixed-width header walk runs
        over the page cache without a copy; every other path reads the
        tail into memory (``start == 0``).
        """
        size = os.fstat(handle.fileno()).st_size
        if (
            self._format.name == "binary"
            and self._read_offset <= len(self._format.header)
            and size >= _MMAP_THRESHOLD
        ):
            try:
                buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (OSError, ValueError):  # pragma: no cover - fall back
                pass
            else:
                return buffer, self._read_offset, self._read_offset
        handle.seek(self._read_offset)
        return handle.read(), 0, self._read_offset

    @staticmethod
    def _parse_entry(line: str) -> tuple[tuple[str, str, int], dict] | None:
        decoded = _decode_entry(line)
        if decoded is None:
            return None
        key, entry = decoded
        return key, entry["record"]

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, fingerprint: str, point: dict) -> object:
        return self._format.entry_key(
            fingerprint, canonical_point_json(point), self.metric_version
        )

    def get(self, fingerprint: str, point: dict) -> ExplorationRecord | None:
        """Look one point up; returns a fresh record object or ``None``.

        Every call constructs a new :class:`ExplorationRecord` from the
        stored payload, so callers may mutate the result (relabelling,
        database index assignment) without corrupting the store.  Binary
        frame payloads are parsed on the first get of their key and cached.
        """
        key = self._key(fingerprint, point)
        payload = self._entries.get(key)
        if isinstance(payload, _FrameRef):
            payload = self._materialise(key, payload)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return ExplorationRecord.from_dict(payload)

    def _materialise(self, key: object, ref: _FrameRef) -> dict | None:
        """Parse a lazily indexed binary frame payload (once; then cached)."""
        try:
            if self._read_fd is None:  # pragma: no cover - defensive
                self._read_fd = os.open(self.path, os.O_RDONLY)
            data = os.pread(self._read_fd, ref.length, ref.offset)
        except OSError:
            data = b""
        decoded = _decode_entry(data) if len(data) == ref.length else None
        if decoded is not None:
            (fingerprint, point_json, version), _entry = decoded
            if self._format.entry_key(fingerprint, point_json, version) != key:
                decoded = None
        if decoded is None:
            # The frame passed its CRC when indexed, so the payload itself
            # can only disagree if the writer recorded a frame its own key
            # does not describe.  Drop it and let the engine re-evaluate.
            self.corrupt_entries += 1
            self._entries.pop(key, None)
            return None
        payload = decoded[1]["record"]
        self._entries[key] = payload
        return payload

    def contains(self, fingerprint: str, point: dict) -> bool:
        """True when the store holds ``point`` — without touching counters.

        For cheap "would this evaluation be free?" probes (dominance
        pruning) that must not distort the hit/miss statistics.
        """
        return self._key(fingerprint, point) in self._entries

    def missing_points(
        self, fingerprint: str, points: Iterable[tuple[int, dict]]
    ) -> list[tuple[int, dict]]:
        """The subset of ``(index, point)`` pairs the store does not hold.

        The lease-aware coverage probe of the distributed service: a
        coordinator verifies a leased range really committed before marking
        it done, and a worker resuming an interrupted lease learns which
        points the dead worker's appends already cover — without touching
        the hit/miss counters (pair with :meth:`refresh` to see appends from
        other processes first).
        """
        return [
            (index, point)
            for index, point in points
            if self._key(fingerprint, point) not in self._entries
        ]

    def put(
        self,
        fingerprint: str,
        point: dict,
        record: ExplorationRecord,
        spec_hash: str = "",
    ) -> bool:
        """Persist one evaluated point; returns False when already present.

        The entry reaches the file as one atomic, immediately written
        append (see :meth:`_append`), so a crash never loses more than the
        unit being written — which the next open recovers from by skipping
        it — and appends from concurrent processes never interleave.

        ``spec_hash`` (the canonical :class:`repro.api.ExperimentSpec`
        hash, when the evaluation was driven by an experiment) is recorded
        on the entry as provenance metadata; it is not part of the lookup
        key, so experiments that differ only in strategy or backend still
        share each other's evaluations.
        """
        key = self._key(fingerprint, point)
        if key in self._entries:
            return False
        payload = record.as_dict()
        self._entries[key] = payload
        entry = {
            "fingerprint": fingerprint,
            "point": point,
            "metric_version": self.metric_version,
            "record": payload,
        }
        if spec_hash:
            entry["spec_hash"] = spec_hash
        self._append(self._format.encode_entry(entry))
        return True

    def _append(self, data: bytes) -> None:
        """Append ``data`` (one complete entry unit) concurrent-writer-safely.

        The descriptor is opened with ``O_APPEND``, so the kernel positions
        every ``write()`` at end-of-file atomically even when several
        processes share the store.  The whole entry goes out in a single
        ``os.write`` call, guarded by an advisory ``fcntl`` lock that (a)
        serialises the rare short-write retry path, (b) keeps crashed-writer
        tail repair from splitting another writer's unit, and (c) is the
        fence compaction uses to swap the file underneath us safely.
        """
        fd = self._lock_current_fd()
        try:
            if self._format.header and os.fstat(fd).st_size == 0:
                os.write(fd, self._format.header)
            if self._pending_repair is not None:
                clean_end, seen_size = self._pending_repair
                self._pending_repair = None
                # Every writer appends under this lock, so an unchanged
                # size proves the torn tail is a crashed writer's permanent
                # leftover, not a write in flight: cut it off.
                if os.fstat(fd).st_size == seen_size and seen_size > clean_end:
                    os.ftruncate(fd, clean_end)
                    if self._read_offset > clean_end:
                        self._read_offset = clean_end
            if self._needs_leading_newline:
                os.write(fd, self._format.repair)
                self._needs_leading_newline = False
            remaining = data
            while remaining:
                written = os.write(fd, remaining)
                remaining = remaining[written:]
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)

    def _lock_current_fd(self) -> int:
        """Acquire the append lock on a descriptor for the *current* file.

        Compaction replaces the store file atomically; a descriptor opened
        before the replace points at the unlinked old inode, and bytes
        written there would silently vanish.  Re-checking path-vs-descriptor
        identity after taking the lock — and reopening until they agree —
        guarantees every append lands in the live file.
        """
        fd = self._ensure_fd()
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return fd
        fcntl.flock(fd, fcntl.LOCK_EX)
        while True:
            try:
                if os.stat(self.path).st_ino == os.fstat(fd).st_ino:
                    return fd
            except FileNotFoundError:
                pass  # deleted outright: recreate a fresh file below
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
            self._fd = None
            # Stale tail knowledge belongs to the old inode.
            self._needs_leading_newline = False
            self._pending_repair = None
            fd = self._ensure_fd()
            fcntl.flock(fd, fcntl.LOCK_EX)

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
        return self._fd

    # -- maintenance -------------------------------------------------------

    def compact(self) -> dict:
        """Rewrite this store's file down to its live set, in place.

        Delegates to :func:`compact_store` (atomic replace under the append
        lock), then reloads, so ``loaded``/``corrupt_entries``/
        ``dead_entries`` describe the compacted image afterwards; ``hits``/
        ``misses`` keep accumulating.  Returns the compaction stats.
        """
        stats = compact_store(self.path, format=self.format)
        self._entries.clear()
        self.loaded = 0
        self.corrupt_entries = 0
        self.dead_entries = 0
        self._read_offset = 0
        self._ino = None
        self._needs_leading_newline = False
        self._pending_repair = None
        self._close_read_fd()
        self._load()
        return stats

    def close(self) -> None:
        """Close the descriptors (idempotent; the store stays queryable)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self._close_read_fd()

    def _close_read_fd(self) -> None:
        if self._read_fd is not None:
            os.close(self._read_fd)
            self._read_fd = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore(path={str(self.path)!r}, format={self.format!r}, "
            f"entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )


# -- maintenance over store files ---------------------------------------------


def _lock_path_exclusive(path: Path) -> int:
    """Open ``path`` for appending and take the store's exclusive lock.

    Loops until the locked descriptor provably belongs to the file
    currently at ``path`` — another compactor may have replaced the file
    while we waited on the old inode's lock.
    """
    while True:
        fd = os.open(path, os.O_WRONLY | os.O_APPEND)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return fd
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            if os.stat(path).st_ino == os.fstat(fd).st_ino:
                return fd
        except FileNotFoundError:
            pass
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


def compact_store(
    path: str | Path,
    format: str | None = None,
    output_format: str | None = None,
) -> dict:
    """Provenance-preserving rewrite of a store's live set, atomically.

    Reads every usable entry under the store's advisory append lock, keeps
    the winning (= last) entry per key in first-occurrence order — exactly
    the last-write-wins rule :class:`ResultStore` applies at load — and
    atomically replaces the file with the rewritten image.  Entries keep
    their full serialised form (record payload, ``spec_hash`` provenance,
    entries of foreign metric versions or fingerprints), so nothing any
    reader can observe changes except dead bytes disappearing.

    Safe against concurrent appenders: they block on the lock for the
    duration and re-attach to the replacement file afterwards (every
    :class:`ResultStore` re-checks descriptor-vs-path identity under the
    lock before writing).  Readers holding the old file open keep a
    consistent snapshot of the old inode.

    ``output_format`` rewrites into a different format in place — the
    compacting flavour of :func:`convert_store`.  Returns a stats dict
    (``entries``, ``live``, ``dead``, ``corrupt``, ``bytes_before``,
    ``bytes_after``, ``format``).
    """
    path = Path(path)
    if not path.exists() or path.is_dir():
        raise StoreError(f"no result store at {path}")
    source = _lookup_format(format or detect_format(path) or "jsonl")
    target = _lookup_format(output_format) if output_format else source
    fd = _lock_path_exclusive(path)
    try:
        raw = path.read_bytes()
        live: dict[tuple[str, str, int], dict] = {}
        entries = corrupt = 0
        for _offset, _length, entry in source.scan(raw):
            if entry is None:
                corrupt += 1
                continue
            entries += 1
            key = (
                entry["fingerprint"],
                canonical_point_json(entry["point"]),
                int(entry["metric_version"]),
            )
            # Last write wins; dict update keeps first-occurrence order, so
            # the compacted file streams in the same order as the original
            # (StoreRecordSource pins re-recorded points to their first
            # position for exactly this reason).
            live[key] = entry
        image = bytearray(target.header)
        for entry in live.values():
            image += target.encode_entry(entry)
        tmp = path.with_name(f"{path.name}.compact.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                handle.write(image)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        _fsync_directory(path.parent)
    finally:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)
    return {
        "path": str(path),
        "format": target.name,
        "entries": entries,
        "live": len(live),
        "dead": entries - len(live),
        "corrupt": corrupt,
        "bytes_before": len(raw),
        "bytes_after": len(image),
    }


def convert_store(
    source: str | Path, destination: str | Path, format: str
) -> dict:
    """Rewrite the store at ``source`` into ``format`` at ``destination``.

    Every usable entry is carried over in file order — superseded
    duplicates included — so a round trip (``jsonl`` → ``binary`` →
    ``jsonl``) reproduces the original file byte-for-byte; corrupt units
    are dropped and counted.  The snapshot is read under the store's shared
    lock, so it is consistent with concurrent appenders; the destination is
    written aside and atomically moved into place.  Returns a stats dict.
    """
    source = Path(source)
    destination = Path(destination)
    if not source.exists() or source.is_dir():
        raise StoreError(f"no result store at {source}")
    if source.resolve() == destination.resolve():
        raise StoreError(
            "convert_store cannot rewrite a store onto itself "
            "(use compact_store/`dmexplore store compact` with a format "
            "to re-encode in place)"
        )
    target = _lookup_format(format)
    source_format = _lookup_format(detect_format(source) or "jsonl")
    fd = os.open(source, os.O_RDONLY)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_SH)
        raw = source.read_bytes()
    finally:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)
    entries = corrupt = 0
    image = bytearray(target.header)
    for _offset, _length, entry in source_format.scan(raw):
        if entry is None:
            corrupt += 1
            continue
        entries += 1
        image += target.encode_entry(entry)
    destination.parent.mkdir(parents=True, exist_ok=True)
    tmp = destination.with_name(f"{destination.name}.convert.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(image)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, destination)
    finally:
        tmp.unlink(missing_ok=True)
    return {
        "source": str(source),
        "path": str(destination),
        "source_format": source_format.name,
        "format": target.name,
        "entries": entries,
        "corrupt": corrupt,
        "bytes_before": len(raw),
        "bytes_after": len(image),
    }


def store_info(path: str | Path) -> dict:
    """Summarise a store file: format, size and entry/live/dead/corrupt counts.

    Walks the file one unit at a time (payloads are parsed transiently for
    validation, never retained), so it is safe on stores far larger than
    memory would like to hold as records.
    """
    path = Path(path)
    if not path.exists() or path.is_dir():
        raise StoreError(f"no result store at {path}")
    name = detect_format(path) or "jsonl"
    fmt = _lookup_format(name)
    raw = path.read_bytes()
    seen: set[tuple[str, str, int]] = set()
    entries = corrupt = 0
    for _offset, _length, entry in fmt.scan(raw):
        if entry is None:
            corrupt += 1
            continue
        entries += 1
        seen.add(
            (
                entry["fingerprint"],
                canonical_point_json(entry["point"]),
                int(entry["metric_version"]),
            )
        )
    return {
        "path": str(path),
        "format": name,
        "size_bytes": len(raw),
        "entries": entries,
        "live": len(seen),
        "dead": entries - len(seen),
        "corrupt": corrupt,
    }


# -- streaming a store back as records ---------------------------------------


class StoreRecordSource:
    """Re-iterable record stream over one evaluation context of a store file.

    Construction scans the file once and builds an *offset index*: for every
    entry whose fingerprint and metric version match, the byte offset of the
    winning (= last) unit per parameter point — the same last-write-wins
    rule :class:`ResultStore` applies at load time, but keeping only a pair
    of integers per point instead of the record payload.  Iteration then
    seeks to each winning unit and parses records one at a time, so the
    stream serves arbitrarily many passes in O(1) record memory.  Both
    store formats stream identically (the payload bytes are the same).

    With ``space`` given, points outside the space are filtered out, the
    stream is ordered by global enumeration index, and each yielded record
    carries that index — i.e. the stream is record-for-record identical to
    iterating the :class:`~repro.core.results.ResultDatabase` a single
    exhaustive run (or a shard merge) over the same space would produce.
    Without a space, entries stream in file (append) order.

    Corrupt units are skipped and counted (``corrupt_entries``), entries of
    other fingerprints/versions under ``foreign_entries``, points outside
    the space under ``outside_space``.
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: str,
        space: ParameterSpace | None = None,
        metric_version: int = METRIC_VERSION,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.space = space
        self.metric_version = metric_version
        self.corrupt_entries = 0
        self.foreign_entries = 0
        self.outside_space = 0
        if self.path.exists() and self.path.is_dir():
            raise StoreError(f"store path {self.path} is a directory")
        self.format = detect_format(self.path) or "jsonl"
        store_format = _lookup_format(self.format)
        # point-json -> (global index or file position, offset, length)
        index: dict[str, tuple[int, int, int]] = {}
        if self.path.exists():
            raw = self.path.read_bytes()
            position = 0
            for offset, length, entry in store_format.scan(raw):
                if entry is None:
                    self.corrupt_entries += 1
                    continue
                point_json = canonical_point_json(entry["point"])
                if (
                    entry["fingerprint"] != fingerprint
                    or int(entry["metric_version"]) != metric_version
                ):
                    self.foreign_entries += 1
                    continue
                if space is not None:
                    try:
                        order = space.index_of(json.loads(point_json))
                    except (KeyError, ValueError):
                        self.outside_space += 1
                        continue
                else:
                    order = position
                position += 1
                # Last write wins, but (without a space) the stream
                # keeps the position of the *first* occurrence so a
                # re-recorded point does not move to the tail.
                known = index.get(point_json)
                if known is not None and space is None:
                    order = known[0]
                index[point_json] = (order, offset, length)
        self._plan = sorted(index.values())

    def __len__(self) -> int:
        return len(self._plan)

    def __iter__(self) -> Iterator[ExplorationRecord]:
        if not self._plan:
            return
        with open(self.path, "rb") as handle:
            for order, offset, length in self._plan:
                handle.seek(offset)
                data = handle.read(length)
                decoded = _decode_entry(data)
                if decoded is None:  # pragma: no cover - file changed under us
                    raise StoreError(
                        f"store entry at offset {offset} of {self.path} changed "
                        "after indexing"
                    )
                record = ExplorationRecord.from_dict(decoded[1]["record"])
                if self.space is not None:
                    record.index = order
                yield record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoreRecordSource(path={str(self.path)!r}, entries={len(self._plan)}, "
            f"fingerprint={self.fingerprint[:12]}...)"
        )


# -- merging shard artefacts -------------------------------------------------


def merge_databases(
    databases: list[ResultDatabase], name: str | None = None
) -> ResultDatabase:
    """Union result artefacts from sharded runs into one database.

    Every input must carry :class:`~repro.core.results.Provenance` and all
    provenances must be mutually compatible (same evaluation fingerprint,
    parameter space, metric version and sampling settings); two artefacts
    recording the same parameter point are rejected as overlapping shards.
    Records are re-ordered by their global point index in the parameter
    space — the enumeration order of a single exhaustive run — so merging
    the shards of a partition reproduces the single-run database (and its
    Pareto front) exactly.  For a partition whose shards ran cold the
    merged artefact is byte-identical with the single run's JSON; shards
    answered from a warm result store produce the same records and Pareto
    front but smaller cache counters (they profiled less).

    Raises :class:`MergeError` on any incompatibility.
    """
    if not databases:
        raise MergeError("nothing to merge: no result databases given")
    reference = databases[0].provenance
    if reference is None:
        raise MergeError(
            f"artefact '{databases[0].name}' has no provenance; it was not "
            "produced by a shard-aware exploration run"
        )
    for database in databases[1:]:
        provenance = database.provenance
        if provenance is None:
            raise MergeError(
                f"artefact '{database.name}' has no provenance; it was not "
                "produced by a shard-aware exploration run"
            )
        if provenance.fingerprint != reference.fingerprint:
            raise MergeError(
                f"artefact '{database.name}' was produced from a different "
                f"workload/platform (fingerprint {provenance.fingerprint[:12]}… "
                f"!= {reference.fingerprint[:12]}…)"
            )
        if provenance.space != reference.space:
            raise MergeError(
                f"artefact '{database.name}' explored a different parameter space"
            )
        if not provenance.compatible_with(reference):
            raise MergeError(
                f"artefact '{database.name}' is incompatible with "
                f"'{databases[0].name}' (metric version, sampling settings "
                "or experiment spec differ)"
            )
    # Spec-hash agreement must hold across *all* inputs, not just pairwise
    # against the reference: an empty hash (pre-spec artefact or direct
    # engine run) is a wildcard, but two different non-empty hashes are two
    # different experiments even when a hashless reference sits between.
    spec_hashes = {
        database.provenance.spec_hash
        for database in databases
        if database.provenance is not None and database.provenance.spec_hash
    }
    if len(spec_hashes) > 1:
        raise MergeError(
            "artefacts were produced by different experiments "
            "(their spec hashes differ)"
        )
    merged_spec_hash = spec_hashes.pop() if spec_hashes else ""
    space = ParameterSpace.from_dict(reference.space)
    indexed: dict[int, tuple[ExplorationRecord, str]] = {}
    for database in databases:
        for record in database:
            index = space.index_of(record.parameters)
            if index in indexed:
                _, other = indexed[index]
                raise MergeError(
                    f"point {index} appears in both '{other}' and "
                    f"'{database.name}': shards overlap"
                )
            indexed[index] = (record, database.name)
    merged = ResultDatabase(name=name or databases[0].name)
    for index in sorted(indexed):
        merged.add(indexed[index][0])
    # Cache counters sum meaningfully: total profiled work across the
    # shards equals what a single cold run would have profiled, which keeps
    # a cold-partition merge byte-identical with the single-run artefact.
    # Store counters do NOT survive the merge: they describe how each shard
    # *executed* (its private store's hits/loads), not what it produced, and
    # e.g. summing `loaded` over shards sharing one store would triple-count.
    merged.cache_hits = sum(database.cache_hits for database in databases)
    merged.cache_misses = sum(database.cache_misses for database in databases)
    merged.provenance = Provenance(
        fingerprint=reference.fingerprint,
        space=reference.space,
        metric_version=reference.metric_version,
        sample=reference.sample,
        sample_seed=reference.sample_seed,
        shard="",
        spec_hash=merged_spec_hash,
    )
    return merged


def load_and_merge(paths: list[str | Path], name: str | None = None) -> ResultDatabase:
    """Load JSON artefacts from ``paths`` and :func:`merge_databases` them."""
    return merge_databases([ResultDatabase.from_json(path) for path in paths], name=name)
