"""Surrogate-guided search portfolio (extension).

Three modern strategies on top of the :class:`~repro.core.search.
SearchStrategy` machinery, aimed at reaching the Pareto front with a small
fraction of the evaluations an exhaustive sweep spends:

* :class:`NSGA2Search`     — NSGA-II: fast non-dominated sorting with
                             crowding-distance selection.
* :class:`TPESearch`       — tree-structured Parzen estimator: sample from
                             the good-vs-rest parameter density ratio.
* :class:`SurrogateSearch` — random-forest surrogate: model-rank a large
                             candidate pool, replay only the elite.

All three are registered in :mod:`repro.api.registry` (as ``nsga2``,
``tpe`` and ``surrogate``), so they are reachable from experiment specs,
``dmexplore explore --strategy`` and the exploration service without
further wiring, and they share the base-class determinism contract:
fixed-seed runs are byte-identical across evaluation backends.

This package must not import :mod:`repro.api` (the registry imports us).
"""

from .forest import RandomForest, RegressionTree
from .nsga2 import NSGA2Search, crowding_distance, fast_non_dominated_sort
from .surrogate import SurrogateSearch
from .tpe import TPESearch

__all__ = [
    "NSGA2Search",
    "RandomForest",
    "RegressionTree",
    "SurrogateSearch",
    "TPESearch",
    "crowding_distance",
    "fast_non_dominated_sort",
]
