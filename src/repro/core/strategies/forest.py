"""A small random-forest regressor for surrogate modelling.

Pure-Python CART training (variance-reduction splits, bootstrap bagging,
per-node feature subsampling) sized for surrogate duty: a few hundred
training rows of encoded parameter indices, a dozen trees.  No external
dependency is required; when numpy is importable, *batch prediction*
routes whole candidate matrices through each tree by recursive index
partitioning.  The numpy path performs exactly the comparisons the scalar
walk performs (same features, same thresholds, ``<=`` on the same
values), so predictions — and therefore every search trajectory built on
them — are identical with and without numpy, mirroring the convention of
:mod:`repro.profiling.batch`.

Randomness is injected: ``fit`` takes the caller's ``random.Random``, so a
:class:`~repro.core.search.SearchStrategy` trains forests from its private
seeded stream and stays deterministic and backend-independent.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

try:  # pragma: no cover - exercised implicitly on hosts with numpy
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image has no numpy
    _np = None

#: Fraction of features examined per split node (sqrt-like subsampling for
#: the small feature counts of allocator spaces).
DEFAULT_FEATURE_FRACTION = 0.7


class RegressionTree:
    """One CART regression tree over rows of numeric feature vectors.

    Nodes are stored in parallel flat lists (feature, threshold, children,
    leaf value); internal nodes route ``row[feature] <= threshold`` to the
    left child.  Splits greedily maximise weighted variance reduction over
    midpoint thresholds of the sampled feature subset.
    """

    def __init__(self, max_depth: int = 6, min_samples: int = 2) -> None:
        if max_depth <= 0 or min_samples < 2:
            raise ValueError("max_depth must be > 0 and min_samples >= 2")
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list[float] = []

    def _leaf(self, targets: list[float]) -> int:
        node = len(self.feature)
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(sum(targets) / len(targets))
        return node

    def _best_split(
        self,
        rows: list[Sequence[float]],
        targets: list[float],
        features: list[int],
    ) -> tuple[int, float] | None:
        """Best (feature, threshold) by variance reduction, or ``None``.

        One sorted sweep per feature with running left/right sums turns the
        per-threshold cost into O(1): for a split of sizes (p, n-p) the
        summed squared error is ``sumsq - sum_l²/p - sum_r²/(n-p)``, so
        maximising ``sum_l²/p + sum_r²/(n-p)`` maximises the reduction.
        """
        count = len(rows)
        total = sum(targets)
        baseline = total * total / count
        best: tuple[float, int, float] | None = None
        for feature in features:
            order = sorted(range(count), key=lambda i: (rows[i][feature], i))
            values = [rows[i][feature] for i in order]
            if values[0] == values[-1]:
                continue
            left_sum = 0.0
            for position in range(1, count):
                left_sum += targets[order[position - 1]]
                if values[position] == values[position - 1]:
                    continue
                right_sum = total - left_sum
                gain = (
                    left_sum * left_sum / position
                    + right_sum * right_sum / (count - position)
                    - baseline
                )
                # Strict improvement keeps the choice stable under
                # permutation of equal-gain features (features iterate in
                # the caller's sampled order, which is itself seeded).
                if gain > 1e-9 and (best is None or gain > best[0]):
                    threshold = (values[position] + values[position - 1]) / 2
                    best = (gain, feature, threshold)
        if best is None:
            return None
        return best[1], best[2]

    def _grow(
        self,
        rows: list[Sequence[float]],
        targets: list[float],
        depth: int,
        rng: random.Random,
        feature_count: int,
    ) -> int:
        if (
            depth >= self.max_depth
            or len(rows) < self.min_samples
            or min(targets) == max(targets)
        ):
            return self._leaf(targets)
        total_features = len(rows[0])
        sampled = rng.sample(range(total_features), feature_count)
        split = self._best_split(rows, targets, sampled)
        if split is None:
            return self._leaf(targets)
        feature, threshold = split
        left_rows, left_targets, right_rows, right_targets = [], [], [], []
        for row, target in zip(rows, targets):
            if row[feature] <= threshold:
                left_rows.append(row)
                left_targets.append(target)
            else:
                right_rows.append(row)
                right_targets.append(target)
        node = len(self.feature)
        self.feature.append(feature)
        self.threshold.append(threshold)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        self.left[node] = self._grow(left_rows, left_targets, depth + 1, rng, feature_count)
        self.right[node] = self._grow(right_rows, right_targets, depth + 1, rng, feature_count)
        return node

    def fit(
        self,
        rows: list[Sequence[float]],
        targets: list[float],
        rng: random.Random,
        feature_fraction: float = DEFAULT_FEATURE_FRACTION,
    ) -> "RegressionTree":
        if not rows:
            raise ValueError("cannot fit a tree on zero rows")
        total_features = len(rows[0])
        feature_count = max(1, round(feature_fraction * total_features))
        root = self._grow(list(rows), list(targets), 0, rng, feature_count)
        assert root == 0
        return self

    def predict_row(self, row: Sequence[float]) -> float:
        node = 0
        while self.feature[node] >= 0:
            if row[self.feature[node]] <= self.threshold[node]:
                node = self.left[node]
            else:
                node = self.right[node]
        return self.value[node]

    def predict_batch(self, rows: list[Sequence[float]]) -> list[float]:
        """Predict every row; numpy partitions the batch when available.

        The numpy path recursively splits an index array with the same
        ``row[feature] <= threshold`` comparison the scalar walk uses, so
        both paths return identical floats for identical inputs.
        """
        if _np is None or not rows:
            return [self.predict_row(row) for row in rows]
        matrix = _np.asarray(rows, dtype=float)
        out = _np.empty(len(rows), dtype=float)

        def descend(node: int, indices) -> None:
            if self.feature[node] < 0:
                out[indices] = self.value[node]
                return
            mask = matrix[indices, self.feature[node]] <= self.threshold[node]
            descend(self.left[node], indices[mask])
            descend(self.right[node], indices[~mask])

        descend(0, _np.arange(len(rows)))
        return out.tolist()


class RandomForest:
    """Bootstrap-bagged ensemble of :class:`RegressionTree`.

    Prediction is the tree mean.  Training order is fixed (tree by tree,
    each drawing its bootstrap sample then growing from the shared seeded
    ``rng``), so a forest built from a given RNG state is reproducible.
    """

    def __init__(
        self,
        trees: int = 12,
        max_depth: int = 6,
        min_samples: int = 2,
        feature_fraction: float = DEFAULT_FEATURE_FRACTION,
    ) -> None:
        if trees <= 0:
            raise ValueError("trees must be positive")
        self.tree_count = trees
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.feature_fraction = feature_fraction
        self.trees: list[RegressionTree] = []

    def fit(
        self,
        rows: list[Sequence[float]],
        targets: list[float],
        rng: random.Random,
    ) -> "RandomForest":
        if not rows:
            raise ValueError("cannot fit a forest on zero rows")
        if len(rows) != len(targets):
            raise ValueError("rows and targets must have equal length")
        self.trees = []
        count = len(rows)
        for _ in range(self.tree_count):
            picks = [rng.randrange(count) for _ in range(count)]
            tree = RegressionTree(self.max_depth, self.min_samples)
            tree.fit(
                [rows[i] for i in picks],
                [targets[i] for i in picks],
                rng,
                self.feature_fraction,
            )
            self.trees.append(tree)
        return self

    def predict_row(self, row: Sequence[float]) -> float:
        return sum(tree.predict_row(row) for tree in self.trees) / len(self.trees)

    def predict_batch(self, rows: list[Sequence[float]]) -> list[float]:
        if not rows:
            return []
        totals = [0.0] * len(rows)
        for tree in self.trees:
            for index, value in enumerate(tree.predict_batch(rows)):
                totals[index] += value
        return [total / len(self.trees) for total in totals]
