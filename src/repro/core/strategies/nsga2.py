"""NSGA-II: fast non-dominated sorting with crowding-distance selection.

The reference algorithm for multi-objective evolutionary search (Deb et
al., 2002), and the workhorse of allocator design-space exploration in the
parallel-EA DMM literature.  Three ingredients distinguish it from the
plain :class:`~repro.core.search.EvolutionarySearch`:

* :func:`fast_non_dominated_sort` layers the population into fronts with
  one O(N²) domination-count pass (instead of recomputing the batch front
  per layer),
* :func:`crowding_distance` orders members *within* a front by how isolated
  they are, so selection pressure spreads the population along the whole
  front instead of clumping around one region, and
* binary-tournament mating selection on the (rank, crowding) partial order.

Every generation is evaluated as one
:meth:`~repro.core.exploration.ExplorationEngine.evaluate_points` batch, so
the :class:`~repro.profiling.batch.BatchReplayEngine` scores the whole
generation off shared pool-group simulations and a process-pool backend
profiles it concurrently.  All random draws come from the strategy's
private RNG *between* batches, which keeps a fixed-seed run byte-identical
whatever backend evaluates it.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exploration import ExplorationEngine
from ..results import ExplorationRecord, ResultDatabase
from ..search import DEFAULT_PRUNE_FRACTION, SearchBudget, SearchStrategy

#: Crowding distance assigned to the boundary members of every front: they
#: are the extremes of the front and must always win crowding comparisons.
BOUNDARY_CROWDING = float("inf")


def fast_non_dominated_sort(vectors: Sequence[Sequence[float]]) -> list[list[int]]:
    """Layer ``vectors`` into Pareto fronts (front 0 = non-dominated).

    The NSGA-II book-keeping pass: one O(N²) sweep counts, for every
    vector, how many vectors dominate it and which vectors it dominates;
    peeling the zero-count layer repeatedly yields the fronts.  Layer
    membership matches :func:`repro.core.pareto.pareto_rank`
    (property-tested); only the cost differs.  Indices within a front stay
    in input order, so the layering is deterministic.
    """
    count = len(vectors)
    dominated_by: list[list[int]] = [[] for _ in range(count)]
    domination_count = [0] * count
    for i in range(count):
        first = vectors[i]
        for j in range(i + 1, count):
            second = vectors[j]
            better = worse = False
            for a, b in zip(first, second):
                if a < b:
                    better = True
                elif a > b:
                    worse = True
            if better and not worse:
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif worse and not better:
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: list[list[int]] = []
    current = [index for index in range(count) if domination_count[index] == 0]
    while current:
        fronts.append(current)
        upcoming: list[int] = []
        for index in current:
            for other in dominated_by[index]:
                domination_count[other] -= 1
                if domination_count[other] == 0:
                    upcoming.append(other)
        # Restore input order within the next layer (members may be
        # released out of order by the peeling loop above).
        current = sorted(upcoming)
    return fronts


def crowding_distance(
    vectors: Sequence[Sequence[float]],
    front: Sequence[int],
) -> dict[int, float]:
    """Crowding distance of every member of one front.

    Per objective, the front is sorted by value; the two boundary members
    get infinite distance, interior members accumulate the normalised gap
    between their neighbours.  An objective with zero span contributes
    nothing (every member ties).  Exact value ties are ordered by index, so
    the assignment is deterministic.
    """
    distances = {index: 0.0 for index in front}
    if len(front) <= 2:
        return {index: BOUNDARY_CROWDING for index in front}
    dimensions = len(vectors[front[0]])
    for objective in range(dimensions):
        ordered = sorted(front, key=lambda index: (vectors[index][objective], index))
        low = vectors[ordered[0]][objective]
        high = vectors[ordered[-1]][objective]
        span = high - low
        distances[ordered[0]] = BOUNDARY_CROWDING
        distances[ordered[-1]] = BOUNDARY_CROWDING
        if span == 0:
            continue
        for position in range(1, len(ordered) - 1):
            index = ordered[position]
            if distances[index] == BOUNDARY_CROWDING:
                continue
            gap = (
                vectors[ordered[position + 1]][objective]
                - vectors[ordered[position - 1]][objective]
            )
            distances[index] += gap / span
    return distances


class NSGA2Search(SearchStrategy):
    """NSGA-II: non-dominated sorting + crowding-distance selection."""

    name = "nsga2"

    def __init__(
        self,
        engine: ExplorationEngine,
        budget: SearchBudget | None = None,
        metrics: list[str] | None = None,
        population: int = 16,
        offspring: int = 16,
        mutation_rate: float = 0.3,
        prune: bool = False,
        prune_fraction: float = DEFAULT_PRUNE_FRACTION,
    ) -> None:
        super().__init__(engine, budget, metrics, prune, prune_fraction)
        if population <= 1 or offspring <= 0:
            raise ValueError("population must be > 1 and offspring > 0")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        self.population_size = population
        self.offspring_size = offspring
        self.mutation_rate = mutation_rate

    # -- selection machinery ------------------------------------------------

    def _order(
        self, members: list[tuple[dict, ExplorationRecord]]
    ) -> list[tuple[dict, ExplorationRecord, int, float]]:
        """Members annotated with (rank, crowding), best first.

        Constrained domination: feasible members are layered by
        :func:`fast_non_dominated_sort` over the chosen metrics; infeasible
        members (OOM on the trace — their metric vectors are artificially
        low) always rank behind every feasible layer, ordered by how badly
        they failed.
        """
        feasible = [m for m in members if m[1].feasible]
        infeasible = [m for m in members if not m[1].feasible]
        annotated: list[tuple[dict, ExplorationRecord, int, float]] = []
        rank_count = 0
        if feasible:
            vectors = [record.metric_vector(self.metrics) for _, record in feasible]
            fronts = fast_non_dominated_sort(vectors)
            rank_count = len(fronts)
            for rank, front in enumerate(fronts):
                distances = crowding_distance(vectors, front)
                ordered = sorted(
                    front, key=lambda index: (-distances[index], index)
                )
                for index in ordered:
                    point, record = feasible[index]
                    annotated.append((point, record, rank, distances[index]))
        for position, (point, record) in enumerate(
            sorted(
                infeasible,
                key=lambda m: (m[1].oom_failures, m[1].metric_vector(self.metrics)),
            )
        ):
            annotated.append((point, record, rank_count + position, 0.0))
        return annotated

    def _tournament(
        self, ordered: list[tuple[dict, ExplorationRecord, int, float]]
    ) -> dict:
        """Binary tournament on the (rank, crowding) partial order."""
        first, second = self.rng.sample(range(len(ordered)), 2)
        a, b = ordered[first], ordered[second]
        if a[2] != b[2]:
            winner = a if a[2] < b[2] else b
        elif a[3] != b[3]:
            winner = a if a[3] > b[3] else b
        else:
            winner = a
        return winner[0]

    # -- the search ---------------------------------------------------------

    def _search(self, database: ResultDatabase) -> None:
        population: list[tuple[dict, ExplorationRecord]] = []
        known: set[int] = set()
        stalled = 0
        # Seed the population with random points, like the plain EA — retry
        # (bounded by the stall counter) while pruning rejects candidates.
        while (
            len(population) < self.population_size
            and self.budget_left
            and stalled < self.max_stalled_generations
        ):
            used_before = self.evaluations_used
            seeds = [
                self._random_point()
                for _ in range(self.population_size - len(population))
            ]
            seeds = self._prune_candidates(seeds)
            seeds = self._within_budget(seeds)
            if not seeds:
                if not self.prune:
                    break
                stalled += 1
                continue
            records = self._evaluate_batch(seeds, database)
            for point, record in zip(seeds, records):
                index = self.engine.space.index_of(point)
                if index not in known:
                    known.add(index)
                    population.append((point, record))
            stalled = stalled + 1 if self.evaluations_used == used_before else 0
        while (
            self.budget_left
            and len(population) >= 2
            and stalled < self.max_stalled_generations
        ):
            used_before = self.evaluations_used
            ordered = self._order(population)
            child_points = []
            for _ in range(self.offspring_size):
                child = self._crossover(
                    self._tournament(ordered), self._tournament(ordered)
                )
                if self.rng.random() < self.mutation_rate:
                    child = self._mutate(child)
                child_points.append(child)
            child_points = self._prune_candidates(child_points)
            child_points = self._within_budget(child_points)
            if not child_points:
                # A fully pruned/duplicate generation still counts against
                # the stall limit, so a converged search terminates.
                stalled += 1
                continue
            child_records = self._evaluate_batch(child_points, database)
            combined = list(population)
            seen = {self.engine.space.index_of(point) for point, _ in population}
            for point, record in zip(child_points, child_records):
                index = self.engine.space.index_of(point)
                if index not in seen:
                    seen.add(index)
                    combined.append((point, record))
            survivors = self._order(combined)[: self.population_size]
            population = [(point, record) for point, record, _, _ in survivors]
            stalled = stalled + 1 if self.evaluations_used == used_before else 0
