"""Random-forest surrogate search: learn the replay, evaluate the elite.

The expensive operation in allocator exploration is the full trace replay
behind every metric vector.  This strategy learns a cheap stand-in — one
:class:`~repro.core.strategies.forest.RandomForest` regressor per chosen
metric over the encoded parameter space, retrained each round on every
feasible configuration evaluated so far — scores a large random candidate
pool with the model, and sends only the predicted-elite fraction to real
replays.  With ``surrogate_fraction=0.125`` each real evaluation is
amortised over 8 model-scored candidates, which is how the strategy
reaches the Pareto front on ~1 % of the evaluations an exhaustive sweep
would spend.

Elites are chosen by non-dominated sorting plus crowding distance over the
*predicted* metric vectors, so the picked batch spreads along the predicted
front instead of clustering on one predicted optimum.  Pool candidates
ranked out by the model are counted (once per configuration) in
``surrogate_skips``: they were discarded on model prediction alone, without
any dominance proof.

With ``prune=True`` the sound discards run *first*: the candidate pool is
filtered through :meth:`~repro.core.search.SearchStrategy._prune_candidates`,
whose prefix replays (:meth:`~repro.core.exploration.ExplorationEngine.
predict_point`) provide component-wise lower bounds — candidates provably
infeasible or provably dominated never even reach the learned model.

Model training draws only from the strategy's private seeded RNG and
happens strictly between evaluation batches, so fixed-seed runs stay
byte-identical across evaluation backends (and with or without numpy —
see :mod:`repro.core.strategies.forest`).
"""

from __future__ import annotations

from ..exploration import ExplorationEngine
from ..results import ExplorationRecord, ResultDatabase
from ..search import DEFAULT_PRUNE_FRACTION, SearchBudget, SearchStrategy
from .forest import RandomForest
from .nsga2 import crowding_distance, fast_non_dominated_sort

#: Fewest feasible observations before the forests are trusted; below this
#: the strategy keeps sampling uniformly at random.
MIN_TRAINING_ROWS = 4


class SurrogateSearch(SearchStrategy):
    """Forest-surrogate search: model-rank a pool, replay only the elite."""

    name = "surrogate"

    def __init__(
        self,
        engine: ExplorationEngine,
        budget: SearchBudget | None = None,
        metrics: list[str] | None = None,
        initial: int = 16,
        candidates: int = 128,
        surrogate_fraction: float = 0.125,
        trees: int = 12,
        depth: int = 6,
        prune: bool = False,
        prune_fraction: float = DEFAULT_PRUNE_FRACTION,
    ) -> None:
        super().__init__(engine, budget, metrics, prune, prune_fraction)
        if initial <= 0 or candidates <= 0:
            raise ValueError("initial and candidates must be positive")
        if not 0.0 < surrogate_fraction <= 1.0:
            raise ValueError(
                f"surrogate_fraction must be in (0, 1], got {surrogate_fraction}"
            )
        if trees <= 0 or depth <= 0:
            raise ValueError("trees and depth must be positive")
        self.initial = initial
        self.candidates = candidates
        self.surrogate_fraction = surrogate_fraction
        self.trees = trees
        self.depth = depth
        # Encoded-feature dictionary: parameter value -> ordinal position.
        self._value_index = {
            parameter.name: {value: i for i, value in enumerate(parameter.values)}
            for parameter in engine.space
        }
        # Configurations already counted in ``surrogate_skips`` — a pool
        # candidate ranked out by the model in several rounds counts once.
        self._model_rejected: set[int] = set()

    # -- the learned model --------------------------------------------------

    def _encode(self, point: dict) -> tuple[float, ...]:
        """A point as the ordinal positions of its values, in space order."""
        return tuple(
            float(self._value_index[parameter.name][point[parameter.name]])
            for parameter in self.engine.space
        )

    def _train(
        self, members: list[tuple[dict, ExplorationRecord]]
    ) -> list[RandomForest] | None:
        """One forest per metric, trained on the feasible members.

        Returns ``None`` while fewer than :data:`MIN_TRAINING_ROWS` feasible
        observations exist — an untrained model would only mislead.
        Infeasible records are excluded: their metric vectors cover a
        truncated replay and would teach the model that OOM is cheap.
        """
        feasible = [m for m in members if m[1].feasible]
        if len(feasible) < MIN_TRAINING_ROWS:
            return None
        rows = [self._encode(point) for point, _ in feasible]
        forests = []
        for metric in self.metrics:
            targets = [record.metrics.value(metric) for _, record in feasible]
            forest = RandomForest(trees=self.trees, max_depth=self.depth)
            forests.append(forest.fit(rows, targets, self.rng))
        return forests

    def _rank_pool(
        self, pool: list[dict], forests: list[RandomForest]
    ) -> list[dict]:
        """Pool ordered best-first by NDS + crowding over predicted vectors."""
        rows = [self._encode(point) for point in pool]
        columns = [forest.predict_batch(rows) for forest in forests]
        predicted = [
            tuple(column[i] for column in columns) for i in range(len(pool))
        ]
        ordered: list[dict] = []
        for front in fast_non_dominated_sort(predicted):
            distances = crowding_distance(predicted, front)
            for index in sorted(front, key=lambda i: (-distances[i], i)):
                ordered.append(pool[index])
        return ordered

    # -- the search ---------------------------------------------------------

    @property
    def batch_size(self) -> int:
        """Real evaluations per round: the elite fraction of the pool."""
        return max(1, round(self.surrogate_fraction * self.candidates))

    def _draw_pool(self, known: set[int]) -> list[dict]:
        """Up to ``candidates`` distinct unevaluated random points."""
        pool: list[dict] = []
        seen: set[int] = set()
        # Bounded oversampling: a small space (or a nearly exhausted one)
        # must not spin forever redrawing known points.
        for _ in range(4 * self.candidates):
            if len(pool) >= self.candidates:
                break
            point = self._random_point()
            index = self.engine.space.index_of(point)
            if index in known or index in seen:
                continue
            seen.add(index)
            pool.append(point)
        return pool

    def _search(self, database: ResultDatabase) -> None:
        members: list[tuple[dict, ExplorationRecord]] = []
        known: set[int] = set()
        stalled = 0

        def absorb(points: list[dict], records: list[ExplorationRecord]) -> None:
            for point, record in zip(points, records):
                index = self.engine.space.index_of(point)
                if index not in known:
                    known.add(index)
                    members.append((point, record))

        # Startup: uniform random observations to give the forests a floor.
        while (
            len(members) < self.initial
            and self.budget_left
            and stalled < self.max_stalled_generations
        ):
            used_before = self.evaluations_used
            seeds = [self._random_point() for _ in range(self.initial - len(members))]
            seeds = self._prune_candidates(seeds)
            seeds = self._within_budget(seeds)
            if not seeds:
                if not self.prune:
                    break
                stalled += 1
                continue
            absorb(seeds, self._evaluate_batch(seeds, database))
            stalled = stalled + 1 if self.evaluations_used == used_before else 0

        while self.budget_left and stalled < self.max_stalled_generations:
            used_before = self.evaluations_used
            pool = self._draw_pool(known)
            if not pool:
                break
            # Sound discards first: prefix lower bounds prove infeasibility
            # or dominance before the learned model spends its guesswork.
            pool = self._prune_candidates(pool)
            forests = self._train(members)
            if forests is None:
                chosen = pool[: self.batch_size]
            else:
                ordered = self._rank_pool(pool, forests)
                chosen = ordered[: self.batch_size]
                for point in ordered[self.batch_size :]:
                    # Discarded on model prediction alone — no dominance
                    # proof exists for these, so they are *surrogate* skips.
                    index = self.engine.space.index_of(point)
                    if index not in self._model_rejected:
                        self._model_rejected.add(index)
                        self.surrogate_skips += 1
            chosen = self._within_budget(chosen)
            if chosen:
                absorb(chosen, self._evaluate_batch(chosen, database))
            stalled = stalled + 1 if self.evaluations_used == used_before else 0
