"""Tree-structured Parzen estimator (TPE) over the categorical space.

A Bayesian-optimisation sampler in the style of Bergstra et al. (2011),
adapted to the allocator space: every dimension is categorical (a
:class:`~repro.core.parameters.Parameter` with an explicit value list), so
the two Parzen densities reduce to Laplace-smoothed per-dimension value
histograms.

Each round splits the evaluated configurations into a *good* set (the best
``gamma`` fraction under Pareto rank, then crowding pressure via the first
metric) and the rest, fits the two histograms ``l(v)`` (good) and ``g(v)``
(rest), draws a candidate pool from ``l``, and sends the candidates with
the highest acquisition score ``sum_d log(l(v_d) / g(v_d))`` — the
categorical expected-improvement proxy — to real evaluation as one batch.

Infeasible configurations (OOM on the trace) always land in the *rest*
set, so the sampler steers away from value combinations that failed, not
just away from mediocre ones.
"""

from __future__ import annotations

import math

from ..exploration import ExplorationEngine
from ..pareto import pareto_rank
from ..results import ExplorationRecord, ResultDatabase
from ..search import DEFAULT_PRUNE_FRACTION, SearchBudget, SearchStrategy


class TPESearch(SearchStrategy):
    """TPE sampler: model good-vs-rest parameter densities, sample the ratio."""

    name = "tpe"

    def __init__(
        self,
        engine: ExplorationEngine,
        budget: SearchBudget | None = None,
        metrics: list[str] | None = None,
        startup: int = 16,
        batch: int = 8,
        candidates: int = 64,
        gamma: float = 0.25,
        prune: bool = False,
        prune_fraction: float = DEFAULT_PRUNE_FRACTION,
    ) -> None:
        super().__init__(engine, budget, metrics, prune, prune_fraction)
        if startup <= 0 or batch <= 0 or candidates <= 0:
            raise ValueError("startup, batch and candidates must be positive")
        if not 0.0 < gamma < 1.0:
            raise ValueError(f"gamma must be in (0, 1), got {gamma}")
        self.startup = startup
        self.batch = batch
        self.candidates = candidates
        self.gamma = gamma

    # -- density model ------------------------------------------------------

    def _split(
        self, members: list[tuple[dict, ExplorationRecord]]
    ) -> tuple[list[dict], list[dict]]:
        """Split evaluated members into (good, rest) point sets.

        Feasible members are ordered by Pareto rank over the chosen
        metrics (first-metric value breaks ties deterministically); the top
        ``gamma`` fraction — at least one — is *good*.  Infeasible members
        are always *rest*.
        """
        feasible = [m for m in members if m[1].feasible]
        rest_points = [point for point, record in members if not record.feasible]
        if not feasible:
            return [], rest_points
        vectors = [record.metric_vector(self.metrics) for _, record in feasible]
        ranks = pareto_rank(vectors)
        order = sorted(range(len(feasible)), key=lambda i: (ranks[i], vectors[i], i))
        cut = max(1, int(math.ceil(self.gamma * len(feasible))))
        good_points = [feasible[i][0] for i in order[:cut]]
        rest_points.extend(feasible[i][0] for i in order[cut:])
        return good_points, rest_points

    def _histograms(self, points: list[dict]) -> dict[str, dict]:
        """Laplace-smoothed per-dimension value frequencies of ``points``.

        With ``n`` observations of a dimension with ``k`` values, value
        ``v`` seen ``c`` times gets probability ``(c + 1) / (n + k)`` — the
        add-one prior keeps every value reachable (density never zero), so
        the acquisition ratio is always finite and exploration never
        collapses onto the observed values alone.
        """
        model: dict[str, dict] = {}
        total = len(points)
        for parameter in self.engine.space:
            counts = {value: 0 for value in parameter.values}
            for point in points:
                counts[point[parameter.name]] += 1
            k = len(parameter.values)
            model[parameter.name] = {
                value: (count + 1) / (total + k) for value, count in counts.items()
            }
        return model

    def _sample_from(self, model: dict[str, dict]) -> dict:
        """Draw one point from the good-density model, dimension by dimension."""
        point = {}
        for parameter in self.engine.space:
            weights = model[parameter.name]
            point[parameter.name] = self.rng.choices(
                parameter.values,
                weights=[weights[value] for value in parameter.values],
            )[0]
        return point

    def _score(self, point: dict, good: dict[str, dict], rest: dict[str, dict]) -> float:
        """Acquisition score: ``sum_d log(l(v_d) / g(v_d))``, higher is better."""
        return sum(
            math.log(good[name][value] / rest[name][value])
            for name, value in point.items()
        )

    # -- the search ---------------------------------------------------------

    def _search(self, database: ResultDatabase) -> None:
        members: list[tuple[dict, ExplorationRecord]] = []
        known: set[int] = set()
        stalled = 0

        def absorb(points: list[dict], records: list[ExplorationRecord]) -> None:
            for point, record in zip(points, records):
                index = self.engine.space.index_of(point)
                if index not in known:
                    known.add(index)
                    members.append((point, record))

        # Startup: uniform random observations to seed the two densities.
        while (
            len(members) < self.startup
            and self.budget_left
            and stalled < self.max_stalled_generations
        ):
            used_before = self.evaluations_used
            seeds = [self._random_point() for _ in range(self.startup - len(members))]
            seeds = self._prune_candidates(seeds)
            seeds = self._within_budget(seeds)
            if not seeds:
                if not self.prune:
                    break
                stalled += 1
                continue
            absorb(seeds, self._evaluate_batch(seeds, database))
            stalled = stalled + 1 if self.evaluations_used == used_before else 0

        while self.budget_left and members and stalled < self.max_stalled_generations:
            used_before = self.evaluations_used
            good_points, rest_points = self._split(members)
            if not good_points:
                # Nothing feasible yet: keep sampling uniformly.
                proposals = [self._random_point() for _ in range(self.batch)]
            else:
                good = self._histograms(good_points)
                rest = self._histograms(rest_points)
                pool = [self._sample_from(good) for _ in range(self.candidates)]
                # Highest acquisition first; space index breaks exact score
                # ties so the ordering is deterministic.
                pool.sort(
                    key=lambda p: (
                        -self._score(p, good, rest),
                        self.engine.space.index_of(p),
                    )
                )
                proposals, proposed = [], set()
                for point in pool:
                    index = self.engine.space.index_of(point)
                    if index in known or index in proposed:
                        continue
                    proposed.add(index)
                    proposals.append(point)
                    if len(proposals) >= self.batch:
                        break
                if not proposals:
                    # The model only reproduces known points: fall back to
                    # uniform sampling for one round to regain diversity.
                    proposals = [self._random_point() for _ in range(self.batch)]
            proposals = self._prune_candidates(proposals)
            proposals = self._within_budget(proposals)
            if proposals:
                absorb(proposals, self._evaluate_batch(proposals, database))
            stalled = stalled + 1 if self.evaluations_used == used_before else 0
