"""Trade-off analysis: the numbers the paper reports.

Section 3 of the paper summarises each case study with a handful of derived
figures:

* the *range* of each metric across **all** configurations
  ("a range in the total memory footprint of a factor 11 and for the memory
  accesses of a factor 54"),
* the number of Pareto-optimal configurations ("15 Pareto-optimal
  configurations"),
* the improvement factors / percentage decreases **within** the
  Pareto-optimal set ("decrease ... up to a factor of 2.9 ... up to a
  factor of 4.1 ... energy up to 71.74% ... execution time up to 27.92%").

:class:`TradeoffAnalysis` computes exactly those figures from a
:class:`ResultDatabase`, so benchmarks and EXPERIMENTS.md can quote
paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..profiling.metrics import improvement_factor, metric_keys, percent_decrease
from .results import ExplorationRecord, ResultDatabase, StreamingResultView


@dataclass
class MetricTradeoff:
    """Range and within-Pareto gain for one metric."""

    metric: str
    overall_min: float
    overall_max: float
    pareto_min: float
    pareto_max: float

    @property
    def overall_range_factor(self) -> float:
        """max/min across all configurations (the paper's "factor 11 / 54")."""
        return improvement_factor(self.overall_max, self.overall_min)

    @property
    def pareto_gain_factor(self) -> float:
        """max/min within the Pareto set (the paper's "factor 2.9 / 4.1")."""
        return improvement_factor(self.pareto_max, self.pareto_min)

    @property
    def pareto_gain_percent(self) -> float:
        """Percentage decrease within the Pareto set (the paper's 71.74%...)."""
        return percent_decrease(self.pareto_max, self.pareto_min)

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "overall_min": self.overall_min,
            "overall_max": self.overall_max,
            "overall_range_factor": self.overall_range_factor,
            "pareto_min": self.pareto_min,
            "pareto_max": self.pareto_max,
            "pareto_gain_factor": self.pareto_gain_factor,
            "pareto_gain_percent": self.pareto_gain_percent,
        }


@dataclass
class TradeoffSummary:
    """All per-metric trade-offs plus the Pareto-front size."""

    trace_name: str
    total_configurations: int
    pareto_count: int
    metrics: dict[str, MetricTradeoff] = field(default_factory=dict)

    def metric(self, key: str) -> MetricTradeoff:
        return self.metrics[key]

    def as_dict(self) -> dict:
        return {
            "trace_name": self.trace_name,
            "total_configurations": self.total_configurations,
            "pareto_count": self.pareto_count,
            "metrics": {key: value.as_dict() for key, value in self.metrics.items()},
        }


class TradeoffAnalysis:
    """Computes paper-style summary figures from an exploration database."""

    def __init__(
        self,
        database: "ResultDatabase | StreamingResultView",
        pareto_metrics: list[str] | None = None,
    ) -> None:
        if len(database) == 0:
            raise ValueError("cannot analyse an empty result database")
        if not database.has_feasible:
            raise ValueError(
                "cannot analyse a database with no feasible configurations"
            )
        self.database = database
        self.pareto_metrics = pareto_metrics or metric_keys()
        self._pareto = database.pareto_records(self.pareto_metrics)

    @property
    def pareto_records(self) -> list[ExplorationRecord]:
        return list(self._pareto)

    @property
    def pareto_count(self) -> int:
        return len(self._pareto)

    def metric_tradeoff(self, metric: str) -> MetricTradeoff:
        """Range across all configurations and gain within the Pareto set."""
        overall_min, overall_max = self.database.metric_range(metric)
        pareto_values = [record.metrics.value(metric) for record in self._pareto]
        return MetricTradeoff(
            metric=metric,
            overall_min=overall_min,
            overall_max=overall_max,
            pareto_min=min(pareto_values),
            pareto_max=max(pareto_values),
        )

    def summary(self, metrics: list[str] | None = None) -> TradeoffSummary:
        keys = metrics or metric_keys()
        summary = TradeoffSummary(
            trace_name=self.database.trace_name,
            total_configurations=self.database.feasible_count,
            pareto_count=self.pareto_count,
        )
        for key in keys:
            summary.metrics[key] = self.metric_tradeoff(key)
        return summary

    def best_configuration(self, metric: str) -> ExplorationRecord:
        """The Pareto record minimising ``metric``."""
        return min(self._pareto, key=lambda record: record.metrics.value(metric))

    def worst_pareto_configuration(self, metric: str) -> ExplorationRecord:
        """The Pareto record maximising ``metric`` (the other end of the curve)."""
        return max(self._pareto, key=lambda record: record.metrics.value(metric))

    def paper_style_report(self) -> str:
        """Render the figures of paper §3 for this exploration."""
        summary = self.summary()
        lines = [
            f"Exploration of '{summary.trace_name}': "
            f"{summary.total_configurations} configurations, "
            f"{summary.pareto_count} Pareto-optimal",
        ]
        for key, tradeoff in summary.metrics.items():
            lines.append(
                f"  {key}: overall range x{tradeoff.overall_range_factor:.1f}, "
                f"within Pareto set x{tradeoff.pareto_gain_factor:.2f} "
                f"({tradeoff.pareto_gain_percent:.2f}% decrease)"
            )
        return "\n".join(lines)


def compare_against_baseline(
    database: ResultDatabase,
    baseline_metrics,
    metric: str,
) -> float:
    """Improvement factor of the best explored configuration vs a baseline run.

    ``baseline_metrics`` is the :class:`MetricSet` measured for an OS-style
    allocator on the same trace.
    """
    best = database.best_by(metric)
    return improvement_factor(baseline_metrics.value(metric), best.metrics.value(metric))
