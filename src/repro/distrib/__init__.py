"""Distributed exploration service (ROADMAP item 1).

One coordinator leases contiguous enumeration ranges to elastic worker
processes over a length-prefixed JSON socket protocol; results flow
through the shared :class:`~repro.core.store.ResultStore` and the final
artefact is byte-identical to the single-host exhaustive run — including
through worker crashes, expired leases and torn store writes (the
fault-injection suite in ``tests/test_distrib_cluster.py`` proves it).

* :mod:`repro.distrib.protocol` — message framing;
* :mod:`repro.distrib.coordinator` — lease bookkeeping, fault recovery,
  final assembly (the message types are documented there);
* :mod:`repro.distrib.worker` — the evaluation loop.
"""

from .coordinator import Coordinator, DistribError, serve_experiment
from .protocol import MessageBuffer, ProtocolError, recv_message, send_message
from .worker import Worker, parse_address, run_worker

__all__ = [
    "Coordinator",
    "DistribError",
    "MessageBuffer",
    "ProtocolError",
    "Worker",
    "parse_address",
    "recv_message",
    "run_worker",
    "send_message",
    "serve_experiment",
]
