"""Coordinator of the distributed exploration service.

The 2006 paper's exhaustive sweep is embarrassingly parallel; this module
turns the existing seams — :class:`~repro.api.ExperimentSpec` as the job
description, contiguous enumeration ranges as the unit of work, the
concurrent-writer-safe :class:`~repro.core.store.ResultStore` as the data
plane — into a real multi-host mode.  One coordinator process:

1. resolves the experiment spec (trace, space, fingerprint, store path),
2. partitions the enumeration ``[0, total)`` into contiguous **ranges**,
3. **leases** ranges to workers over the length-prefixed JSON protocol of
   :mod:`repro.distrib.protocol` (the socket is the *control* plane only —
   results always travel through the shared result store),
4. expires leases whose worker stopped heartbeating (or disconnected) and
   hands the range to the next worker, which resumes from the store and
   re-evaluates only the points the dead worker never committed,
5. verifies store coverage of every completed range, re-leasing anything a
   torn write lost, and
6. assembles the final :class:`~repro.core.results.ResultDatabase` from
   the store in global enumeration order.

The final artefact is **byte-identical to the single-host exhaustive run**
of the same experiment: records, labels, indexes, order, Pareto fronts and
provenance all match, whatever the fault history.  Cache counters describe
the *canonical* cold run (``misses == records``, no store section) rather
than the distributed execution — exactly the normalisation
:func:`~repro.core.store.merge_databases` applies to store counters: how
the sweep was executed (who profiled, who reused) is execution detail, not
part of what the experiment produced.  The per-worker execution statistics
are printed to the coordinator log instead.

Message types
-------------

===========  =========  ==================================================
type         direction  meaning
===========  =========  ==================================================
hello        w -> c     worker introduces itself (``worker`` name,
                        ``spec_hash`` of its local spec or ``""``)
welcome      c -> w     spec document (store path resolved), engine
                        ``fingerprint``, ``heartbeat_interval``
reject       c -> w     hello refused (mismatched ``spec_hash``)
request      w -> c     give me work
lease        c -> w     evaluate ``[start, stop)`` under ``lease_id``
wait         w -> c     nothing leasable now; poll again shortly
done         c -> w     the sweep is complete; disconnect
heartbeat    w -> c     still evaluating ``lease_id``
ack          c -> w     heartbeat/completion accepted
expired      c -> w     the lease was re-assigned; abandon it
complete     w -> c     every point of ``lease_id`` is committed
===========  =========  ==================================================
"""

from __future__ import annotations

import selectors
import socket
import time
from dataclasses import dataclass, field

from pathlib import Path

from ..api.experiment import Experiment, ResolvedExperiment
from ..api.spec import ExperimentSpec
from ..core.results import ResultDatabase
from ..core.store import ResultStore, default_store_path
from .protocol import MessageBuffer, ProtocolError, encode_message


def _print_flushed(line: str) -> None:
    """Default log consumer: print and flush (pipes are block-buffered)."""
    print(line, flush=True)

#: Default seconds without a heartbeat before a lease is re-assigned.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Fraction of the lease timeout between worker heartbeats — six beats per
#: timeout window, so one dropped beat never expires a healthy worker.
HEARTBEAT_FRACTION = 6.0

#: Seconds the coordinator keeps answering ``done`` after the sweep
#: finished, so workers mid-request disconnect cleanly.
DRAIN_GRACE = 2.0


class DistribError(RuntimeError):
    """A spec or environment that cannot run as a distributed sweep."""


def auto_lease_size(total: int) -> int:
    """Points per lease when the spec does not fix one.

    Small enough that a cluster of a few workers re-balances on loss (16+
    leases per sweep), large enough to amortise the per-lease round trip.
    """
    return max(1, total // 16)


@dataclass
class RangeState:
    """One contiguous slice of the enumeration and its lease lifecycle."""

    range_id: int
    start: int
    stop: int
    status: str = "pending"  # pending | leased | done
    lease_id: int = -1
    worker: str = ""
    deadline: float = 0.0

    @property
    def label(self) -> str:
        return f"[{self.start},{self.stop})"


@dataclass
class _Connection:
    """Per-socket state of the coordinator's event loop."""

    sock: socket.socket
    address: str
    buffer: MessageBuffer = field(default_factory=MessageBuffer)
    worker: str = ""  # set by hello
    greeted: bool = False


class Coordinator:
    """Serve one experiment's exhaustive sweep to elastic workers.

    Parameters
    ----------
    spec:
        The experiment to distribute.  Must be exhaustive (no heuristic
        strategy, no ``shard``, no ``sample``) — ranges partition the full
        enumeration.  Serve parameters (``host``/``port``/``lease_size``/
        ``lease_timeout``) come from the spec's ``serve`` ref unless
        overridden here.
    host / port / lease_size / lease_timeout:
        Overrides of the spec's serve parameters (``port`` 0 binds an
        ephemeral port; the chosen one is announced and available as
        ``self.address``).
    store_path:
        Override of the spec's store path.  The spec's ``jsonl`` store is
        used when it names one; a spec without a store falls back to the
        shared per-user default, exactly like ``explore --store``.
    log:
        Line consumer for progress output (``print`` by default).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        host: str | None = None,
        port: int | None = None,
        lease_size: int | None = None,
        lease_timeout: float | None = None,
        store_path: str | None = None,
        log=_print_flushed,
    ) -> None:
        spec.validate()
        if spec.strategy.name != "exhaustive":
            raise DistribError(
                "the distributed service leases slices of the exhaustive "
                f"enumeration; strategy '{spec.strategy.name}' cannot be served"
            )
        if spec.shard:
            raise DistribError(
                "a served experiment must cover the whole enumeration; "
                f"drop shard '{spec.shard}' (the coordinator partitions itself)"
            )
        if spec.sample is not None:
            raise DistribError(
                "a served experiment must be exhaustive; drop the sample setting"
            )
        serve = dict(spec.serve.params)
        self.spec = spec
        self.host = host if host is not None else serve.get("host", "127.0.0.1")
        self.port = port if port is not None else int(serve.get("port", 0))
        self.lease_timeout = float(
            lease_timeout
            if lease_timeout is not None
            else serve.get("lease_timeout", DEFAULT_LEASE_TIMEOUT)
        )
        if self.lease_timeout <= 0:
            raise DistribError("lease_timeout must be positive")
        self.heartbeat_interval = self.lease_timeout / HEARTBEAT_FRACTION
        self.log = log
        # The spec's store kind decides the on-disk format of the shared
        # store; a spec without a persistent store serves over jsonl.
        self._store_format = (
            spec.store.name if spec.store.name in ("jsonl", "binary") else "jsonl"
        )
        self._store_path = str(
            store_path
            or (
                spec.store.name in ("jsonl", "binary")
                and spec.store.params.get("path")
            )
            or default_store_path(self._store_format)
        )
        # Resolve once: trace, space, engine (its fingerprint and provenance
        # stamping), and the store the final artefact is assembled from.
        # Only the coordinator's own store carries the auto_compact
        # threshold — the announced worker document stays threshold-free,
        # so workers never race each other rewriting the shared file.
        document = self._spec_document()
        threshold = spec.store.params.get("auto_compact")
        if threshold is not None:
            document["store"]["params"]["auto_compact"] = threshold
        self._resolved: ResolvedExperiment = Experiment(
            spec.from_dict(document)
        ).resolve()
        self.store: ResultStore = self._resolved.store  # type: ignore[assignment]
        assert self.store is not None
        self.total = self._resolved.space.size()
        size = int(
            lease_size
            if lease_size is not None
            else serve.get("lease_size", 0)
        ) or auto_lease_size(self.total)
        if size < 1:
            raise DistribError("lease_size must be >= 1")
        self.ranges = [
            RangeState(range_id=i, start=start, stop=min(start + size, self.total))
            for i, start in enumerate(range(0, self.total, size))
        ]
        self._pending: list[int] = [r.range_id for r in self.ranges]
        self._next_lease_id = 0
        self._lease_ranges: dict[int, RangeState] = {}
        self.address: tuple[str, int] | None = None
        self.database: ResultDatabase | None = None
        self.stats = {
            "leases_granted": 0,
            "leases_expired": 0,
            "leases_requeued_on_disconnect": 0,
            "ranges_releases_after_verify": 0,
            "auto_compactions": 0,
            "workers_seen": set(),
        }
        self._selector: selectors.BaseSelector | None = None
        self._listener: socket.socket | None = None
        self._connections: dict[socket.socket, _Connection] = {}
        # Workers are only told "done" after the store-coverage check has
        # passed: a premature "done" would let every worker exit while a
        # torn-write range still needs re-leasing, wedging the sweep.
        self._verified = False

    # -- spec plumbing -----------------------------------------------------

    def _spec_document(self) -> dict:
        """The spec document workers run: store pinned to the shared path."""
        document = self.spec.to_dict()
        document["store"] = {
            "name": self._store_format,
            "params": {"path": self._store_path},
        }
        return document

    @property
    def spec_hash(self) -> str:
        """Canonical hash workers must match (store-independent)."""
        return self.spec.spec_hash()

    @property
    def fingerprint(self) -> str:
        """Evaluation fingerprint every worker must reproduce exactly."""
        return self._resolved.engine.fingerprint

    # -- the event loop ----------------------------------------------------

    def serve(self) -> ResultDatabase:
        """Run the sweep to completion and return the assembled database."""
        self._open()
        try:
            while not self._finished():
                self._poll()
            self.database = self._assemble()
            self._broadcast_done()
        finally:
            self._close()
        return self.database

    def _open(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self.address = listener.getsockname()[:2]
        self._listener = listener
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ)
        self.log(
            f"coordinator: listening on {self.address[0]}:{self.address[1]} "
            f"({self.total} points, {len(self.ranges)} ranges, "
            f"lease timeout {self.lease_timeout:g}s)")

    def _poll(self) -> None:
        assert self._selector is not None
        timeout = self._next_deadline_delay()
        for key, _mask in self._selector.select(timeout):
            if key.fileobj is self._listener:
                self._accept()
            else:
                self._service(self._connections[key.fileobj])  # type: ignore[index]
        self._expire_leases()

    def _next_deadline_delay(self) -> float:
        deadlines = [
            r.deadline for r in self.ranges if r.status == "leased"
        ]
        if not deadlines:
            return 0.5
        return max(0.05, min(min(deadlines) - time.monotonic(), 0.5))

    def _accept(self) -> None:
        assert self._listener is not None and self._selector is not None
        sock, address = self._listener.accept()
        sock.setblocking(True)  # reads are gated on readability; sends are tiny
        connection = _Connection(sock=sock, address=f"{address[0]}:{address[1]}")
        self._connections[sock] = connection
        self._selector.register(sock, selectors.EVENT_READ)

    def _service(self, connection: _Connection) -> None:
        try:
            data = connection.sock.recv(65536)
        except OSError:
            data = b""
        if not data:
            self._disconnect(connection, "connection lost")
            return
        connection.buffer.feed(data)
        try:
            messages = connection.buffer.take()
        except ProtocolError as error:
            self.log(f"coordinator: dropping {connection.address}: {error}")
            self._disconnect(connection, "protocol error")
            return
        for message in messages:
            self._handle(connection, message)

    def _disconnect(self, connection: _Connection, reason: str) -> None:
        assert self._selector is not None
        requeued = 0
        for state in self.ranges:
            if state.status == "leased" and state.worker == connection.worker:
                self._requeue(state)
                self.stats["leases_requeued_on_disconnect"] += 1
                requeued += 1
        if connection.worker:
            self.log(
                f"coordinator: worker {connection.worker} gone ({reason}); "
                f"requeued {requeued} lease(s)")
        self._selector.unregister(connection.sock)
        del self._connections[connection.sock]
        try:
            connection.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    # -- message handling --------------------------------------------------

    def _handle(self, connection: _Connection, message: dict) -> None:
        kind = message.get("type")
        if kind == "hello":
            self._handle_hello(connection, message)
        elif not connection.greeted:
            self._disconnect(connection, f"'{kind}' before hello")
        elif kind == "request":
            self._handle_request(connection)
        elif kind == "heartbeat":
            self._handle_heartbeat(connection, message)
        elif kind == "complete":
            self._handle_complete(connection, message)
        else:
            self._disconnect(connection, f"unknown message type {kind!r}")

    def _handle_hello(self, connection: _Connection, message: dict) -> None:
        worker = str(message.get("worker") or connection.address)
        claimed = str(message.get("spec_hash") or "")
        if claimed and claimed != self.spec_hash:
            self._send(
                connection,
                {
                    "type": "reject",
                    "reason": (
                        f"spec hash mismatch: worker runs {claimed[:12]}..., "
                        f"coordinator serves {self.spec_hash[:12]}..."
                    ),
                })
            self._disconnect(connection, "spec hash mismatch")
            return
        connection.worker = worker
        connection.greeted = True
        self.stats["workers_seen"].add(worker)
        self.log(f"coordinator: worker {worker} joined")
        self._send(
            connection,
            {
                "type": "welcome",
                "spec": self._spec_document(),
                "spec_hash": self.spec_hash,
                "fingerprint": self.fingerprint,
                "heartbeat_interval": self.heartbeat_interval,
            })

    def _handle_request(self, connection: _Connection) -> None:
        state = self._next_pending()
        if state is None:
            if self._verified:
                self._send(connection, {"type": "done"})
            else:
                # Poll again shortly: leased ranges may still be re-queued
                # (expiry, disconnect, failed coverage verification).
                self._send(connection, {"type": "wait", "delay": 0.25})
            return
        self._next_lease_id += 1
        state.status = "leased"
        state.lease_id = self._next_lease_id
        state.worker = connection.worker
        state.deadline = time.monotonic() + self.lease_timeout
        self._lease_ranges[state.lease_id] = state
        self.stats["leases_granted"] += 1
        self.log(
            f"coordinator: lease {state.lease_id} {state.label} "
            f"-> {connection.worker}")
        self._send(
            connection,
            {
                "type": "lease",
                "lease_id": state.lease_id,
                "start": state.start,
                "stop": state.stop,
            })

    def _handle_heartbeat(self, connection: _Connection, message: dict) -> None:
        lease_id = message.get("lease_id")
        state = self._lease_ranges.get(lease_id)
        if (
            state is None
            or state.lease_id != lease_id
            or state.status != "leased"
            or state.worker != connection.worker
        ):
            self._send(connection, {"type": "expired", "lease_id": lease_id})
            return
        state.deadline = time.monotonic() + self.lease_timeout
        self._send(connection, {"type": "ack", "lease_id": lease_id})

    def _handle_complete(self, connection: _Connection, message: dict) -> None:
        lease_id = message.get("lease_id")
        state = self._lease_ranges.get(lease_id)
        if state is None:
            self._send(connection, {"type": "ack", "lease_id": lease_id})
            return
        # A completion always counts, even when the lease expired and the
        # range was re-assigned meanwhile: the points are committed to the
        # store either way (and verified there before the sweep finishes).
        if state.status != "done":
            if state.status == "pending":
                self._pending.remove(state.range_id)
            state.status = "done"
            done = sum(1 for r in self.ranges if r.status == "done")
            self.log(
                f"coordinator: range {state.label} complete "
                f"({connection.worker}, {done}/{len(self.ranges)} ranges)")
            self._maybe_compact()
        self._send(connection, {"type": "ack", "lease_id": lease_id})

    def _maybe_compact(self) -> None:
        """Compact the shared store between lease completions when due.

        Workers re-evaluating a re-leased range append superseded entries;
        over a long elastic sweep those dead entries accumulate in the
        shared file.  Each range completion is a natural quiet point: the
        coordinator catches up on the appended tail and, when the dead
        count has crossed the store's ``auto_compact`` threshold, rewrites
        the file down to its live set (atomic replace — workers' readers
        pick the new inode up on their next refresh).  A store opened
        without ``auto_compact`` is never touched.
        """
        if self.store.auto_compact is None:
            return
        self.store.refresh()
        if self.store.dead_entries < self.store.auto_compact:
            return
        stats = self.store.compact()
        self.stats["auto_compactions"] += 1
        self.log(
            f"coordinator: store compacted ({stats['dead']} dead of "
            f"{stats['entries']} entries dropped, "
            f"{stats['bytes_before']} -> {stats['bytes_after']} bytes)")

    # -- lease bookkeeping -------------------------------------------------

    def _next_pending(self) -> RangeState | None:
        if not self._pending:
            return None
        # Lowest start first: deterministic assignment and tidy progress.
        self._pending.sort(key=lambda rid: self.ranges[rid].start)
        return self.ranges[self._pending.pop(0)]

    def _requeue(self, state: RangeState) -> None:
        state.status = "pending"
        state.worker = ""
        state.deadline = 0.0
        self._pending.append(state.range_id)

    def _expire_leases(self) -> None:
        now = time.monotonic()
        for state in self.ranges:
            if state.status == "leased" and state.deadline <= now:
                self.stats["leases_expired"] += 1
                self.log(
                    f"coordinator: lease {state.lease_id} {state.label} of "
                    f"{state.worker} expired; requeued")
                self._requeue(state)

    def _all_done(self) -> bool:
        return all(state.status == "done" for state in self.ranges)

    def _finished(self) -> bool:
        """True when every range is done *and* the store really covers it.

        Completion messages are claims; the store is the truth.  Before the
        sweep can finish, the coordinator refreshes the store and probes
        every point of every completed range — anything missing (a torn
        write, a worker that lied) is re-leased instead of silently lost.
        """
        if not self._all_done():
            return False
        self.store.refresh()
        engine = self._resolved.engine
        missing = self.store.missing_points(
            engine.fingerprint, engine.points_in_range(0, self.total)
        )
        if not missing:
            self._verified = True
            return True
        lost = {index for index, _point in missing}
        for state in self.ranges:
            if any(state.start <= index < state.stop for index in lost):
                self.log(
                    f"coordinator: range {state.label} incomplete in the store "
                    "(torn write?); re-leasing")
                self.stats["ranges_releases_after_verify"] += 1
                self._requeue(state)
        return False

    # -- finalisation ------------------------------------------------------

    def _assemble(self) -> ResultDatabase:
        """Build the canonical artefact from the store, enumeration-ordered.

        Record-for-record this is what a single-host exhaustive run
        produces: same labels (workers label by global enumeration index),
        same order, same indexes (assigned by ``add``), same provenance.
        The cache counters are set to the canonical cold form — profiled
        work equals the record count, exactly like a cold single run and
        like a cold shard merge.
        """
        self.store.refresh()
        engine = self._resolved.engine
        database = ResultDatabase(name=f"{self._resolved.trace.name}-exploration")
        for index, point in engine.points_in_range(0, self.total):
            record = self.store.get(engine.fingerprint, point)
            if record is None:  # pragma: no cover - _finished() guarantees it
                raise DistribError(
                    f"store lost point {index} between verification and assembly"
                )
            database.add(record)
            if self._resolved.sink is not None:
                self._resolved.sink.accept(record)
        database.cache_hits = 0
        database.cache_misses = len(database)
        engine._attach_provenance(database)
        workers = sorted(self.stats["workers_seen"])
        self.log(
            f"coordinator: sweep complete: {len(database)} records from "
            f"{len(workers)} worker(s) {workers}; "
            f"{self.stats['leases_granted']} leases granted, "
            f"{self.stats['leases_expired']} expired, "
            f"{self.stats['leases_requeued_on_disconnect']} requeued on disconnect")
        return database

    def _broadcast_done(self) -> None:
        """Tell every connected worker to disconnect, then drain briefly."""
        assert self._selector is not None
        for connection in list(self._connections.values()):
            if connection.greeted:
                self._send(connection, {"type": "done"})
        deadline = time.monotonic() + DRAIN_GRACE
        while self._connections and time.monotonic() < deadline:
            for key, _mask in self._selector.select(0.05):
                if key.fileobj is self._listener:
                    self._accept()
                else:
                    self._service(self._connections[key.fileobj])  # type: ignore[index]

    def _send(self, connection: _Connection, message: dict) -> None:
        """Write one message to a worker (override point for fault tests)."""
        try:
            connection.sock.sendall(encode_message(message))
        except OSError:
            self._disconnect(connection, "send failed")

    def _close(self) -> None:
        for connection in list(self._connections.values()):
            self._disconnect(connection, "coordinator shutting down")
        if self._selector is not None and self._listener is not None:
            self._selector.unregister(self._listener)
            self._listener.close()
            self._listener = None
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        self._resolved.engine.close()
        self.store.close()


def serve_experiment(
    spec: ExperimentSpec, out: str | Path | None = None, **options
) -> ResultDatabase:
    """One-shot helper: build a :class:`Coordinator`, serve, optionally save.

    ``options`` are the coordinator's keyword parameters.  Raises
    :class:`DistribError` (or :class:`~repro.api.spec.SpecError`) on an
    unservable spec.
    """
    coordinator = Coordinator(spec, **options)
    database = coordinator.serve()
    if out is not None:
        database.to_json(out)
    return database
