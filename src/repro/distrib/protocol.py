"""Length-prefixed JSON message framing for the distributed service.

The coordinator and its workers speak the simplest protocol that is still
robust over a byte stream: every message is one JSON object encoded as
UTF-8, preceded by a 4-byte big-endian length.  The framing gives message
boundaries (a TCP stream has none), the JSON gives self-describing
payloads, and the length prefix lets the receiver reject garbage before
parsing it.

Two consumption styles share the same wire format:

* :func:`send_message` / :func:`recv_message` — blocking calls over a
  connected socket, used by the worker's strict request/response loop;
* :class:`MessageBuffer` — an incremental decoder fed raw ``recv`` bytes,
  used by the coordinator's single-threaded ``selectors`` event loop where
  reads arrive in arbitrary chunks.

Message *types* (the ``type`` key every message carries) are documented on
:mod:`repro.distrib.coordinator`; this module is deliberately ignorant of
them — it moves dicts.
"""

from __future__ import annotations

import json
import socket
import struct

#: Frame header: payload byte count, 4-byte big-endian unsigned.
_HEADER = struct.Struct(">I")

#: Upper bound on one message's payload.  Control messages are tiny; a
#: length beyond this means a desynchronised or hostile peer, and is
#: rejected before any allocation is attempted.
MAX_MESSAGE_BYTES = 16 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A peer sent bytes that cannot be a protocol message."""


def encode_message(message: dict) -> bytes:
    """One message as its complete wire form (header + JSON payload)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame limit"
        )
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message payload: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def send_message(sock: socket.socket, message: dict) -> None:
    """Write one message to a connected socket (blocking, complete)."""
    sock.sendall(encode_message(message))


def recv_message(sock: socket.socket) -> dict | None:
    """Read one message from a connected socket (blocking).

    Returns ``None`` on a clean end-of-stream *before* any header byte;
    a stream that dies mid-frame raises :class:`ProtocolError` — the peer
    crashed mid-send and the remainder can never be parsed.
    """
    header = _recv_exactly(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte message (limit {MAX_MESSAGE_BYTES})"
        )
    payload = _recv_exactly(sock, length, allow_eof=False)
    assert payload is not None
    return _decode_payload(payload)


def _recv_exactly(
    sock: socket.socket, count: int, allow_eof: bool
) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and not chunks:
                return None
            raise ProtocolError(
                f"stream ended {remaining} bytes short of a complete frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class MessageBuffer:
    """Incremental frame decoder for non-blocking reads.

    Feed it whatever ``recv`` returned; take complete messages out as they
    become available.  Partial frames stay buffered across feeds, so the
    caller never deals with message boundaries.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Append raw stream bytes received from the peer."""
        self._buffer.extend(data)

    def take(self) -> list[dict]:
        """All complete messages decodable from the buffered bytes, in order.

        Raises :class:`ProtocolError` on an oversized or undecodable frame;
        the connection is unusable afterwards (framing is lost) and should
        be closed by the caller.
        """
        messages: list[dict] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack(self._buffer[: _HEADER.size])
            if length > MAX_MESSAGE_BYTES:
                raise ProtocolError(
                    f"peer announced a {length}-byte message "
                    f"(limit {MAX_MESSAGE_BYTES})"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            messages.append(_decode_payload(payload))

    def __len__(self) -> int:
        return len(self._buffer)
