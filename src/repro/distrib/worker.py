"""Worker of the distributed exploration service.

A worker is a thin loop around the existing evaluation stack: it connects
to a :class:`~repro.distrib.coordinator.Coordinator`, receives the
experiment spec in the welcome message, resolves it through the ordinary
:class:`~repro.api.Experiment` path, and then repeatedly asks for a lease
and evaluates it with :meth:`ExplorationEngine.explore_range`.  Results
never travel over the socket — every record is committed to the shared
:class:`~repro.core.store.ResultStore` the moment it is profiled, so a
worker that dies mid-lease loses nothing it already finished.

Fault behaviour, all inherited from existing machinery rather than added:

* **resume-from-store** — before each lease the worker refreshes its store
  view; the engine's partition stage then answers store-known points
  without re-profiling, so a re-leased range only re-evaluates the points
  the dead predecessor never committed;
* **heartbeats** — the engine's ``progress_callback`` fires per evaluated
  point; the worker piggybacks an interval-gated heartbeat on it.  A
  coordinator answering ``expired`` makes the worker abandon the lease
  (its partial work is already in the store) and request fresh work;
* **spec safety** — the hello carries the worker's ``spec_hash`` when it
  was started from a local experiment file (the coordinator rejects a
  mismatch), and the worker independently refuses to evaluate when its
  resolved engine fingerprint differs from the coordinator's — identical
  specs on diverged code would silently produce non-reproducible metrics
  otherwise.

Exit codes (the harness and CI scripts key off these): 0 sweep done, 2
rejected by the coordinator, 3 connection lost / protocol error, 4
resolved fingerprint differs from the coordinator's.
"""

from __future__ import annotations

import os
import socket
import time

from ..api.experiment import Experiment, ResolvedExperiment
from ..api.spec import ExperimentSpec
from .protocol import ProtocolError, recv_message, send_message

EXIT_DONE = 0
EXIT_REJECTED = 2
EXIT_CONNECTION = 3
EXIT_FINGERPRINT = 4


def _print_flushed(line: str) -> None:
    """Default log consumer: print and flush (pipes are block-buffered)."""
    print(line, flush=True)


class _LeaseExpired(Exception):
    """The coordinator re-assigned the lease being evaluated."""


class _ConnectionLost(Exception):
    """The coordinator went away mid-conversation."""


def parse_address(text: str) -> tuple[str, int]:
    """Parse the CLI form ``HOST:PORT`` into a connectable address."""
    host, separator, port = text.rpartition(":")
    if not separator or not host:
        raise ValueError(f"address must look like HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"address port must be an integer, got {port!r}") from None


class Worker:
    """Evaluate leased enumeration ranges for one coordinator.

    Parameters
    ----------
    address:
        The coordinator's ``(host, port)``.
    spec_hash:
        Canonical hash of the spec this worker *expects* to serve (from a
        local copy of the experiment file); empty means "whatever the
        coordinator serves".  A non-empty mismatch is rejected up front.
    name:
        Worker identity in coordinator logs; defaults to ``worker-<pid>``.
    log:
        Line consumer for progress output (flushed ``print`` by default).
    """

    def __init__(
        self,
        address: tuple[str, int],
        spec_hash: str = "",
        name: str = "",
        log=_print_flushed,
    ) -> None:
        self.address = address
        self.expected_spec_hash = spec_hash
        self.name = name or f"worker-{os.getpid()}"
        self.log = log
        self.heartbeat_interval = 5.0  # replaced by the welcome message
        self.leases_completed = 0
        self._sock: socket.socket | None = None
        self._resolved: ResolvedExperiment | None = None
        self._current_lease: int | None = None
        self._last_beat = 0.0
        # The coordinator broadcasts "done" to every connected worker when
        # the sweep finishes, so a worker mid-round-trip may read it where
        # it expected an ack; any reply position may end the sweep.
        self._sweep_done = False

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> int:
        """Serve leases until the coordinator says done; returns exit code."""
        try:
            welcome = self._join()
        except (OSError, ProtocolError, _ConnectionLost) as error:
            self.log(f"{self.name}: cannot join coordinator: {error}")
            return EXIT_CONNECTION
        if welcome.get("type") == "reject":
            self.log(
                f"{self.name}: rejected: {welcome.get('reason', 'no reason given')}"
            )
            self._close()
            return EXIT_REJECTED
        spec = ExperimentSpec.from_dict(welcome["spec"])
        self.heartbeat_interval = float(welcome.get("heartbeat_interval", 5.0))
        resolved = self._resolve(spec)
        if resolved.engine.fingerprint != welcome.get("fingerprint"):
            self.log(
                f"{self.name}: evaluation fingerprint mismatch — this host "
                "would produce different metrics for the same spec; refusing"
            )
            self._close()
            return EXIT_FINGERPRINT
        try:
            return self._serve_leases()
        except (OSError, ProtocolError, _ConnectionLost) as error:
            self.log(f"{self.name}: connection lost: {error}")
            return EXIT_CONNECTION
        finally:
            self._close()

    def _join(self) -> dict:
        self._sock = socket.create_connection(self.address, timeout=None)
        send_message(
            self._sock,
            {
                "type": "hello",
                "worker": self.name,
                "spec_hash": self.expected_spec_hash,
            },
        )
        return self._recv()

    def _resolve(self, spec: ExperimentSpec) -> ResolvedExperiment:
        self._resolved = Experiment(spec).resolve()
        assert self._resolved.store is not None  # the coordinator pinned a path
        self._prepare_store(self._resolved.store)
        self._resolved.engine.progress_callback = self._progress
        return self._resolved

    def _prepare_store(self, store) -> None:
        """Hook between store open and first lease (fault tests wrap it)."""

    def _close(self) -> None:
        if self._resolved is not None:
            self._resolved.engine.close()
            if self._resolved.store is not None:
                self._resolved.store.close()
            sink = self._resolved.sink
            if sink is not None and hasattr(sink, "finish"):
                sink.finish()
            self._resolved = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None

    # -- the lease loop ----------------------------------------------------

    def _serve_leases(self) -> int:
        while not self._sweep_done:
            reply = self._request({"type": "request"})
            kind = reply.get("type")
            if kind == "lease":
                self._run_lease(reply)
            elif kind == "wait":
                time.sleep(float(reply.get("delay", 1.0)))
            elif kind == "done":
                self._sweep_done = True
            else:
                raise _ConnectionLost(f"unexpected reply of type {kind!r}")
        self.log(
            f"{self.name}: sweep complete after "
            f"{self.leases_completed} lease(s)"
        )
        return EXIT_DONE

    def _run_lease(self, lease: dict) -> None:
        assert self._resolved is not None
        lease_id = int(lease["lease_id"])
        start, stop = int(lease["start"]), int(lease["stop"])
        engine = self._resolved.engine
        store = self._resolved.store
        assert store is not None
        self._current_lease = lease_id
        self._last_beat = time.monotonic()
        # Pick up everything other workers committed since the last lease:
        # the engine's partition stage answers store-known points without
        # re-profiling them (this is what makes a re-leased range cheap —
        # only the dead worker's uncommitted tail is fresh work).
        store.refresh()
        try:
            database = engine.explore_range(start, stop, sink=self._resolved.sink)
        except _LeaseExpired:
            self.log(
                f"{self.name}: lease {lease_id} [{start},{stop}) expired "
                "mid-evaluation; abandoning (committed points are kept)"
            )
            self._current_lease = None
            return
        self._current_lease = None
        self.log(
            f"{self.name}: lease {lease_id} [{start},{stop}) done: "
            f"{database.cache_misses} profiled, {database.store_hits} from "
            f"store, {database.cache_hits} cached"
        )
        self._lease_complete(lease_id)
        self.leases_completed += 1

    def _lease_complete(self, lease_id: int) -> None:
        """Report a fully committed lease (fault tests kill around this)."""
        reply = self._request({"type": "complete", "lease_id": lease_id})
        if reply.get("type") == "done":
            # A done broadcast outran our ack: the sweep finished while the
            # completion was in flight (our points were recovered from the
            # store by another worker).  Exit after this lease.
            self._sweep_done = True

    # -- heartbeating ------------------------------------------------------

    def _progress(self, completed: int, total: int) -> None:
        """Per-point engine callback: heartbeat when the interval elapsed."""
        if self._current_lease is None:
            return
        now = time.monotonic()
        if now - self._last_beat < self.heartbeat_interval:
            return
        self._last_beat = now
        self._send_heartbeat(self._current_lease)

    def _send_heartbeat(self, lease_id: int) -> None:
        """One heartbeat round trip (fault tests drop or delay this)."""
        reply = self._request({"type": "heartbeat", "lease_id": lease_id})
        kind = reply.get("type")
        if kind == "done":
            self._sweep_done = True
            raise _LeaseExpired(lease_id)
        if kind == "expired":
            raise _LeaseExpired(lease_id)

    # -- plumbing ----------------------------------------------------------

    def _request(self, message: dict) -> dict:
        assert self._sock is not None
        send_message(self._sock, message)
        return self._recv()

    def _recv(self) -> dict:
        assert self._sock is not None
        reply = recv_message(self._sock)
        if reply is None:
            raise _ConnectionLost("coordinator closed the connection")
        return reply


def run_worker(
    address: tuple[str, int], spec_hash: str = "", name: str = ""
) -> int:
    """One-shot helper: build a :class:`Worker`, run it, return its exit code."""
    return Worker(address, spec_hash=spec_hash, name=name).run()
