"""Output front-end: ASCII plots, CSV (Excel) export, gnuplot export, dashboard."""

from .ascii_plots import histogram, pareto_plot, scatter_plot
from .excel import (
    export_all_configurations,
    export_pareto_configurations,
    export_tradeoff_summary,
    export_workbook,
)
from .gnuplot import export_gnuplot, write_gnuplot_data, write_gnuplot_script
from .live import LiveDashboardSink
from .report import dashboard, export_artifacts

__all__ = [
    "LiveDashboardSink",
    "dashboard",
    "export_all_configurations",
    "export_artifacts",
    "export_gnuplot",
    "export_pareto_configurations",
    "export_tradeoff_summary",
    "export_workbook",
    "histogram",
    "pareto_plot",
    "scatter_plot",
    "write_gnuplot_data",
    "write_gnuplot_script",
]
