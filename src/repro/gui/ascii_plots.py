"""ASCII scatter / Pareto-curve plots.

The paper's tool has a GUI that plots the Pareto-optimal curves of the
chosen metrics.  In a terminal-only environment this module renders the same
plots as character grids: all explored configurations as dots, the
Pareto-optimal ones as stars, with axis ranges annotated.  The plots are
intentionally simple — their job is to make the shape of the trade-off
visible in a CI log or a README, not to be pretty.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.pareto import non_dominated

#: Characters used for plot points.
POINT_CHAR = "."
FRONT_CHAR = "*"
EMPTY_CHAR = " "


def _scale(value: float, low: float, high: float, steps: int) -> int:
    """Map ``value`` in [low, high] to a grid index in [0, steps-1]."""
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    index = int(round(position * (steps - 1)))
    return max(0, min(steps - 1, index))


def scatter_plot(
    points: Sequence[tuple[float, float]],
    width: int = 70,
    height: int = 22,
    x_label: str = "x",
    y_label: str = "y",
    highlight: Sequence[tuple[float, float]] | None = None,
    title: str = "",
) -> str:
    """Render a 2-D scatter plot; ``highlight`` points are drawn with ``*``.

    The y axis grows upwards (smaller values at the bottom), so for
    minimisation metrics the interesting corner is bottom-left, as in the
    paper's figures.
    """
    if width < 10 or height < 5:
        raise ValueError("plot area too small (need at least 10x5)")
    if not points:
        return "(no points to plot)"
    xs = [point[0] for point in points]
    ys = [point[1] for point in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    grid = [[EMPTY_CHAR] * width for _ in range(height)]

    def place(x: float, y: float, char: str) -> None:
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        grid[row][column] = char

    for x, y in points:
        place(x, y, POINT_CHAR)
    for x, y in highlight or []:
        place(x, y, FRONT_CHAR)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (up: {y_high:.3g}, down: {y_low:.3g})")
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{x_label}: {x_low:.3g} (left) .. {x_high:.3g} (right)")
    legend = f"legend: '{POINT_CHAR}' explored configuration"
    if highlight:
        legend += f", '{FRONT_CHAR}' Pareto-optimal"
    lines.append(legend)
    return "\n".join(lines)


def pareto_plot(
    points: Sequence[tuple[float, float]],
    width: int = 70,
    height: int = 22,
    x_label: str = "memory accesses",
    y_label: str = "memory footprint",
    title: str = "Pareto-optimal configurations",
) -> str:
    """Scatter plot with the non-dominated points highlighted automatically."""
    if not points:
        return "(no points to plot)"
    front_indices = set(non_dominated([tuple(point) for point in points]))
    highlight = [point for index, point in enumerate(points) if index in front_indices]
    return scatter_plot(
        points,
        width=width,
        height=height,
        x_label=x_label,
        y_label=y_label,
        highlight=highlight,
        title=title,
    )


def histogram(
    counts: dict[int, int],
    width: int = 50,
    max_rows: int = 12,
    label: str = "size",
) -> str:
    """Horizontal bar chart of a size histogram (used for workload reports)."""
    if not counts:
        return "(empty histogram)"
    items = sorted(counts.items(), key=lambda item: -item[1])[:max_rows]
    peak = max(count for _value, count in items)
    lines = [f"{label:>10} | count"]
    for value, count in items:
        bar_length = int(round(width * count / peak)) if peak else 0
        lines.append(f"{value:>10} | {'#' * bar_length} {count}")
    return "\n".join(lines)
