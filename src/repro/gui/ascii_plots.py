"""ASCII scatter / Pareto-curve plots.

The paper's tool has a GUI that plots the Pareto-optimal curves of the
chosen metrics.  In a terminal-only environment this module renders the same
plots as character grids: all explored configurations as dots, the
Pareto-optimal ones as stars, with axis ranges annotated.  The plots are
intentionally simple — their job is to make the shape of the trade-off
visible in a CI log or a README, not to be pretty.

The plot functions take any *re-iterable* of ``(x, y)`` pairs — a list, or
a streaming adapter over a result database / persistent store.  They never
materialise the point cloud: one pass establishes the axis ranges (and, for
:func:`pareto_plot`, the incremental 2-D front), a second pass rasterises
into the fixed character grid.  Memory is O(grid + front) however many
points stream through.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.pareto import IncrementalParetoFront

#: Characters used for plot points.
POINT_CHAR = "."
FRONT_CHAR = "*"
EMPTY_CHAR = " "


def _scale(value: float, low: float, high: float, steps: int) -> int:
    """Map ``value`` in [low, high] to a grid index in [0, steps-1]."""
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    index = int(round(position * (steps - 1)))
    return max(0, min(steps - 1, index))


def _render_grid(
    points: Iterable[tuple[float, float]],
    bounds: tuple[float, float, float, float],
    width: int,
    height: int,
    x_label: str,
    y_label: str,
    highlight: Iterable[tuple[float, float]],
    title: str,
) -> str:
    """Rasterise one pass over ``points`` into the framed character grid."""
    x_low, x_high, y_low, y_high = bounds
    grid = [[EMPTY_CHAR] * width for _ in range(height)]

    def place(x: float, y: float, char: str) -> None:
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        grid[row][column] = char

    for x, y in points:
        place(x, y, POINT_CHAR)
    highlighted = False
    for x, y in highlight:
        highlighted = True
        place(x, y, FRONT_CHAR)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (up: {y_high:.3g}, down: {y_low:.3g})")
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{x_label}: {x_low:.3g} (left) .. {x_high:.3g} (right)")
    legend = f"legend: '{POINT_CHAR}' explored configuration"
    if highlighted:
        legend += f", '{FRONT_CHAR}' Pareto-optimal"
    lines.append(legend)
    return "\n".join(lines)


def scatter_plot(
    points: Iterable[tuple[float, float]],
    width: int = 70,
    height: int = 22,
    x_label: str = "x",
    y_label: str = "y",
    highlight: Iterable[tuple[float, float]] | None = None,
    title: str = "",
) -> str:
    """Render a 2-D scatter plot; ``highlight`` points are drawn with ``*``.

    ``points`` may be any re-iterable (it is traversed twice: axis ranges,
    then rasterisation) — nothing is accumulated per point.  The y axis
    grows upwards (smaller values at the bottom), so for minimisation
    metrics the interesting corner is bottom-left, as in the paper's
    figures.
    """
    if width < 10 or height < 5:
        raise ValueError("plot area too small (need at least 10x5)")
    x_low = y_low = float("inf")
    x_high = y_high = float("-inf")
    count = 0
    for x, y in points:
        count += 1
        x_low, x_high = min(x_low, x), max(x_high, x)
        y_low, y_high = min(y_low, y), max(y_high, y)
    if count == 0:
        return "(no points to plot)"
    return _render_grid(
        points,
        (x_low, x_high, y_low, y_high),
        width,
        height,
        x_label,
        y_label,
        highlight or [],
        title,
    )


def pareto_plot(
    points: Iterable[tuple[float, float]],
    width: int = 70,
    height: int = 22,
    x_label: str = "memory accesses",
    y_label: str = "memory footprint",
    title: str = "Pareto-optimal configurations",
) -> str:
    """Scatter plot with the non-dominated points highlighted automatically.

    The 2-D front is maintained incrementally *while* the axis ranges are
    gathered, so the stream is traversed exactly twice (ranges + front,
    then rasterisation) and highlighting costs O(n · front) time and
    O(front) memory instead of the O(n²) batch recomputation.
    """
    if width < 10 or height < 5:
        raise ValueError("plot area too small (need at least 10x5)")
    front: IncrementalParetoFront[tuple[float, float]] = IncrementalParetoFront()
    x_low = y_low = float("inf")
    x_high = y_high = float("-inf")
    count = 0
    for x, y in points:
        count += 1
        x_low, x_high = min(x_low, x), max(x_high, x)
        y_low, y_high = min(y_low, y), max(y_high, y)
        front.add((x, y), (x, y))
    if count == 0:
        return "(no points to plot)"
    return _render_grid(
        points,
        (x_low, x_high, y_low, y_high),
        width,
        height,
        x_label,
        y_label,
        front.items(),
        title,
    )


def histogram(
    counts: dict[int, int],
    width: int = 50,
    max_rows: int = 12,
    label: str = "size",
) -> str:
    """Horizontal bar chart of a size histogram (used for workload reports)."""
    if not counts:
        return "(empty histogram)"
    items = sorted(counts.items(), key=lambda item: -item[1])[:max_rows]
    peak = max(count for _value, count in items)
    lines = [f"{label:>10} | count"]
    for value, count in items:
        bar_length = int(round(width * count / peak)) if peak else 0
        lines.append(f"{value:>10} | {'#' * bar_length} {count}")
    return "\n".join(lines)
