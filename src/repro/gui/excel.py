"""CSV (Excel-importable) export of exploration results.

Thin wrappers over the streaming CSV writer that additionally export a
Pareto-only sheet and a per-parameter summary sheet, matching what a
designer would paste into a spreadsheet to argue for a configuration.
Every exporter accepts an in-memory :class:`ResultDatabase` or a
:class:`~repro.core.results.StreamingResultView` over a persistent store —
rows are written as records stream by.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..core.results import ResultDatabase, StreamingResultView
from ..core.tradeoff import TradeoffAnalysis
from ..profiling.metrics import metric_keys


def export_all_configurations(
    database: "ResultDatabase | StreamingResultView",
    path: str | Path,
    metrics: list[str] | None = None,
) -> int:
    """Write every explored configuration to ``path`` (CSV); returns row count."""
    return database.to_csv(path, metrics=metrics)


def export_pareto_configurations(
    database: "ResultDatabase | StreamingResultView",
    path: str | Path,
    metrics: list[str] | None = None,
) -> int:
    """Write only the Pareto-optimal configurations to ``path`` (CSV)."""
    keys = metrics or metric_keys()
    records = database.pareto_records(keys)
    if not records:
        Path(path).write_text("", encoding="utf-8")
        return 0
    fieldnames = ["configuration_id"]
    fieldnames += sorted({f"param_{k}" for record in records for k in record.parameters})
    fieldnames += keys
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        for record in records:
            row = {"configuration_id": record.configuration_id}
            row.update({f"param_{k}": v for k, v in record.parameters.items()})
            for key in keys:
                row[key] = record.metrics.value(key)
            writer.writerow(row)
    return len(records)


def export_tradeoff_summary(
    database: "ResultDatabase | StreamingResultView",
    path: str | Path,
    metrics: list[str] | None = None,
) -> int:
    """Write the per-metric range / Pareto-gain table (CSV); returns row count."""
    keys = metrics or metric_keys()
    analysis = TradeoffAnalysis(database, pareto_metrics=keys)
    rows = [analysis.metric_tradeoff(key).as_dict() for key in keys]
    fieldnames = list(rows[0].keys()) if rows else []
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def export_workbook(
    database: "ResultDatabase | StreamingResultView",
    directory: str | Path,
    basename: str = "exploration",
    metrics: list[str] | None = None,
) -> dict[str, Path]:
    """Write the three CSV "sheets" into ``directory``; returns their paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "all": directory / f"{basename}_all.csv",
        "pareto": directory / f"{basename}_pareto.csv",
        "tradeoff": directory / f"{basename}_tradeoff.csv",
    }
    export_all_configurations(database, paths["all"], metrics)
    export_pareto_configurations(database, paths["pareto"], metrics)
    export_tradeoff_summary(database, paths["tradeoff"], metrics)
    return paths
