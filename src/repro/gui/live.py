"""Live terminal dashboard over a running sweep.

:class:`LiveDashboardSink` is a :class:`~repro.core.results.ResultSink`
that makes long local and distributed sweeps observable while they run:
it maintains an incremental Pareto front, per-metric value ranges and an
evaluation rate from the record stream, and — when the experiment layer
attaches them — mirrors the engine's memo/store counters and the search
strategy's prune counters.  A compact status block is redrawn in place on
a TTY (ANSI cursor movement) and emitted as single status lines on any
other stream, at most once per ``interval`` seconds.

The dashboard writes to *stderr* by default, so the artefact bytes a run
prints or saves stay untouched — attaching the dashboard never changes
what an exploration produces (tested).  Select it per experiment with
``sink: {"name": "dashboard"}`` in the spec document, or ``dmexplore run
experiment.json --set sink.name=dashboard``.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from ..core.pareto import IncrementalParetoFront
from ..core.results import ExplorationRecord
from ..profiling.metrics import metric_keys


def _compact(value: float) -> str:
    """Short human form of a number (1234567 -> '1.23M')."""
    magnitude = abs(value)
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if magnitude >= scale:
            return f"{value / scale:.2f}{unit}"
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"


class LiveDashboardSink:
    """A :class:`ResultSink` rendering live sweep statistics to a terminal.

    Parameters
    ----------
    metrics:
        Metric selection the Pareto front and the ranges are kept over
        (defaults to every registered metric).
    interval:
        Minimum seconds between two renders; accepted records between
        renders only update the statistics.
    stream:
        Where to draw (default ``sys.stderr``; artefact stdout is never
        touched).  On a TTY the status block is redrawn in place.
    """

    def __init__(
        self,
        metrics: list[str] | None = None,
        interval: float = 0.5,
        stream: TextIO | None = None,
    ) -> None:
        self.metrics = list(metrics or metric_keys())
        self.interval = float(interval)
        self.stream = stream if stream is not None else sys.stderr
        self.front: IncrementalParetoFront[ExplorationRecord] = IncrementalParetoFront()
        self.seen = 0
        self.feasible = 0
        self.renders = 0
        #: metric name -> (lowest, highest) value observed so far.
        self.ranges: dict[str, tuple[float, float]] = {}
        self._engine = None
        self._strategy = None
        self._windows = None
        self._started = time.monotonic()
        self._last_render = 0.0
        self._block_height = 0

    # -- attachment (called by the experiment layer) -----------------------

    def attach_engine(self, engine) -> None:
        """Mirror ``engine``'s memo (L1) and store (L2) counters live."""
        self._engine = engine

    def attach_strategy(self, strategy) -> None:
        """Mirror ``strategy``'s dominance-prune counters live."""
        self._strategy = strategy

    def attach_windows(self, analysis) -> None:
        """Mirror a windowed analysis' per-window front sizes live.

        ``analysis`` is anything with a ``status_line() -> str`` method
        (:class:`repro.stream.WindowedAnalysis` in practice); the line is
        re-read at every render, so it tracks the fronts as configurations
        stream in.  Attaching the dashboard never changes the produced
        artefact — the window section bytes come from the analysis itself.
        """
        self._windows = analysis

    # -- the sink protocol -------------------------------------------------

    def accept(self, record: ExplorationRecord) -> None:
        self.seen += 1
        if record.feasible:
            self.feasible += 1
            vector = record.metric_vector(self.metrics)
            self.front.add(record, vector)
            for name, value in zip(self.metrics, vector):
                low, high = self.ranges.get(name, (value, value))
                self.ranges[name] = (min(low, value), max(high, value))
        now = time.monotonic()
        if now - self._last_render >= self.interval:
            self._last_render = now
            self.render()

    # -- rendering ---------------------------------------------------------

    def rate(self) -> float:
        """Records accepted per second since the sink was created."""
        elapsed = time.monotonic() - self._started
        return self.seen / elapsed if elapsed > 0 else 0.0

    def status_lines(self) -> list[str]:
        """The current status block, one string per line (render-free)."""
        lines = [
            f"sweep: {self.seen} evaluated ({self.feasible} feasible) | "
            f"front: {len(self.front.items())} | "
            f"rate: {_compact(self.rate())}/s"
        ]
        if self.ranges:
            spans = "  ".join(
                f"{name}=[{_compact(low)}, {_compact(high)}]"
                for name, (low, high) in self.ranges.items()
            )
            lines.append(f"ranges: {spans}")
        counters = []
        engine = self._engine
        if engine is not None:
            counters.append(
                f"memo {engine.cache_hits}/{engine.cache_hits + engine.cache_misses}"
            )
            if engine.store is not None:
                counters.append(
                    f"store {engine.store_hits}/"
                    f"{engine.store_hits + engine.store_misses} "
                    f"(loaded {engine.store.loaded})"
                )
        strategy = self._strategy
        if strategy is not None:
            counters.append(
                f"pruned {strategy.prune_skipped}"
                f"+{strategy.prune_predicted} predicted"
            )
            if getattr(strategy, "surrogate_skips", 0):
                counters.append(f"surrogate {strategy.surrogate_skips}")
        if counters:
            lines.append("counters: " + " | ".join(counters))
        if self._windows is not None:
            lines.append(self._windows.status_line())
        return lines

    def render(self, final: bool = False) -> None:
        """Draw the status block (in place on a TTY, as a line otherwise)."""
        self.renders += 1
        lines = self.status_lines()
        stream = self.stream
        if getattr(stream, "isatty", lambda: False)():
            # Rewind over the previous block, then redraw line by line.
            if self._block_height:
                stream.write(f"\x1b[{self._block_height}F")
            stream.write("".join(f"\x1b[2K{line}\n" for line in lines))
            self._block_height = len(lines)
            if final:
                self._block_height = 0
        else:
            stream.write(" | ".join(lines) + "\n")
        stream.flush()

    def finish(self) -> None:
        """Render the final state (called by the experiment layer at the end)."""
        self.render(final=True)

    def records(self) -> list[ExplorationRecord]:
        """Current front members, in arrival order."""
        return self.front.items()
