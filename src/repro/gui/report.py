"""Aggregated textual "dashboard" combining report, plot and export paths.

This is the closest terminal equivalent of the paper's GUI front page: the
trade-off table, the ASCII Pareto plot of a chosen metric pair and pointers
to the exported CSV / gnuplot artefacts.
"""

from __future__ import annotations

from pathlib import Path

from ..core.reporting import exploration_report
from ..core.results import ResultDatabase
from ..profiling.metrics import metric_keys, metric_spec
from .ascii_plots import pareto_plot
from .excel import export_workbook
from .gnuplot import export_gnuplot


def dashboard(
    database: ResultDatabase,
    x_metric: str = "accesses",
    y_metric: str = "footprint",
    title: str = "",
    plot_width: int = 70,
    plot_height: int = 20,
) -> str:
    """Render the full textual dashboard for one exploration."""
    points = [
        (record.metrics.value(x_metric), record.metrics.value(y_metric))
        for record in database
    ]
    plot = pareto_plot(
        points,
        width=plot_width,
        height=plot_height,
        x_label=metric_spec(x_metric).label,
        y_label=metric_spec(y_metric).label,
        title=f"{metric_spec(y_metric).label} vs {metric_spec(x_metric).label}",
    )
    report = exploration_report(database, title=title or database.name)
    return report + "\n\n" + plot


def export_artifacts(
    database: ResultDatabase,
    directory: str | Path,
    basename: str = "exploration",
    metrics: list[str] | None = None,
) -> dict[str, Path]:
    """Export every file artefact (CSV sheets + gnuplot files) to ``directory``."""
    directory = Path(directory)
    keys = metrics or metric_keys()
    paths = dict(export_workbook(database, directory, basename=basename, metrics=keys))
    data_path, script_path = export_gnuplot(database, directory, basename=basename, metrics=keys)
    paths["gnuplot_data"] = data_path
    paths["gnuplot_script"] = script_path
    return paths
