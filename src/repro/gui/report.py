"""Aggregated textual "dashboard" combining report, plot and export paths.

This is the closest terminal equivalent of the paper's GUI front page: the
trade-off table, the ASCII Pareto plot of a chosen metric pair and pointers
to the exported CSV / gnuplot artefacts.

Every renderer here consumes records *as a stream*: ``database`` may be an
in-memory :class:`~repro.core.results.ResultDatabase` or a
:class:`~repro.core.results.StreamingResultView` over a persistent store —
the dashboard and the exports re-iterate the records instead of snapshotting
them, so a 19 440-point store renders in O(front) record memory.
"""

from __future__ import annotations

from collections.abc import Iterator
from pathlib import Path

from ..core.reporting import exploration_report
from ..core.results import ResultDatabase, StreamingResultView
from ..profiling.metrics import metric_keys, metric_spec
from .ascii_plots import pareto_plot
from .excel import export_workbook
from .gnuplot import export_gnuplot


class _MetricPointCloud:
    """Re-iterable (x, y) adapter over a record source, for the plots."""

    def __init__(
        self,
        database: "ResultDatabase | StreamingResultView",
        x_metric: str,
        y_metric: str,
    ) -> None:
        self._database = database
        self._x_metric = x_metric
        self._y_metric = y_metric

    def __iter__(self) -> Iterator[tuple[float, float]]:
        for record in self._database:
            yield (
                record.metrics.value(self._x_metric),
                record.metrics.value(self._y_metric),
            )


def dashboard(
    database: "ResultDatabase | StreamingResultView",
    x_metric: str = "accesses",
    y_metric: str = "footprint",
    title: str = "",
    plot_width: int = 70,
    plot_height: int = 20,
    metrics: list[str] | None = None,
) -> str:
    """Render the full textual dashboard for one exploration.

    ``metrics`` restricts the emitted metric set (table, listing, knee)
    exactly as in :func:`~repro.core.reporting.exploration_report`.
    """
    plot = pareto_plot(
        _MetricPointCloud(database, x_metric, y_metric),
        width=plot_width,
        height=plot_height,
        x_label=metric_spec(x_metric).label,
        y_label=metric_spec(y_metric).label,
        title=f"{metric_spec(y_metric).label} vs {metric_spec(x_metric).label}",
    )
    report = exploration_report(
        database, title=title or database.name, metrics=metrics
    )
    return report + "\n\n" + plot


def export_artifacts(
    database: "ResultDatabase | StreamingResultView",
    directory: str | Path,
    basename: str = "exploration",
    metrics: list[str] | None = None,
) -> dict[str, Path]:
    """Export every file artefact (CSV sheets + gnuplot files) to ``directory``."""
    directory = Path(directory)
    keys = metrics or metric_keys()
    paths = dict(export_workbook(database, directory, basename=basename, metrics=keys))
    data_path, script_path = export_gnuplot(database, directory, basename=basename, metrics=keys)
    paths["gnuplot_data"] = data_path
    paths["gnuplot_script"] = script_path
    return paths
