"""Memory-hierarchy substrate: modules, hierarchy, pool mapping, energy model."""

from .access import (
    AccessBreakdown,
    LevelAccesses,
    breakdown_accesses,
    footprint_by_level,
)
from .energy import (
    DEFAULT_CPU_ENERGY_NJ_PER_OP,
    DEFAULT_CPU_OVERHEAD_CYCLES,
    DEFAULT_STATIC_NJ_PER_BYTE,
    EnergyModel,
)
from .hierarchy import (
    MemoryHierarchy,
    embedded_three_level,
    embedded_two_level,
    flat_main_memory,
)
from .mapping import MappedPools, PoolMapping, PoolPlacement
from .module import (
    TECHNOLOGY_PRESETS,
    MemoryModule,
    main_memory,
    module_from_preset,
    onchip_sram,
    scratchpad,
)

__all__ = [
    "AccessBreakdown",
    "DEFAULT_CPU_ENERGY_NJ_PER_OP",
    "DEFAULT_CPU_OVERHEAD_CYCLES",
    "DEFAULT_STATIC_NJ_PER_BYTE",
    "EnergyModel",
    "LevelAccesses",
    "MappedPools",
    "MemoryHierarchy",
    "MemoryModule",
    "PoolMapping",
    "PoolPlacement",
    "TECHNOLOGY_PRESETS",
    "breakdown_accesses",
    "embedded_three_level",
    "embedded_two_level",
    "flat_main_memory",
    "footprint_by_level",
    "main_memory",
    "module_from_preset",
    "onchip_sram",
    "scratchpad",
]
