"""Per-level access accounting.

The profiler turns the per-pool access counters collected by the allocator
into per-memory-level totals using the pool mapping, producing the
"mem. accesses ... for each level of the memory hierarchy" breakdown the
paper's profiling step reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..allocator.composed import ComposedAllocator
from .mapping import PoolMapping


@dataclass
class LevelAccesses:
    """Access counts attributed to one memory module."""

    module_name: str
    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Reads plus writes attributed to this module."""
        return self.reads + self.writes


@dataclass
class AccessBreakdown:
    """Accesses split by memory-hierarchy level.

    ``dispatch_accesses`` (the composed allocator's routing reads) are
    charged to the level holding the dispatch table, conventionally the
    fastest module, because the generated allocator's dispatch code and
    size table are small and resident near the processor.
    """

    levels: dict[str, LevelAccesses] = field(default_factory=dict)
    dispatch_accesses: int = 0
    dispatch_module: str = ""

    def level(self, module_name: str) -> LevelAccesses:
        """The (created-on-demand) per-module counter for ``module_name``."""
        if module_name not in self.levels:
            self.levels[module_name] = LevelAccesses(module_name)
        return self.levels[module_name]

    @property
    def total_reads(self) -> int:
        """Reads summed over every level."""
        return sum(level.reads for level in self.levels.values())

    @property
    def total_writes(self) -> int:
        """Writes summed over every level."""
        return sum(level.writes for level in self.levels.values())

    @property
    def total(self) -> int:
        """All accesses across the hierarchy (the paper's accesses metric)."""
        return self.total_reads + self.total_writes

    def as_dict(self) -> dict:
        """Plain-dict form (module -> reads/writes/total) for JSON reports."""
        return {
            name: {"reads": level.reads, "writes": level.writes, "total": level.total}
            for name, level in self.levels.items()
        }


def breakdown_accesses(
    allocator: ComposedAllocator, mapping: PoolMapping
) -> AccessBreakdown:
    """Attribute every pool's accesses to the memory module it is mapped on."""
    breakdown = AccessBreakdown()
    for pool in allocator.pools:
        module = mapping.module_of(pool.name)
        level = breakdown.level(module.name)
        level.reads += pool.stats.accesses.reads
        level.writes += pool.stats.accesses.writes
    breakdown.dispatch_accesses = allocator.dispatch_accesses
    breakdown.dispatch_module = mapping.hierarchy.fastest.name
    # The dispatch table lives in the fastest module; count its accesses there
    # as writes=0/reads=dispatch (a table lookup is a read).
    breakdown.level(breakdown.dispatch_module).reads += allocator.dispatch_accesses
    breakdown.dispatch_accesses = allocator.dispatch_accesses
    return breakdown


def footprint_by_level(
    allocator: ComposedAllocator, mapping: PoolMapping, peak: bool = True
) -> dict[str, int]:
    """Bytes of footprint per memory module (peak by default)."""
    totals: dict[str, int] = {}
    for pool in allocator.pools:
        module = mapping.module_of(pool.name)
        value = pool.stats.peak_footprint if peak else pool.stats.footprint
        totals[module.name] = totals.get(module.name, 0) + value
    return totals
