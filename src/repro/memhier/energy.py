"""Energy and timing model.

Combines per-level access counts with the per-access energy / latency of
each memory module to produce the two derived metrics of the paper's
profiling step: *memory energy consumption* and *execution time*.

The model is deliberately simple and analytic:

* energy  = Σ_level (reads · E_read + writes · E_write) + ops · E_cpu + static
* cycles  = Σ_level (accesses · latency) + ops · CPU_OVERHEAD_CYCLES

The per-operation CPU overhead (cycles and energy) accounts for the
non-memory work of the application between dynamic-memory operations
(protocol processing, arithmetic, branches); it dilutes the execution-time
and energy savings relative to the raw access savings, which is why the
paper reports a 27.9 % execution-time gain next to a 4.1× access gain.  The
default values are calibrated so that, on the Easyport-style workload, the
application's compute time is of the same order as its memory time — the
regime the paper's platform operates in.
"""

from __future__ import annotations

from dataclasses import dataclass

from .access import AccessBreakdown
from .hierarchy import MemoryHierarchy

#: Cycles of CPU (non-allocator-memory) work charged per application
#: allocation or free, modelling the surrounding application computation.
DEFAULT_CPU_OVERHEAD_CYCLES = 3000

#: Core (non-memory) energy charged per application allocation or free, in
#: nanojoules.  The paper's energy metric is *memory* energy consumption, so
#: the default is zero; users modelling whole-system energy can raise it.
DEFAULT_CPU_ENERGY_NJ_PER_OP = 0.0

#: Static leakage energy charged per byte of peak footprint per level, in
#: nanojoules; keeps configurations from claiming free unlimited footprint.
DEFAULT_STATIC_NJ_PER_BYTE = 0.002


@dataclass
class EnergyModel:
    """Analytic energy/time model over a memory hierarchy."""

    hierarchy: MemoryHierarchy
    cpu_overhead_cycles: int = DEFAULT_CPU_OVERHEAD_CYCLES
    cpu_energy_nj_per_op: float = DEFAULT_CPU_ENERGY_NJ_PER_OP
    static_nj_per_byte: float = DEFAULT_STATIC_NJ_PER_BYTE

    def dynamic_energy_nj(self, breakdown: AccessBreakdown) -> float:
        """Dynamic (access) energy in nanojoules."""
        total = 0.0
        for name, level in breakdown.levels.items():
            module = self.hierarchy.module(name)
            total += module.energy_for(level.reads, level.writes)
        return total

    def static_energy_nj(self, footprint_by_level: dict[str, int]) -> float:
        """Leakage-style energy proportional to the peak footprint per level."""
        total = 0.0
        for name, footprint in footprint_by_level.items():
            # Larger, slower memories leak proportionally more per byte in
            # this simple model only through their size, not their kind.
            total += footprint * self.static_nj_per_byte
        return total

    def cpu_energy_nj(self, operation_count: int) -> float:
        """Core energy of the application work between DM operations."""
        if operation_count < 0:
            raise ValueError("operation count must be non-negative")
        return operation_count * self.cpu_energy_nj_per_op

    def total_energy_nj(
        self,
        breakdown: AccessBreakdown,
        footprint_by_level: dict[str, int],
        operation_count: int = 0,
    ) -> float:
        """Dynamic + static + per-operation CPU energy in nanojoules."""
        return (
            self.dynamic_energy_nj(breakdown)
            + self.static_energy_nj(footprint_by_level)
            + self.cpu_energy_nj(operation_count)
        )

    def memory_cycles(self, breakdown: AccessBreakdown) -> int:
        """Cycles spent in memory accesses."""
        total = 0
        for name, level in breakdown.levels.items():
            module = self.hierarchy.module(name)
            total += module.cycles_for(level.total)
        return total

    def execution_cycles(self, breakdown: AccessBreakdown, operation_count: int) -> int:
        """Total execution time in cycles (memory + per-operation CPU work)."""
        if operation_count < 0:
            raise ValueError("operation count must be non-negative")
        return self.memory_cycles(breakdown) + operation_count * self.cpu_overhead_cycles

    def describe(self) -> str:
        """One-line summary of the model constants, for reports and logs."""
        return (
            f"EnergyModel(hierarchy={self.hierarchy.name}, "
            f"cpu_overhead={self.cpu_overhead_cycles} cycles/op, "
            f"cpu_energy={self.cpu_energy_nj_per_op} nJ/op, "
            f"static={self.static_nj_per_byte} nJ/byte)"
        )
