"""Memory hierarchy: an ordered collection of memory modules.

The hierarchy is purely declarative — a named list of modules from fastest
and smallest to slowest and largest.  Pools are attached to modules through
:class:`repro.memhier.mapping.PoolMapping`; the hierarchy only answers
"which modules exist, in what order, with how much room".
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .module import MemoryModule, main_memory, onchip_sram, scratchpad


class MemoryHierarchy:
    """Ordered set of memory modules (fastest first).

    Parameters
    ----------
    modules:
        Modules ordered from the closest/fastest level to the farthest.
        Names must be unique.
    name:
        Label used in reports ("embedded_2level", "easyport_platform"...).
    """

    def __init__(self, modules: Iterable[MemoryModule], name: str = "hierarchy") -> None:
        self.modules = list(modules)
        if not self.modules:
            raise ValueError("a memory hierarchy needs at least one module")
        names = [module.name for module in self.modules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate memory module names: {names}")
        self.name = name
        self._by_name = {module.name: module for module in self.modules}

    def __iter__(self) -> Iterator[MemoryModule]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def module(self, name: str) -> MemoryModule:
        """Return the module called ``name`` (raises KeyError when missing)."""
        try:
            return self._by_name[name]
        except KeyError:
            valid = ", ".join(self._by_name)
            raise KeyError(
                f"no memory module named '{name}' in hierarchy '{self.name}' "
                f"(available: {valid})"
            ) from None

    def module_names(self) -> list[str]:
        """Module names in hierarchy order (fastest first)."""
        return [module.name for module in self.modules]

    @property
    def fastest(self) -> MemoryModule:
        """The first (closest, lowest-latency) module — e.g. the scratchpad."""
        return self.modules[0]

    @property
    def slowest(self) -> MemoryModule:
        """The last (farthest, highest-latency) module — e.g. main memory."""
        return self.modules[-1]

    @property
    def background_module(self) -> MemoryModule:
        """The module unmapped pools default to (largest / last level)."""
        return self.modules[-1]

    def total_capacity(self) -> int | None:
        """Sum of bounded module sizes; ``None`` when any level is unbounded."""
        total = 0
        for module in self.modules:
            if module.size is None:
                return None
            total += module.size
        return total

    def describe(self) -> str:
        """Multi-line listing of the hierarchy's levels, for reports."""
        lines = [f"Memory hierarchy '{self.name}':"]
        for level, module in enumerate(self.modules):
            lines.append(f"  L{level}: {module.describe()}")
        return "\n".join(lines)


def embedded_two_level(
    scratchpad_size: int = 64 * 1024,
    main_size: int | None = 4 * 1024 * 1024,
    name: str = "embedded_2level",
) -> MemoryHierarchy:
    """The platform of the paper's running example.

    A 64 KB L1 scratchpad plus a 4 MB main memory — the hierarchy the paper
    uses to illustrate pool mapping ("a dedicated pool for 74-byte blocks
    onto the L1 64 KB scratchpad ... a general pool ... in the 4 MB main
    memory").
    """
    return MemoryHierarchy(
        [scratchpad(size=scratchpad_size), main_memory(size=main_size)],
        name=name,
    )


def embedded_three_level(
    scratchpad_size: int = 64 * 1024,
    sram_size: int = 512 * 1024,
    main_size: int | None = 8 * 1024 * 1024,
    name: str = "embedded_3level",
) -> MemoryHierarchy:
    """A richer platform: scratchpad + on-chip SRAM + off-chip main memory."""
    return MemoryHierarchy(
        [
            scratchpad(size=scratchpad_size),
            onchip_sram(size=sram_size),
            main_memory(size=main_size),
        ],
        name=name,
    )


def flat_main_memory(
    main_size: int | None = None, name: str = "flat_main_memory"
) -> MemoryHierarchy:
    """Single-level hierarchy: everything in main memory.

    This is the platform view of the OS-based baseline allocators, which do
    not exploit any on-chip memory.
    """
    return MemoryHierarchy([main_memory(size=main_size)], name=name)
