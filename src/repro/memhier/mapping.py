"""Pool-to-memory-module mapping.

The second input of the DATE'06 tool (besides the parameter arrays) is the
memory hierarchy description and the decision of *where each pool lives*.
:class:`PoolMapping` records that decision, validates it against module
capacities, and hands each pool a bounded :class:`PoolAddressSpace` carved
out of its module, so that a scratchpad-mapped pool physically cannot grow
beyond the scratchpad and spills to the fallback pool instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..allocator.errors import PoolCapacityError
from ..allocator.heap import AddressSpaceAllocator, PoolAddressSpace
from .hierarchy import MemoryHierarchy
from .module import MemoryModule

#: Address stride separating memory modules in the global simulated address
#: space (1 PiB apart — far larger than any module capacity, so pools on
#: different modules can never produce colliding block addresses).
MODULE_ADDRESS_STRIDE = 1 << 50


@dataclass
class PoolPlacement:
    """One pool's placement in the hierarchy.

    ``reserved_bytes`` of ``None`` means "whatever is left of the module"
    (typical for the general fallback pool in main memory).
    """

    pool_name: str
    module_name: str
    reserved_bytes: int | None = None


class PoolMapping:
    """Validated assignment of pools to memory modules.

    Parameters
    ----------
    hierarchy:
        The platform's memory hierarchy.
    placements:
        One :class:`PoolPlacement` per pool.  Pools not mentioned default to
        the hierarchy's background (last-level) module.
    """

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        placements: list[PoolPlacement] | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.placements: dict[str, PoolPlacement] = {}
        # Every module gets a disjoint slice of the global simulated address
        # space so that block addresses are unique across the whole platform
        # (the composed allocator routes frees by address).
        self._carvers: dict[str, AddressSpaceAllocator] = {
            module.name: AddressSpaceAllocator(
                module.size, base_offset=index * MODULE_ADDRESS_STRIDE
            )
            for index, module in enumerate(hierarchy)
        }
        for placement in placements or []:
            self.place(placement)

    def place(self, placement: PoolPlacement) -> None:
        """Register a placement (validates module existence and capacity)."""
        if placement.pool_name in self.placements:
            raise ValueError(f"pool '{placement.pool_name}' is already placed")
        module = self.hierarchy.module(placement.module_name)
        if (
            placement.reserved_bytes is not None
            and module.size is not None
            and placement.reserved_bytes > module.size
        ):
            raise PoolCapacityError(
                placement.pool_name,
                placement.reserved_bytes,
                module.name,
                module.size,
            )
        self.placements[placement.pool_name] = placement

    def place_pool(
        self, pool_name: str, module_name: str, reserved_bytes: int | None = None
    ) -> None:
        """Convenience wrapper around :meth:`place`."""
        self.place(PoolPlacement(pool_name, module_name, reserved_bytes))

    def module_of(self, pool_name: str) -> MemoryModule:
        """Memory module backing ``pool_name`` (background module if unplaced)."""
        placement = self.placements.get(pool_name)
        if placement is None:
            return self.hierarchy.background_module
        return self.hierarchy.module(placement.module_name)

    def address_space_for(self, pool_name: str) -> PoolAddressSpace:
        """Create the bounded address space for ``pool_name``.

        The space's capacity comes from the placement's reservation (or the
        module's remaining room) so that a scratchpad pool cannot silently
        outgrow the scratchpad.
        """
        placement = self.placements.get(pool_name)
        if placement is None:
            module = self.hierarchy.background_module
            placement = PoolPlacement(pool_name, module.name, None)
        carver = self._carvers[placement.module_name]
        try:
            base, capacity = carver.reserve(pool_name, placement.reserved_bytes)
        except Exception as exc:
            module = self.hierarchy.module(placement.module_name)
            raise PoolCapacityError(
                pool_name,
                placement.reserved_bytes or 0,
                module.name,
                carver.remaining() or 0,
            ) from exc
        return PoolAddressSpace(base=base, capacity=capacity, name=pool_name)

    def pools_on(self, module_name: str) -> list[str]:
        """Names of pools placed on ``module_name``."""
        return [
            name
            for name, placement in self.placements.items()
            if placement.module_name == module_name
        ]

    def validate_reservations(self) -> None:
        """Check that explicit reservations fit in each bounded module."""
        per_module: dict[str, int] = {}
        for placement in self.placements.values():
            if placement.reserved_bytes is None:
                continue
            per_module.setdefault(placement.module_name, 0)
            per_module[placement.module_name] += placement.reserved_bytes
        for module_name, total in per_module.items():
            module = self.hierarchy.module(module_name)
            if module.size is not None and total > module.size:
                raise PoolCapacityError(
                    f"(all pools on {module_name})", total, module_name, module.size
                )

    def describe(self) -> str:
        """Multi-line listing of pool placements, for reports."""
        lines = [f"Pool mapping over hierarchy '{self.hierarchy.name}':"]
        for name, placement in sorted(self.placements.items()):
            reserved = (
                "remaining space"
                if placement.reserved_bytes is None
                else f"{placement.reserved_bytes} B"
            )
            lines.append(f"  {name} -> {placement.module_name} ({reserved})")
        if not self.placements:
            lines.append("  (all pools default to the background module)")
        return "\n".join(lines)


@dataclass
class MappedPools:
    """Result of binding pools to a mapping: ready-to-use address spaces."""

    mapping: PoolMapping
    spaces: dict[str, PoolAddressSpace] = field(default_factory=dict)

    def space_for(self, pool_name: str) -> PoolAddressSpace:
        """The (created-on-demand) bounded address space of ``pool_name``."""
        if pool_name not in self.spaces:
            self.spaces[pool_name] = self.mapping.address_space_for(pool_name)
        return self.spaces[pool_name]
