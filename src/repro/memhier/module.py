"""Memory modules: the physical memories pools can be mapped onto.

A :class:`MemoryModule` models one addressable memory in the platform's
hierarchy — an L1 scratchpad, an on-chip SRAM, an off-chip SDRAM — with the
three properties the exploration needs:

* capacity (bytes), which bounds the pools mapped onto it,
* energy per access (nJ), used for the energy metric,
* access latency (cycles), used for the execution-time metric.

The numeric presets in :data:`TECHNOLOGY_PRESETS` are CACTI-like orders of
magnitude for a ~130 nm embedded platform of the paper's era; absolute
values do not matter for the reproduction (only ratios between levels do),
and they can be overridden per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemoryModule:
    """One level of the memory hierarchy.

    Attributes
    ----------
    name:
        Unique identifier used by pool mappings ("l1_scratchpad", "sdram"...).
    size:
        Capacity in bytes; ``None`` models a practically unbounded main
        memory.
    read_energy_nj / write_energy_nj:
        Energy per read / write access in nanojoules.
    latency_cycles:
        Access latency in processor cycles.
    kind:
        Informal technology label ("scratchpad", "sram", "dram"), used only
        for reporting.
    """

    name: str
    size: int | None
    read_energy_nj: float
    write_energy_nj: float
    latency_cycles: int
    kind: str = "sram"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("memory module name must be non-empty")
        if self.size is not None and self.size <= 0:
            raise ValueError(f"memory module size must be positive, got {self.size}")
        if self.read_energy_nj < 0 or self.write_energy_nj < 0:
            raise ValueError("per-access energy must be non-negative")
        if self.latency_cycles <= 0:
            raise ValueError(f"latency must be positive, got {self.latency_cycles}")

    @property
    def is_bounded(self) -> bool:
        """True when the module has a finite capacity that pools can exhaust."""
        return self.size is not None

    def energy_for(self, reads: int, writes: int) -> float:
        """Energy in nJ for the given access counts."""
        if reads < 0 or writes < 0:
            raise ValueError("access counts must be non-negative")
        return reads * self.read_energy_nj + writes * self.write_energy_nj

    def cycles_for(self, accesses: int) -> int:
        """Cycles spent on ``accesses`` accesses to this module."""
        if accesses < 0:
            raise ValueError("access count must be non-negative")
        return accesses * self.latency_cycles

    def describe(self) -> str:
        """One-line summary (name, kind, size, energies, latency) for reports."""
        size = "unbounded" if self.size is None else f"{self.size} B"
        return (
            f"{self.name} ({self.kind}, {size}, "
            f"R {self.read_energy_nj} nJ / W {self.write_energy_nj} nJ, "
            f"{self.latency_cycles} cycles)"
        )


def scratchpad(name: str = "l1_scratchpad", size: int = 64 * 1024) -> MemoryModule:
    """Small, fast, low-energy on-chip scratchpad (the paper's L1 64 KB)."""
    return MemoryModule(
        name=name,
        size=size,
        read_energy_nj=0.05,
        write_energy_nj=0.06,
        latency_cycles=1,
        kind="scratchpad",
    )


def onchip_sram(name: str = "l2_sram", size: int = 512 * 1024) -> MemoryModule:
    """Mid-size on-chip SRAM (L2-style)."""
    return MemoryModule(
        name=name,
        size=size,
        read_energy_nj=0.25,
        write_energy_nj=0.30,
        latency_cycles=4,
        kind="sram",
    )


def main_memory(name: str = "main_memory", size: int | None = 4 * 1024 * 1024) -> MemoryModule:
    """Off-chip main memory (the paper's 4 MB main memory)."""
    return MemoryModule(
        name=name,
        size=size,
        read_energy_nj=1.8,
        write_energy_nj=2.1,
        latency_cycles=20,
        kind="dram",
    )


#: Named technology presets used by examples and benchmarks.
TECHNOLOGY_PRESETS: dict[str, dict[str, float]] = {
    "scratchpad": {"read_nj": 0.05, "write_nj": 0.06, "latency": 1},
    "sram": {"read_nj": 0.25, "write_nj": 0.30, "latency": 4},
    "dram": {"read_nj": 1.8, "write_nj": 2.1, "latency": 20},
}


def module_from_preset(
    name: str, preset: str, size: int | None
) -> MemoryModule:
    """Build a module from a :data:`TECHNOLOGY_PRESETS` entry."""
    try:
        values = TECHNOLOGY_PRESETS[preset]
    except KeyError:
        valid = ", ".join(sorted(TECHNOLOGY_PRESETS))
        raise ValueError(f"unknown technology preset '{preset}' (valid: {valid})") from None
    return MemoryModule(
        name=name,
        size=size,
        read_energy_nj=values["read_nj"],
        write_energy_nj=values["write_nj"],
        latency_cycles=int(values["latency"]),
        kind=preset,
    )
