"""Profiling substrate: traces, trace-driven profiler, metrics, logs and parser."""

from .batch import BatchReplayEngine
from .events import AllocationEvent, EventKind, alloc, free
from .logformat import (
    ProfilingLogWriter,
    format_event_lines,
    format_level_lines,
    format_pool_lines,
    format_result_line,
    log_to_string,
    write_log,
)
from .metrics import (
    METRICS,
    LevelMetrics,
    MetricSet,
    MetricSpec,
    ProfileResult,
    improvement_factor,
    metric_keys,
    metric_spec,
    percent_decrease,
)
from .parser import (
    LogParseError,
    ParsedLog,
    ProfilingLogParser,
    iter_result_metrics,
    parse_log,
    parse_log_text,
)
from .profiler import (
    DEFAULT_PAYLOAD_ACCESS_FACTOR,
    Profiler,
    ProfilerOptions,
    profile_trace,
)
from .tracer import AllocationTrace, TraceError, TraceSummary

__all__ = [
    "AllocationEvent",
    "AllocationTrace",
    "BatchReplayEngine",
    "DEFAULT_PAYLOAD_ACCESS_FACTOR",
    "EventKind",
    "LevelMetrics",
    "LogParseError",
    "METRICS",
    "MetricSet",
    "MetricSpec",
    "ParsedLog",
    "ProfileResult",
    "Profiler",
    "ProfilerOptions",
    "ProfilingLogParser",
    "ProfilingLogWriter",
    "TraceError",
    "TraceSummary",
    "alloc",
    "format_event_lines",
    "format_level_lines",
    "format_pool_lines",
    "format_result_line",
    "free",
    "improvement_factor",
    "iter_result_metrics",
    "log_to_string",
    "metric_keys",
    "metric_spec",
    "parse_log",
    "parse_log_text",
    "percent_decrease",
    "profile_trace",
    "write_log",
]
