"""Batch-first trace replay: one trace sweep evaluates N configurations.

PR 5's columnar fast path made a *single* replay cheap; the remaining cost
of an exhaustive sweep is that the same :class:`CompiledTrace` is still
swept once per configuration.  This module amortises the sweep itself.

The key observation is that a composed allocator built by
:func:`repro.core.configuration.configuration_from_point` routes every
request *statically*: dedicated pools are strict (they accept exactly their
block size) and the general pool accepts everything.  The event stream each
pool sees therefore depends only on (a) the set of dedicated block sizes
and (b) — for a dedicated pool — its own block size, never on the other
pools' policies.  Two configurations that share a dedicated pool (same
kind, block size and capacity) hand it the *identical* sub-stream, so its
final :class:`~repro.allocator.stats.PoolStats` can be simulated once and
shared; likewise two configurations with the same general-pool policy tuple
and the same dedicated-size set share the general pool's entire replay.

:class:`BatchReplayEngine` exploits this:

* the compiled columns are partitioned **once** per dedicated-size set into
  per-pool event streams (flat integer lists: ``slot`` for an ALLOC,
  ``~slot`` for a FREE), with the stream's dispatch/payload/alloc totals
  precomputed so the per-event work inside a simulation is pure allocator
  state;
* each *pool group* — ``(kind, block size, capacity)`` for dedicated pools,
  ``(size set, policies, chunk)`` for general pools — is simulated once and
  cached, in struct-of-arrays form for the general kernel (flat
  address/size columns instead of Block objects);
* general-pool groups are cached **capacity-independently**: a simulation
  whose backing store never grows past ``C`` bytes is byte-identical under
  any capacity ≥ ``C`` (growth is monotone), so one unbounded run serves
  every placement variant it fits in, and only genuinely overflowing
  (group, capacity) pairs re-run bounded;
* a configuration's result is then assembled from its groups' cached
  counters: per-config ``PoolStats`` deltas generalise PR 5's two-counter
  flush to a (configuration × pool) matrix of precomputed final counters,
  and :meth:`Profiler._collect` turns them into a
  :class:`~repro.profiling.metrics.ProfileResult` exactly as the
  single-replay paths do.

Byte identity with the single fast replay and the legacy event loop is the
contract (``tests/test_batch_replay.py`` enforces it across the standard
spaces).  Configurations the batch kernel cannot express fall back to a
single replay per configuration:

* a dedicated pool that runs out of capacity mid-trace would *spill* to the
  general pool from that event on, entangling the two streams — the group
  is marked diverged and every configuration referencing it takes the
  single-replay path (:meth:`BatchReplayEngine._run_single`);
* non-standard pool stacks (anything but strict fixed/slab pools in front
  of an unbounded general pool), profiler options that observe per-event
  state (``fail_on_oom``, ``track_footprint_timeline``), traces with live
  request-id rebinding, and ``fast_replay=False`` all defer likewise.

The general-pool kernel replicates :class:`~repro.allocator.pool
.GeneralPool` counter-for-counter on flat integers: fit-scan visit counts,
ordered-insertion visit counts, split/coalesce charges, the chunked (and
partial-grant) growth of :class:`PoolAddressSpace` and the chunk-boundary
merge bar.  When NumPy is importable the free-list scans (fit search,
neighbour lookup) vectorise over lazily-built int64 mirrors of the list;
the repository deliberately has no runtime dependencies, so every scan also
has an exact pure-Python path and the module works — identically, just
slower — without NumPy installed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

from ..allocator.coalescing import COALESCING_POLICIES, DeferredCoalesce
from ..allocator.fit import FIT_POLICIES
from ..allocator.freelist import FREE_LIST_POLICIES
from ..allocator.blocks import gross_block_size
from ..allocator.heap import PoolAddressSpace
from ..allocator.pool import MIN_WILDERNESS_REMAINDER, FixedSizePool
from ..allocator.slab import SlabPool
from ..allocator.splitting import (
    SPLITTING_POLICIES,
    AlwaysSplit,
    ThresholdSplit,
)
from ..allocator.stats import PoolStats
from ..allocator.errors import OutOfMemoryError
from ..memhier.energy import EnergyModel
from .metrics import ProfileResult
from .profiler import Profiler, ProfilerOptions
from .tracer import AllocationTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> profiling)
    from ..core.configuration import AllocatorConfiguration
    from ..core.factory import AllocatorFactory

try:  # NumPy accelerates the free-list scans but is strictly optional.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on dependency-free installs
    _np = None

#: Below this free-list length the pure-Python scan wins over a vectorised
#: one (array-view setup dominates); above it NumPy takes over when present.
#: The int64 mirrors of the list are rebuilt lazily on the first long scan
#: after a mutation, so simulations whose lists stay short (or whose scans
#: the bounded probes satisfy) never pay for them.
_VEC_MIN = 32
#: LIFO scans probe this many newest blocks in pure Python before falling
#: back to a vector scan: allocation traces reuse recently freed sizes, so
#: the probe usually resolves in a handful of comparisons.
_PROBE = 16
#: Vector scans compare this many elements (in search order) before touching
#: the rest of the free list; linear fit policies usually hit early, so the
#: two-tier scan keeps long pathological lists from costing O(n) per alloc.
_SEG = 256

# Free-list organisation codes (storage order + search direction).
_ORG_LIFO = 0  # storage oldest-first, searched newest-first (reversed)
_ORG_FIFO = 1  # storage and search order coincide
_ORG_ADDR = 2  # storage sorted by address
_ORG_SIZE = 3  # storage sorted by (size, address)

_ORG_CODES = {
    "lifo": _ORG_LIFO,
    "fifo": _ORG_FIFO,
    "address_ordered": _ORG_ADDR,
    "size_ordered": _ORG_SIZE,
}

# Fit policy codes.
_FIT_FIRST = 0
_FIT_NEXT = 1
_FIT_BEST = 2
_FIT_WORST = 3
_FIT_EXACT = 4

_FIT_CODES = {
    "first_fit": _FIT_FIRST,
    "next_fit": _FIT_NEXT,
    "best_fit": _FIT_BEST,
    "worst_fit": _FIT_WORST,
    "exact_fit": _FIT_EXACT,
}

# Coalescing policy codes.
_COAL_NEVER = 0
_COAL_IMMEDIATE = 1
_COAL_DEFERRED = 2

_COAL_CODES = {"never": _COAL_NEVER, "immediate": _COAL_IMMEDIATE, "deferred": _COAL_DEFERRED}

# Splitting policy codes.
_SPLIT_NEVER = 0
_SPLIT_ALWAYS = 1
_SPLIT_THRESHOLD = 2

_SPLIT_CODES = {"never": _SPLIT_NEVER, "always": _SPLIT_ALWAYS, "threshold": _SPLIT_THRESHOLD}

#: Pool kinds the batch kernel can express in front of the general pool.
_DEDICATED_KINDS = ("fixed", "slab")


class _StreamInfo:
    """One pool's event stream plus its replay-invariant totals.

    ``codes`` holds ``slot`` for an ALLOC and ``~slot`` for a FREE.  The
    totals let the simulation skip per-event dispatch/payload bookkeeping:
    dispatch is ``len(codes)`` minus the frees of failed allocations,
    ``payload`` is the precomputed sequential sum (bit-identical to the
    replay loops' running accumulation) unless an out-of-memory event
    shrinks the success set, in which case the sum is recomputed in stream
    order over the surviving allocations.
    """

    __slots__ = ("codes", "payload", "pos_allocs", "size0_allocs")

    def __init__(
        self, codes: list[int], payload: float, pos_allocs: int, size0_allocs: int
    ) -> None:
        self.codes = codes
        self.payload = payload
        self.pos_allocs = pos_allocs
        self.size0_allocs = size0_allocs


class _GroupResult:
    """Final state of one shared pool-group simulation."""

    __slots__ = (
        "stats", "payload", "dispatch", "oom", "live", "touched", "diverged", "brk"
    )

    def __init__(
        self,
        stats: PoolStats | None = None,
        payload: float = 0.0,
        dispatch: int = 0,
        oom: int = 0,
        live: int = 0,
        touched: bool = False,
        diverged: bool = False,
        brk: int = 0,
    ) -> None:
        self.stats = stats
        self.payload = payload
        self.dispatch = dispatch
        self.oom = oom
        self.live = live
        self.touched = touched
        self.diverged = diverged
        #: Final backing-store break (the address space's high-water mark).
        #: Growth only ever advances it, so a capacity at least this large
        #: can never have altered the run — the capacity-sharing criterion.
        self.brk = brk


def _simulate_general(
    free_list: str,
    fit_name: str,
    coalescing: str,
    splitting: str,
    chunk_size: int,
    capacity: int | None,
    info: _StreamInfo,
    slot_sizes,
    factor: float,
) -> _GroupResult:
    """Replay one general-pool stream on flat integer state.

    This is a single monolithic loop on purpose: every counter lives in a
    local variable and the free list is a pair of plain int lists (with
    lazily-built NumPy mirrors for long scans), which is what buys the
    batch path its per-event speed over the object-per-block pool.  The
    charge sequence replicates ``GeneralPool.allocate``/``free`` exactly;
    ``tests/test_batch_replay.py`` sweeps every policy combination against
    both replay oracles to hold the kernel to byte identity.

    Addresses are pool-relative (base 0): every ``PoolStats`` field is
    invariant under a uniform translation of the pool's base address.
    """
    org = _ORG_CODES[free_list]
    reverse = org == _ORG_LIFO  # search runs newest-first over the storage
    fit = _FIT_CODES[fit_name]
    coal = _COAL_CODES[coalescing]
    split = _SPLIT_CODES[splitting]
    # Read the split/coalesce tunables off the real policy objects so a
    # changed default there cannot silently diverge the kernel.
    split_min = MIN_WILDERNESS_REMAINDER
    split_ratio = 0.0
    if split == _SPLIT_ALWAYS:
        split_min = AlwaysSplit().min_remainder
    elif split == _SPLIT_THRESHOLD:
        policy = ThresholdSplit()
        split_min = policy.min_remainder
        split_ratio = policy.ratio
    interval = DeferredCoalesce().interval if coal == _COAL_DEFERRED else 1 << 62

    addrs: list[int] = []
    szs: list[int] = []
    use_np = _np is not None
    ma = ms = None  # lazy int64 mirrors of addrs/szs
    mlen = 0  # length of the size mirror's valid prefix
    malen = 0  # length of the address mirror's valid prefix
    rover = 0  # next-fit cursor (an index into the search-order view)
    # Slot ids are unique per allocation, so live-block state is two flat
    # lists indexed by slot (gross size < 0 means never allocated / OOM),
    # which beats a dict on the hot alloc/free paths.
    live_addr = [0] * len(slot_sizes)
    live_bsz = [-1] * len(slot_sizes)
    live_n = 0
    dead: set[int] = set()  # slots whose allocation ran out of memory
    chunk_starts: set[int] = set()
    # For immediate coalescing on linear-scan storages, mirror the free
    # blocks' start/end addresses in sets: a freed block's neighbours can
    # then be ruled out in O(1), and most frees have none (adjacent free
    # blocks cannot coexist for long under immediate coalescing).  The
    # address-ordered storage finds neighbours by bisect and deferred
    # maintenance never calls :func:`merge`, so neither pays the upkeep.
    track_sets = coal == _COAL_IMMEDIATE and org != _ORG_ADDR
    starts: set[int] = set()
    ends: set[int] = set()

    # -- closures over the list state (counters stay locals in the loop) --

    def mirror(n: int):
        """Bring the int64 mirror of ``szs`` up to date.

        ``mlen`` is the length of the mirror's valid prefix.  Append-order
        storages (LIFO/FIFO) mutate near the tail, so they just truncate
        ``mlen`` and this sync converts the small stale suffix; sorted
        storages keep the mirror fully valid with in-place slice shifts
        (C memmoves) and only land here after a wholesale rebuild.  The
        address mirror is deliberately *not* maintained here: the fit
        search only compares sizes, so ``ma`` syncs separately (and far
        more rarely) in :func:`mirror_addrs`.
        """
        nonlocal ms, mlen
        if ms is None or ms.shape[0] < n:
            grown = _np.empty(max(64, 2 * n), dtype=_np.int64)
            if mlen:
                grown[:mlen] = ms[:mlen]
            ms = grown
        if mlen < n:
            ms[mlen:n] = szs[mlen:n]
            mlen = n
        return ms

    def mirror_addrs(n: int):
        """Bring the int64 mirror of ``addrs`` up to date (merge path only).

        Only the vectorised neighbour search reads block addresses, so this
        mirror is pure prefix-validity: mutations just truncate ``malen``
        and the next merge that actually needs the addresses pays one bulk
        conversion of the stale suffix.
        """
        nonlocal ma, malen
        if ma is None or ma.shape[0] < n:
            grown = _np.empty(max(64, 2 * n), dtype=_np.int64)
            if malen:
                grown[:malen] = ma[:malen]
            ma = grown
        if malen < n:
            ma[malen:n] = addrs[malen:n]
            malen = n
        return ma

    def push(addr: int, size: int) -> int:
        """Insert a free block; returns ``last_insertion_visits``."""
        nonlocal mlen, malen
        if track_sets:
            starts.add(addr)
            ends.add(addr + size)
        if org <= _ORG_FIFO:
            # Appends land beyond the mirrors' valid prefixes: nothing to do.
            addrs.append(addr)
            szs.append(size)
            return 1
        if org == _ORG_ADDR:
            index = bisect_left(addrs, addr)
        else:
            lo = bisect_left(szs, size)
            hi = bisect_right(szs, size)
            index = bisect_left(addrs, addr, lo, hi)
        n0 = len(addrs)
        addrs.insert(index, addr)
        szs.insert(index, size)
        if mlen == n0 and ms is not None and n0 < ms.shape[0]:
            ms[index + 1 : n0 + 1] = ms[index:n0]
            ms[index] = size
            mlen = n0 + 1
        elif index < mlen:
            mlen = index
        if index < malen:
            malen = index
        return index if index > 1 else 1

    def delete(index: int) -> None:
        nonlocal mlen, malen
        if track_sets:
            gone = addrs[index]
            starts.discard(gone)
            ends.discard(gone + szs[index])
        del addrs[index]
        del szs[index]
        n0 = len(addrs)
        if mlen == n0 + 1 and org > _ORG_FIFO:
            if index < n0:
                ms[index:n0] = ms[index + 1 : n0 + 1]
            mlen = n0
        elif index < mlen:
            mlen = index
        if index < malen:
            malen = index

    def vec_first(n: int, need: int, exact: bool) -> tuple[int, int]:
        """First ``>= need`` (or ``== need``) match in search order.

        Returns ``(storage index, search position)`` or ``(-1, n)``.  The
        scan is two-tier: the first ``_SEG`` elements in search order are
        compared alone (linear policies usually hit there), and only a miss
        pays for comparing the rest of the list.
        """
        sizes = ms[:n]
        if reverse:
            lo = n - _SEG
            if lo > 0:
                view = sizes[lo:n][::-1]
                mask = (view == need) if exact else (view >= need)
                position = int(mask.argmax())
                if mask[position]:
                    return n - 1 - position, position
                view = sizes[:lo][::-1]
                mask = (view == need) if exact else (view >= need)
                position = int(mask.argmax())
                if mask[position]:
                    index = lo - 1 - position
                    return index, n - 1 - index
                return -1, n
            view = sizes[::-1]
            mask = (view == need) if exact else (view >= need)
            position = int(mask.argmax())
            if mask[position]:
                return n - 1 - position, position
            return -1, n
        hi = _SEG if _SEG < n else n
        view = sizes[:hi]
        mask = (view == need) if exact else (view >= need)
        position = int(mask.argmax())
        if mask[position]:
            return position, position
        if hi < n:
            view = sizes[hi:]
            mask = (view == need) if exact else (view >= need)
            position = int(mask.argmax())
            if mask[position]:
                return hi + position, hi + position
        return -1, n

    def select(need: int) -> tuple[int, int, bool]:
        """Fit search: ``(storage index, visits, found)``, exactly as the
        matching :class:`FitPolicy` iterating the matching free list."""
        nonlocal rover
        n = len(addrs)
        if org == _ORG_SIZE and fit != _FIT_NEXT:
            # Sorted-by-size storage collapses the linear policies to a
            # bisect with the same visit count the linear walk reports.
            if fit == _FIT_FIRST or fit == _FIT_BEST:
                index = bisect_left(szs, need)
                if index < n:
                    return index, index + 1, True
                return -1, n, False
            if fit == _FIT_EXACT:
                index = bisect_left(szs, need)
                if index < n and szs[index] == need:
                    return index, index + 1, True
                return -1, n, False
            # Worst fit: the largest block is last; ties resolve to the
            # first of the max-size run in search order (lowest address).
            if n and szs[n - 1] >= need:
                return bisect_left(szs, szs[n - 1]), n, True
            return -1, n, False
        if n == 0:
            return -1, 0, False
        if use_np and n >= _VEC_MIN:
            if reverse and fit != _FIT_NEXT and fit != _FIT_WORST:
                # LIFO search starts at the most recently pushed blocks,
                # which trace locality makes very likely to fit: probe a
                # bounded window in pure Python before paying for an O(n)
                # vector compare.  For best fit only an exact match may
                # return early (it is provably the scan's answer).
                limit = n - _PROBE
                if fit == _FIT_FIRST:
                    for index in range(n - 1, limit - 1, -1):
                        if szs[index] >= need:
                            return index, n - index, True
                else:
                    for index in range(n - 1, limit - 1, -1):
                        if szs[index] == need:
                            return index, n - index, True
            # Boolean argmax short-circuits at the first hit in C, which is
            # exactly the "first match in search order" every linear policy
            # needs; a reversed view turns it into last-in-storage for LIFO.
            mirror(n)
            sizes = ms[:n]
            if fit == _FIT_FIRST or fit == _FIT_EXACT:
                index, position = vec_first(n, need, fit == _FIT_EXACT)
                if index < 0:
                    return -1, n, False
                return index, position + 1, True
            if fit == _FIT_NEXT:
                view = sizes[::-1] if reverse else sizes
                hits = _np.flatnonzero(view >= need)
                if hits.size == 0:
                    return -1, n, False
                start = rover % n
                position = int(_np.searchsorted(hits, start))
                view_index = int(hits[position]) if position < hits.size else int(hits[0])
                visits = (view_index - start) % n + 1
                rover = (view_index + 1) % n
                index = n - 1 - view_index if reverse else view_index
                return index, visits, True
            if fit == _FIT_BEST:
                index, position = vec_first(n, need, True)
                if index >= 0:
                    # First exact match in search order: best fit returns
                    # it immediately with the partial visit count.
                    return index, position + 1, True
                mask = sizes >= need
                if not mask.any():
                    return -1, n, False
                ties = sizes == sizes[mask].min()
            else:  # worst fit
                largest = int(sizes.max())
                if largest < need:
                    return -1, n, False
                ties = sizes == largest
            view = ties[::-1] if reverse else ties
            position = int(view.argmax())
            index = n - 1 - position if reverse else position
            return index, n, True
        # Pure-Python scans (short lists, or NumPy unavailable).
        if fit == _FIT_FIRST or fit == _FIT_EXACT:
            exact = fit == _FIT_EXACT
            order = range(n - 1, -1, -1) if reverse else range(n)
            for position, index in enumerate(order):
                size = szs[index]
                if (size == need) if exact else (size >= need):
                    return index, position + 1, True
            return -1, n, False
        if fit == _FIT_NEXT:
            start = rover % n
            for offset in range(n):
                view = (start + offset) % n
                index = n - 1 - view if reverse else view
                if szs[index] >= need:
                    rover = (view + 1) % n
                    return index, offset + 1, True
            return -1, n, False
        if fit == _FIT_BEST:
            best = -1
            best_size = 0
            order = range(n - 1, -1, -1) if reverse else range(n)
            for position, index in enumerate(order):
                size = szs[index]
                if size < need:
                    continue
                if best < 0 or size < best_size:
                    best = index
                    best_size = size
                    if size == need:
                        return best, position + 1, True
            return best, n, best >= 0
        # Worst fit: full scan, strictly-larger wins, ties keep the first
        # block in search order.
        worst = -1
        worst_size = 0
        order = range(n - 1, -1, -1) if reverse else range(n)
        for index in order:
            size = szs[index]
            if size >= need and size > worst_size:
                worst = index
                worst_size = size
        return worst, n, worst >= 0

    def merge(addr: int, block_size: int) -> tuple[int, int, int, int, int]:
        """Boundary-tag merge of the freed block with its free neighbours.

        Returns ``(addr, size, reads, writes, merges)`` — the coalesced
        block plus the charges ``ImmediateCoalesce.on_free`` would report.
        """
        n = len(addrs)
        succ_addr = addr + block_size
        reads = 0
        if org == _ORG_ADDR:
            # Bounded probe: two reads whatever the list length.
            index = bisect_left(addrs, addr)
            pred = -1
            if index > 0 and addrs[index - 1] + szs[index - 1] == addr:
                pred = index - 1
            succ = index if index < n and addrs[index] == succ_addr else -1
            reads = 2
        elif track_sets and addr not in ends and succ_addr not in starts:
            # Neither neighbour is free: the search-order walk would have
            # visited every node without a match.
            pred = -1
            succ = -1
            reads = n
        elif use_np and n >= _VEC_MIN:
            # Each neighbour matches at most once (free blocks are
            # disjoint), so boolean argmax finds it in one pass.
            mirror(n)
            base = mirror_addrs(n)[:n]
            mask = base + ms[:n] == addr
            hit = int(mask.argmax())
            pred = hit if mask[hit] else -1
            mask = base == succ_addr
            hit = int(mask.argmax())
            succ = hit if mask[hit] else -1
            if pred >= 0 and succ >= 0:
                pred_pos = n - 1 - pred if reverse else pred
                succ_pos = n - 1 - succ if reverse else succ
                reads = max(pred_pos, succ_pos) + 1
            else:
                reads = n
        else:
            # Walk in search order, one read per visited node, stopping as
            # soon as both neighbours are found.  Free blocks are disjoint,
            # so each neighbour matches at most once.
            pred = -1
            succ = -1
            order = range(n - 1, -1, -1) if org == _ORG_LIFO else range(n)
            for index in order:
                reads += 1
                candidate = addrs[index]
                if candidate + szs[index] == addr:
                    pred = index
                elif candidate == succ_addr:
                    succ = index
                if pred >= 0 and succ >= 0:
                    break
        writes = 0
        merges = 0
        if pred >= 0 and addr not in chunk_starts:
            pred_addr = addrs[pred]
            merged = szs[pred] + block_size
            delete(pred)
            if succ > pred:
                succ -= 1
            addr = pred_addr
            block_size = merged
            writes += 2  # unlink + header rewrite
            merges += 1
        if succ >= 0 and succ_addr not in chunk_starts:
            block_size += szs[succ]
            delete(succ)
            writes += 2
            merges += 1
        return addr, block_size, reads, writes, merges

    def maintenance() -> tuple[int, int, int]:
        """Deferred full merge pass; returns ``(reads, writes, merges)``."""
        nonlocal mlen, malen
        n = len(addrs)
        if n == 0:
            return n, 0, 0
        pairs = sorted(zip(addrs, szs))
        survivors_addr: list[int] = []
        survivors_size: list[int] = []
        current_addr, current_size = pairs[0]
        merges = 0
        for addr, size in pairs[1:]:
            if current_addr + current_size == addr and addr not in chunk_starts:
                current_size += size
                merges += 1
            else:
                survivors_addr.append(current_addr)
                survivors_size.append(current_size)
                current_addr, current_size = addr, size
        survivors_addr.append(current_addr)
        survivors_size.append(current_size)
        if org == _ORG_SIZE:
            resorted = sorted(zip(survivors_size, survivors_addr))
            survivors_size = [size for size, _addr in resorted]
            survivors_addr = [addr for _size, addr in resorted]
        # LIFO/FIFO storage receives the survivors in ascending-address
        # push order; address-ordered storage is sorted the same way.
        addrs[:] = survivors_addr
        szs[:] = survivors_size
        mlen = 0
        malen = 0
        return n, merges + len(survivors_addr), merges

    # -- the event loop ----------------------------------------------------

    reads = 0
    writes = 0
    fl_visits = 0
    splits_n = 0
    coalesces_n = 0
    brk = 0
    peak_footprint = 0
    live_payload = 0
    peak_live_payload = 0
    live_gross = 0
    alloc_ops = 0
    free_ops = 0
    failed_allocs = 0
    deferred_n = 0
    dead_frees = 0

    codes = info.codes
    for code in codes:
        if code >= 0:
            size = slot_sizes[code]
            if size <= 0:
                # Empty route (no pool accepts a non-positive size): the
                # composed allocator raises without touching any pool's
                # counters; accounted in the stream's precomputed totals.
                continue
            need = ((size + 3) & -4) + 8  # align_up(size, 4) + HEADER_BYTES
            index, visits, found = select(need)
            reads += visits
            fl_visits += visits
            if found:
                addr = addrs[index]
                block_size = szs[index]
                delete(index)
                writes += 1  # unlink from the free list
                remainder = block_size - need
                if (
                    split
                    and remainder >= split_min
                    and (split == _SPLIT_ALWAYS or remainder >= split_ratio * need)
                ):
                    splits_n += 1
                    writes += 2  # shrink header + remainder header
                    reads += push(addr + need, remainder)
                    writes += 1  # link the remainder
                    block_size = need
            else:
                granted = -(-need // chunk_size) * chunk_size
                if capacity is not None and brk + granted > capacity:
                    if brk + need <= capacity:
                        granted = need
                    else:
                        failed_allocs += 1
                        dead.add(code)
                        continue
                addr = brk
                brk += granted
                if brk > peak_footprint:
                    peak_footprint = brk
                chunk_starts.add(addr)
                remainder = granted - need
                if remainder >= MIN_WILDERNESS_REMAINDER:
                    reads += push(addr + need, remainder)
                    writes += 2  # remainder header + link
                    block_size = need
                else:
                    block_size = granted
            writes += 1  # header write for the allocated block
            alloc_ops += 1
            live_payload += size
            if live_payload > peak_live_payload:
                peak_live_payload = live_payload
            live_gross += block_size
            live_addr[code] = addr
            live_bsz[code] = block_size
            live_n += 1
        else:
            slot = ~code
            block_size = live_bsz[slot]
            if block_size < 0:
                # The matching allocation failed: the free is skipped
                # before the dispatch-table lookup.
                dead_frees += 1
                continue
            addr = live_addr[slot]
            live_n -= 1
            free_ops += 1
            live_payload -= slot_sizes[slot]
            live_gross -= block_size
            reads += 1  # header read
            if coal == _COAL_IMMEDIATE:
                addr, block_size, merge_reads, merge_writes, merges = merge(
                    addr, block_size
                )
                reads += merge_reads
                writes += merge_writes
                coalesces_n += merges
            else:
                deferred_n += 1  # only observed when coal is deferred
            reads += push(addr, block_size)
            writes += 1
            if deferred_n >= interval:
                deferred_n = 0
                pass_reads, pass_writes, pass_merges = maintenance()
                reads += pass_reads
                writes += pass_writes
                coalesces_n += pass_merges

    oom_extra = len(dead)
    if oom_extra:
        # Recompute the payload sum in stream order over the surviving
        # allocations so float accumulation stays bit-identical to the
        # replay loops (the precomputed total covers the no-OOM case).
        payload = 0.0
        for code in codes:
            if code >= 0 and code not in dead:
                size = slot_sizes[code]
                if size > 0:
                    payload += size * factor
    else:
        payload = info.payload

    stats = PoolStats()
    stats.accesses.reads = reads
    stats.accesses.writes = writes
    stats.footprint = brk
    stats.peak_footprint = peak_footprint
    stats.live_payload = live_payload
    stats.peak_live_payload = peak_live_payload
    stats.live_gross = live_gross
    stats.live_blocks = live_n
    stats.alloc_ops = alloc_ops
    stats.free_ops = free_ops
    stats.failed_allocs = failed_allocs
    stats.free_list_visits = fl_visits
    stats.splits = splits_n
    stats.coalesces = coalesces_n
    return _GroupResult(
        stats=stats,
        payload=payload,
        dispatch=len(codes) - dead_frees,
        oom=info.size0_allocs + oom_extra,
        live=live_n,
        touched=info.pos_allocs - oom_extra > 0,
    )


class _ShimPool:
    """Just enough pool surface for :meth:`Profiler._collect`.

    ``_collect`` (via ``breakdown_accesses``/``footprint_by_level``) only
    reads ``name`` and ``stats``; the stats object is shared read-only with
    the group cache (``snapshot()`` copies into a fresh dict).
    """

    __slots__ = ("name", "stats")

    def __init__(self, name: str, stats: PoolStats) -> None:
        self.name = name
        self.stats = stats


class _ShimAllocator:
    """Composed-allocator surface backed by precomputed group results."""

    __slots__ = ("pools", "name", "dispatch_accesses", "live_blocks")

    def __init__(
        self, pools: list[_ShimPool], name: str, dispatch_accesses: int, live_blocks: int
    ) -> None:
        self.pools = pools
        self.name = name
        self.dispatch_accesses = dispatch_accesses
        self.live_blocks = live_blocks


class BatchReplayEngine:
    """Evaluates many allocator configurations against one compiled trace.

    Parameters
    ----------
    trace:
        The workload trace (its compiled form is bound at construction; the
        engine must be recreated if the trace mutates).
    factory:
        The :class:`~repro.core.factory.AllocatorFactory` used both to
        place pools (:meth:`AllocatorFactory.build_mapping` yields the
        per-pool capacities the kernels enforce) and to build real
        allocators for fallback single replays.
    energy_model / options:
        As for :class:`Profiler`; options that observe per-event state
        (``fail_on_oom``, ``track_footprint_timeline``) or disable the fast
        replay route every configuration through the single-replay path.

    The engine is long-lived on purpose: all stream partitions and group
    simulations are cached across :meth:`run_configuration` calls, so a
    serial exploration that feeds points one at a time amortises exactly
    like one that feeds the whole space at once.
    """

    def __init__(
        self,
        trace: AllocationTrace,
        factory: "AllocatorFactory",
        energy_model: EnergyModel | None = None,
        options: ProfilerOptions | None = None,
    ) -> None:
        self.trace = trace
        self.compiled = trace.compiled()
        self.factory = factory
        self.energy_model = energy_model or EnergyModel(factory.hierarchy)
        self.options = options or ProfilerOptions()
        # size -> per-size event stream (slot for ALLOC, ~slot for FREE).
        self._size_streams_cache: dict[int, list[int]] | None = None
        # dedicated-size set -> the general pool's stream + totals.
        self._general_streams: dict[frozenset[int], _StreamInfo] = {}
        # group key -> cached _GroupResult (the (config x pool) matrix).
        # General keys are capacity-free; a (key, capacity) entry exists
        # only for groups that genuinely overflow that capacity.
        self._dedicated_cache: dict[tuple, _GroupResult] = {}
        self._general_cache: dict[tuple, _GroupResult] = {}
        #: Diagnostics: configurations served by the batch kernel vs routed
        #: through the per-configuration single replay.
        self.batched_configurations = 0
        self.fallback_configurations = 0

    # -- stream partitioning ----------------------------------------------

    def _size_streams(self) -> dict[int, list[int]]:
        """Partition the compiled columns by request size (computed once).

        Every event of a given size lands in that size's stream whatever
        the configuration: a strict dedicated pool for the size sees the
        whole stream, and configurations without one route it to the
        general pool instead.  FREE events resolve their size through the
        slot table; unmatched frees (``NO_SLOT``) are dropped here exactly
        as both replay oracles skip them.
        """
        streams = self._size_streams_cache
        if streams is None:
            streams = {}
            compiled = self.compiled
            sizes = compiled.sizes
            slots = compiled.slots
            slot_sizes = compiled.slot_sizes
            for index, kind in enumerate(compiled.kinds):
                if kind:
                    size = sizes[index]
                    stream = streams.get(size)
                    if stream is None:
                        stream = streams[size] = []
                    stream.append(slots[index])
                else:
                    slot = slots[index]
                    if slot < 0:
                        continue
                    streams[slot_sizes[slot]].append(~slot)
            self._size_streams_cache = streams
        return streams

    def _general_stream(self, dedicated_sizes: frozenset[int]) -> _StreamInfo:
        """Events the general pool sees under ``dedicated_sizes`` (cached)."""
        info = self._general_streams.get(dedicated_sizes)
        if info is None:
            codes: list[int] = []
            append = codes.append
            compiled = self.compiled
            sizes = compiled.sizes
            slots = compiled.slots
            slot_sizes = compiled.slot_sizes
            factor = self.options.payload_access_factor
            payload = 0.0
            pos_allocs = 0
            size0_allocs = 0
            for index, kind in enumerate(compiled.kinds):
                if kind:
                    size = sizes[index]
                    if size not in dedicated_sizes:
                        append(slots[index])
                        if size > 0:
                            payload += size * factor
                            pos_allocs += 1
                        else:
                            size0_allocs += 1
                else:
                    slot = slots[index]
                    if slot >= 0 and slot_sizes[slot] not in dedicated_sizes:
                        append(~slot)
            info = _StreamInfo(codes, payload, pos_allocs, size0_allocs)
            self._general_streams[dedicated_sizes] = info
        return info

    # -- group simulations -------------------------------------------------

    def _dedicated_result(self, key: tuple) -> _GroupResult:
        """Replay one dedicated pool group (cached, capacity-shared).

        Dedicated pools are cheap and exactly modelled by the *real*
        :class:`FixedSizePool`/:class:`SlabPool` objects, so the group sim
        simply drives one over the per-size stream on a base-0 address
        space.  Like general groups, the unbounded run is tried first: the
        break only ever advances, so any placement capacity at least the
        final break would have replayed byte-identically and shares the
        cached result.  Only genuinely overflowing capacities re-run
        bounded; an :class:`OutOfMemoryError` there means the real run
        would spill this pool's overflow into the general pool mid-trace —
        inexpressible as independent streams — so the group is marked
        diverged and its configurations fall back.
        """
        result = self._dedicated_cache.get(key)
        if result is not None:
            return result
        kind, block_size, slab_bytes, capacity = key
        if capacity is not None:
            base_key = (kind, block_size, slab_bytes, None)
            base = self._dedicated_cache.get(base_key)
            if base is None:
                base = self._dedicated_result(base_key)
            if base.brk <= capacity:
                self._dedicated_cache[key] = base
                return base
        space = PoolAddressSpace(base=0, capacity=capacity, name="batch")
        if kind == "fixed":
            pool = FixedSizePool("batch", block_size, address_space=space, strict=True)
        else:
            pool = SlabPool(
                "batch", block_size, slab_bytes=slab_bytes, address_space=space, strict=True
            )
        factor = self.options.payload_access_factor
        payload = 0.0
        dispatch = 0
        successes = 0
        diverged = False
        address_of: dict[int, int] = {}
        stream = self._size_streams().get(block_size)
        if stream:
            allocate = pool.allocate
            release = pool.free
            for code in stream:
                dispatch += 1
                if code >= 0:
                    try:
                        address_of[code] = allocate(block_size)
                    except OutOfMemoryError:
                        diverged = True
                        break
                    payload += block_size * factor
                    successes += 1
                else:
                    release(address_of.pop(~code))
        result = _GroupResult(
            stats=pool.stats,
            payload=payload,
            dispatch=dispatch,
            live=len(address_of),
            touched=successes > 0,
            diverged=diverged,
            brk=space.used,
        )
        self._dedicated_cache[key] = result
        return result

    def _general_result(self, key: tuple, capacity: int | None) -> _GroupResult:
        """Replay one general pool group through the flat kernel (cached).

        ``key`` is capacity-free.  The unbounded simulation is run (and
        cached) first; growth is monotone, so whenever its final footprint
        fits inside ``capacity`` the bounded run would have been
        byte-identical and the cached result is shared.  Only groups that
        genuinely overflow re-run with the capacity enforced, cached per
        (key, capacity).
        """
        result = self._general_cache.get(key)
        if result is None:
            result = self._run_general(key, None)
            self._general_cache[key] = result
        if capacity is None or result.stats.footprint <= capacity:
            return result
        bounded_key = key + (capacity,)
        bounded = self._general_cache.get(bounded_key)
        if bounded is None:
            bounded = self._run_general(key, capacity)
            self._general_cache[bounded_key] = bounded
        return bounded

    def _run_general(self, key: tuple, capacity: int | None) -> _GroupResult:
        dedicated_sizes, free_list, fit, coalescing, splitting, chunk_size = key
        return _simulate_general(
            free_list,
            fit,
            coalescing,
            splitting,
            chunk_size,
            capacity,
            self._general_stream(dedicated_sizes),
            self.compiled.slot_sizes,
            self.options.payload_access_factor,
        )

    # -- per-configuration assembly ----------------------------------------

    def _plan(self, configuration: "AllocatorConfiguration"):
        """Group keys (and the mapping) for a batchable configuration.

        Returns ``None`` when the configuration or the profiling options
        fall outside what the stream partition can express, sending the
        caller down the single-replay path.
        """
        options = self.options
        if (
            not options.fast_replay
            or options.fail_on_oom
            or options.track_footprint_timeline
            or self.compiled.has_live_rebinding
        ):
            return None
        pools = configuration.pools
        general = pools[-1]
        if general.kind != "general" or general.max_block_size is not None:
            return None
        if (
            general.free_list not in FREE_LIST_POLICIES
            or general.fit not in FIT_POLICIES
            or general.coalescing not in COALESCING_POLICIES
            or general.splitting not in SPLITTING_POLICIES
        ):
            return None
        seen: set[int] = set()
        for spec in pools[:-1]:
            if spec.kind not in _DEDICATED_KINDS or spec.block_size <= 0:
                return None
            if spec.block_size in seen:
                return None
            seen.add(spec.block_size)
        mapping = self.factory.build_mapping(configuration)
        placements = mapping.placements
        entries: list[tuple[bool, str, tuple, int | None]] = []
        for spec in pools[:-1]:
            capacity = placements[spec.name].reserved_bytes
            if spec.kind == "slab":
                # The factory sizes slabs from the object gross size; bake
                # the resolved slab size into the key so distinct chunk
                # settings that yield the same slab share one simulation.
                slab_bytes = max(spec.chunk_size, 1024, gross_block_size(spec.block_size) * 4)
            else:
                slab_bytes = 0  # FixedSizePool ignores the chunk setting
            entries.append(
                (True, spec.name, (spec.kind, spec.block_size, slab_bytes, capacity), None)
            )
        entries.append(
            (
                False,
                general.name,
                (
                    frozenset(seen),
                    general.free_list,
                    general.fit,
                    general.coalescing,
                    general.splitting,
                    general.chunk_size,
                ),
                placements[general.name].reserved_bytes,
            )
        )
        return mapping, entries

    def _run_single(self, configuration: "AllocatorConfiguration") -> ProfileResult:
        """Per-configuration fallback: build real pools, single replay."""
        self.fallback_configurations += 1
        built = self.factory.build(configuration)
        profiler = Profiler(built.mapping, self.energy_model, self.options)
        return profiler.run(built.allocator, self.trace, configuration.configuration_id)

    def run_configuration(self, configuration: "AllocatorConfiguration") -> ProfileResult:
        """Profile ``configuration``; byte-identical to :meth:`Profiler.run`."""
        plan = self._plan(configuration)
        if plan is None:
            return self._run_single(configuration)
        mapping, entries = plan
        shims: list[_ShimPool] = []
        payload_by_pool: dict[str, float] = {}
        dispatch = 0
        live_blocks = 0
        oom_failures = 0
        for is_dedicated, name, key, capacity in entries:
            if is_dedicated:
                group = self._dedicated_result(key)
                if group.diverged:
                    return self._run_single(configuration)
            else:
                group = self._general_result(key, capacity)
            shims.append(_ShimPool(name, group.stats))
            if group.touched:
                payload_by_pool[name] = group.payload
            dispatch += group.dispatch
            live_blocks += group.live
            oom_failures += group.oom
        allocator = _ShimAllocator(
            shims, configuration.configuration_id, dispatch, live_blocks
        )
        profiler = Profiler(mapping, self.energy_model, self.options)
        result = profiler._collect(
            allocator, self.trace, configuration.configuration_id, payload_by_pool
        )
        result.per_pool["__profile__"] = {
            "oom_failures": oom_failures,
            "footprint_timeline_points": 0,
        }
        self.batched_configurations += 1
        return result

    def run_configurations(
        self, configurations: list["AllocatorConfiguration"]
    ) -> list[ProfileResult]:
        """Profile a batch of configurations (submission order preserved)."""
        return [self.run_configuration(configuration) for configuration in configurations]
