"""Columnar ("compiled") trace representation.

Replaying a trace through the object-per-event representation costs one
Python object traversal per event: an attribute load for the kind, a
property call for ``is_alloc``, another load for the size.  Over the tens of
thousands of events of a realistic trace, and the thousands of
configurations of an exploration, that bookkeeping dominates the profiling
step — the very cost the DATE'06 flow parallelises and prunes around.

:class:`CompiledTrace` lowers the event stream *once* into flat parallel
arrays (kind, size, request id, timestamp) plus a precomputed *slot* column
that resolves every FREE to the dense index of the allocation it releases.
The fast replay loop in :mod:`repro.profiling.profiler` then iterates plain
``bytes``/``array`` values — no event objects, no per-event dict keyed by
request id — and the same compact form is what
:class:`~repro.core.exploration.ProcessPoolBackend` ships to worker
processes (a few dozen bytes per event instead of a pickled dataclass
graph).

The compiled form intentionally drops event *tags* (they never influence
replay); the :attr:`CompiledTrace.fingerprint` is computed from the original
events — tags included — so store keys and provenance are unaffected.
"""

from __future__ import annotations

import hashlib
from array import array
from collections.abc import Iterable, Sequence

from .events import AllocationEvent, EventKind

#: Value of :attr:`CompiledTrace.kinds` entries for ALLOC / FREE events.
ALLOC_CODE = 1
FREE_CODE = 0

#: Slot value of a FREE event whose request id was never (or is no longer)
#: live at that point of the stream — the replay loop skips such events,
#: exactly as the legacy loop skips a free whose allocation failed.
NO_SLOT = -1


class CompiledTrace:
    """Flat, immutable, cheaply picklable form of an allocation trace.

    Every integer column is stored in the smallest signed ``array`` typecode
    that fits its value range (``b``/``h``/``i``/``q``), so the pickled form
    stays a handful of bytes per event however long the trace grows.

    Attributes
    ----------
    kinds:
        ``bytes`` of length ``len(trace)``; ``ALLOC_CODE`` or ``FREE_CODE``
        per event.  Iterating ``bytes`` yields plain integers, which is what
        makes the replay loop branch cheap.
    sizes:
        ``array`` — requested payload bytes per event (0 for frees).
    request_ids:
        ``array`` — the original request id per event (kept so the
        event stream can be reconstructed; replay itself never touches it).
    timestamps:
        ``array`` — logical time per event.
    slots:
        ``array`` — for an ALLOC, a dense slot index (allocation number
        in stream order); for a FREE, the slot of the allocation it
        releases, or :data:`NO_SLOT`.  Slots let the replay keep live
        addresses in a flat list instead of a per-event dict.
    slot_sizes:
        ``array`` — requested payload bytes per *slot*, so a FREE can
        recover the size of the allocation it releases without touching the
        block object.
    slot_count:
        Number of ALLOC events (size of the slot table).
    has_live_rebinding:
        True when some ALLOC re-uses a request id that is still live at
        that point of the stream (a malformed trace that ``validate()``
        rejects but replay tolerates).  Static slot resolution cannot
        express the legacy loop's behaviour for such streams — it rebinds
        the id only when the allocation *succeeds* at runtime — so the
        profiler falls back to the event loop when this flag is set.
    slot_base:
        Global slot index of this trace's first ALLOC.  A one-shot compile
        always has ``slot_base == 0``; a *segment* emitted by
        :class:`SegmentedTraceCompiler` carries the number of allocations
        seen in earlier segments, so its ``slots`` column holds globally
        unique values while ``slot_sizes`` stays local (index
        ``slot - slot_base``).  A FREE whose slot is below ``slot_base``
        releases an allocation from an earlier segment.
    name / fingerprint:
        Identity of the source trace; the fingerprint is the trace's
        content hash over the *original* events (tags included).
    """

    __slots__ = (
        "kinds",
        "sizes",
        "request_ids",
        "timestamps",
        "slots",
        "slot_sizes",
        "slot_count",
        "has_live_rebinding",
        "name",
        "fingerprint",
        "slot_base",
    )

    def __init__(
        self,
        kinds: bytes,
        sizes: array,
        request_ids: array,
        timestamps: array,
        slots: array,
        slot_sizes: array,
        slot_count: int,
        has_live_rebinding: bool = False,
        name: str = "trace",
        fingerprint: str = "",
        slot_base: int = 0,
    ) -> None:
        self.kinds = kinds
        self.sizes = sizes
        self.request_ids = request_ids
        self.timestamps = timestamps
        self.slots = slots
        self.slot_sizes = slot_sizes
        self.slot_count = slot_count
        self.has_live_rebinding = has_live_rebinding
        self.name = name
        self.fingerprint = fingerprint
        self.slot_base = slot_base

    def __len__(self) -> int:
        return len(self.kinds)

    # ``__slots__`` classes have no instance dict; spell the pickle protocol
    # out so the compiled form round-trips on every protocol version.
    def __getstate__(self) -> tuple:
        return (
            self.kinds,
            self.sizes,
            self.request_ids,
            self.timestamps,
            self.slots,
            self.slot_sizes,
            self.slot_count,
            self.has_live_rebinding,
            self.name,
            self.fingerprint,
            self.slot_base,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.kinds,
            self.sizes,
            self.request_ids,
            self.timestamps,
            self.slots,
            self.slot_sizes,
            self.slot_count,
            self.has_live_rebinding,
            self.name,
            self.fingerprint,
            self.slot_base,
        ) = state

    def __reduce__(self) -> tuple:
        return (_rebuild_compiled, (self.__getstate__(),))

    def nbytes(self) -> int:
        """Approximate in-memory size of the columnar data, in bytes."""
        return (
            len(self.kinds)
            + self.sizes.itemsize * len(self.sizes)
            + self.request_ids.itemsize * len(self.request_ids)
            + self.timestamps.itemsize * len(self.timestamps)
            + self.slots.itemsize * len(self.slots)
            + self.slot_sizes.itemsize * len(self.slot_sizes)
        )

    def events(self) -> list[AllocationEvent]:
        """Reconstruct the event objects (tags are not preserved)."""
        out: list[AllocationEvent] = []
        append = out.append
        request_ids = self.request_ids
        sizes = self.sizes
        timestamps = self.timestamps
        for index, kind in enumerate(self.kinds):
            if kind:
                append(
                    AllocationEvent(
                        EventKind.ALLOC,
                        request_ids[index],
                        sizes[index],
                        timestamps[index],
                    )
                )
            else:
                append(
                    AllocationEvent(
                        EventKind.FREE, request_ids[index], 0, timestamps[index]
                    )
                )
        return out


def _rebuild_compiled(state: tuple) -> CompiledTrace:
    compiled = CompiledTrace.__new__(CompiledTrace)
    compiled.__setstate__(state)
    return compiled


def _pack(values: list[int]) -> array:
    """Store ``values`` in the smallest signed typecode that fits them."""
    lo = min(values, default=0)
    hi = max(values, default=0)
    for typecode in ("b", "h", "i", "q"):
        bound = 1 << (8 * array(typecode).itemsize - 1)
        if -bound <= lo and hi < bound:
            return array(typecode, values)
    return array("q", values)  # pragma: no cover - values exceed 64 bits


def compile_trace(
    events: Sequence[AllocationEvent], name: str = "trace", fingerprint: str = ""
) -> CompiledTrace:
    """Lower an event stream into its columnar form (one pass).

    Slot resolution mirrors the legacy replay loop's ``dict`` bookkeeping
    exactly: every ALLOC claims a fresh slot (re-allocating an id moves the
    id to the new slot, as a dict overwrite would); a FREE consumes the
    current slot of its id, so a second FREE of the same id resolves to
    :data:`NO_SLOT` and is skipped by the replay.
    """
    count = len(events)
    kinds = bytearray(count)
    sizes = [0] * count
    request_ids = [0] * count
    timestamps = [0] * count
    slots = [0] * count
    slot_of: dict[int, int] = {}
    slot_sizes: list[int] = []
    slot_count = 0
    has_live_rebinding = False
    for index, event in enumerate(events):
        request_id = event.request_id
        request_ids[index] = request_id
        timestamps[index] = event.timestamp
        if event.kind is EventKind.ALLOC:
            kinds[index] = ALLOC_CODE
            size = event.size
            sizes[index] = size
            slots[index] = slot_count
            slot_sizes.append(size)
            if request_id in slot_of:
                has_live_rebinding = True
            slot_of[request_id] = slot_count
            slot_count += 1
        else:
            slots[index] = slot_of.pop(request_id, NO_SLOT)
    return CompiledTrace(
        kinds=bytes(kinds),
        sizes=_pack(sizes),
        request_ids=_pack(request_ids),
        timestamps=_pack(timestamps),
        slots=_pack(slots),
        slot_sizes=_pack(slot_sizes),
        slot_count=slot_count,
        has_live_rebinding=has_live_rebinding,
        name=name,
        fingerprint=fingerprint,
    )


class SegmentedTraceCompiler:
    """Incremental :func:`compile_trace`: one segment per :meth:`feed` call.

    The streaming-ingestion layer (:mod:`repro.stream`) hands event chunks
    to this compiler as they come off a log; each chunk becomes a
    :class:`CompiledTrace` *segment* whose columns are, by construction,
    exactly the corresponding rows of the one-shot compile of the full
    stream:

    * ``slots`` values are **global** — slot resolution (the ``slot_of``
      dict of :func:`compile_trace`) carries across segment boundaries, so
      a FREE in segment 3 of an allocation from segment 1 resolves to that
      allocation's global slot;
    * ``slot_sizes`` is **local** to the segment (index
      ``slot - slot_base``) so per-segment memory stays bounded by the
      chunk size, not by the live-allocation population;
    * :attr:`slot_count` is the number of allocations in *this* segment;
      the compiler's own :attr:`slot_count` is the running global total.

    The compiler also maintains the stream's content hash incrementally
    (same per-event formula as
    :meth:`~repro.profiling.tracer.AllocationTrace.fingerprint`, tags
    included), so a fully fed stream yields the exact fingerprint the
    one-shot trace would — store keys and provenance agree whichever path
    compiled the trace.

    Memory held between calls is the live-allocation table (one dict entry
    per live allocation) plus the hash state — the invariant the streaming
    benchmark asserts.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        #: request id -> global slot of its live allocation.
        self._slot_of: dict[int, int] = {}
        #: Global allocation count across all segments fed so far.
        self.slot_count = 0
        #: Global event count across all segments fed so far.
        self.events_seen = 0
        self.segments = 0
        self.has_live_rebinding = False
        self._digest = hashlib.sha256()

    def fingerprint(self) -> str:
        """Content hash of everything fed so far (hex SHA-256).

        After the final :meth:`feed`, equal to the one-shot
        :meth:`AllocationTrace.fingerprint <repro.profiling.tracer
        .AllocationTrace.fingerprint>` of the whole stream.
        """
        return self._digest.hexdigest()

    def feed(self, events: Iterable[AllocationEvent]) -> CompiledTrace:
        """Compile one chunk of the stream into its segment.

        Returns the segment even when ``events`` is empty (zero-length
        segments replay as no-ops), so callers need no special casing.
        """
        events = list(events)
        count = len(events)
        kinds = bytearray(count)
        sizes = [0] * count
        request_ids = [0] * count
        timestamps = [0] * count
        slots = [0] * count
        slot_base = self.slot_count
        slot_sizes: list[int] = []
        slot_of = self._slot_of
        digest = self._digest
        slot_count = self.slot_count
        for index, event in enumerate(events):
            request_id = event.request_id
            request_ids[index] = request_id
            timestamps[index] = event.timestamp
            digest.update(
                f"{event.kind.value}|{request_id}|{event.size}"
                f"|{event.timestamp}|{event.tag}\n".encode()
            )
            if event.kind is EventKind.ALLOC:
                kinds[index] = ALLOC_CODE
                size = event.size
                sizes[index] = size
                slots[index] = slot_count
                slot_sizes.append(size)
                if request_id in slot_of:
                    self.has_live_rebinding = True
                slot_of[request_id] = slot_count
                slot_count += 1
            else:
                slots[index] = slot_of.pop(request_id, NO_SLOT)
        self.slot_count = slot_count
        self.events_seen += count
        self.segments += 1
        return CompiledTrace(
            kinds=bytes(kinds),
            sizes=_pack(sizes),
            request_ids=_pack(request_ids),
            timestamps=_pack(timestamps),
            slots=_pack(slots),
            slot_sizes=_pack(slot_sizes),
            slot_count=slot_count - slot_base,
            has_live_rebinding=self.has_live_rebinding,
            name=self.name,
            fingerprint="",
            slot_base=slot_base,
        )
