"""Allocation-trace events.

A *trace* is the sequence of dynamic-memory operations the application
performs: each event is either an allocation (with a payload size) or a
free (referring back to the allocation it releases by its request id).
Traces are the only application input the exploration needs — the paper's
tool links the real application against instrumented allocators; the
reproduction replays recorded/synthesised traces through simulated ones,
which exercises exactly the same allocator code paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    """Type of a trace event."""

    ALLOC = "alloc"
    FREE = "free"


@dataclass(frozen=True)
class AllocationEvent:
    """One dynamic-memory operation in an application trace.

    Attributes
    ----------
    kind:
        ``ALLOC`` or ``FREE``.
    request_id:
        Identifier linking a FREE back to the ALLOC it releases.  Every
        ALLOC introduces a fresh id; the matching FREE repeats it.
    size:
        Payload bytes requested (ALLOC only; zero for FREE events).
    timestamp:
        Logical time of the event in abstract "application ticks"; only the
        order matters to the allocator, but phases/bursts are visible here.
    tag:
        Optional free-form label ("packet_rx", "wavelet_node"...) used by
        reports to attribute allocations to application data structures.
    """

    kind: EventKind
    request_id: int
    size: int = 0
    timestamp: int = 0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise ValueError(f"request_id must be non-negative, got {self.request_id}")
        if self.kind is EventKind.ALLOC and self.size <= 0:
            raise ValueError(f"ALLOC events need a positive size, got {self.size}")
        if self.kind is EventKind.FREE and self.size != 0:
            raise ValueError("FREE events must not carry a size")
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.timestamp}")

    @property
    def is_alloc(self) -> bool:
        return self.kind is EventKind.ALLOC

    @property
    def is_free(self) -> bool:
        return self.kind is EventKind.FREE


def alloc(request_id: int, size: int, timestamp: int = 0, tag: str = "") -> AllocationEvent:
    """Convenience constructor for an ALLOC event."""
    return AllocationEvent(EventKind.ALLOC, request_id, size, timestamp, tag)


def free(request_id: int, timestamp: int = 0, tag: str = "") -> AllocationEvent:
    """Convenience constructor for a FREE event."""
    return AllocationEvent(EventKind.FREE, request_id, 0, timestamp, tag)
