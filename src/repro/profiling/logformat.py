"""Profiling log format (writer).

The paper's profiling step emits raw text logs that "can reach Gigabytes for
one single configuration" and are then parsed (in under 20 seconds) by a
Perl/O'Caml back-end.  This module is the writer half of that pipeline: it
serialises :class:`ProfileResult` objects — and optionally full per-event
records — into a simple line-oriented text format that
:mod:`repro.profiling.parser` reads back.

Format (one record per line, ``|``-separated fields):

``R|<config_id>|<trace>|<accesses>|<footprint>|<energy_nj>|<cycles>``
    Result summary line for one configuration.
``L|<config_id>|<module>|<reads>|<writes>|<footprint>|<energy_nj>``
    Per-memory-level breakdown line.
``P|<config_id>|<pool>|<module>|<accesses>|<peak_footprint>``
    Per-pool breakdown line.
``E|<config_id>|<op_index>|<kind>|<size>|<request_id>|<timestamp>``
    Optional raw event echo used to blow the logs up to realistic sizes for
    the parsing-speed experiment.  The request id and timestamp make the
    echo a complete record of the trace, so the streaming-ingestion layer
    (:class:`repro.stream.ProfilingLogSource`) can replay a log's events
    without the original trace file.
``#``-prefixed lines are comments and are ignored by the parser.
"""

from __future__ import annotations

import io
from collections.abc import Iterable
from pathlib import Path

from .metrics import ProfileResult
from .tracer import AllocationTrace

RESULT_PREFIX = "R"
LEVEL_PREFIX = "L"
POOL_PREFIX = "P"
EVENT_PREFIX = "E"
COMMENT_PREFIX = "#"


def format_result_line(result: ProfileResult) -> str:
    """Serialise the summary metrics of one profiling run."""
    totals = result.totals
    return (
        f"{RESULT_PREFIX}|{result.configuration_id}|{result.trace_name}|"
        f"{totals.accesses}|{totals.footprint}|{totals.energy_nj:.6f}|{totals.cycles}"
    )


def format_level_lines(result: ProfileResult) -> list[str]:
    """Serialise the per-memory-level breakdown of one profiling run."""
    lines = []
    for level in result.per_level.values():
        lines.append(
            f"{LEVEL_PREFIX}|{result.configuration_id}|{level.module_name}|"
            f"{level.reads}|{level.writes}|{level.footprint}|{level.energy_nj:.6f}"
        )
    return lines


def format_pool_lines(result: ProfileResult) -> list[str]:
    """Serialise the per-pool breakdown of one profiling run."""
    lines = []
    for pool_name, data in result.per_pool.items():
        if pool_name.startswith("__"):
            continue
        lines.append(
            f"{POOL_PREFIX}|{result.configuration_id}|{pool_name}|"
            f"{data.get('module', '?')}|{data.get('accesses', 0)}|"
            f"{data.get('peak_footprint', 0)}"
        )
    return lines


def format_event_lines(
    configuration_id: str, trace: AllocationTrace
) -> Iterable[str]:
    """Yield one raw-event line per trace event (the log-bloating records)."""
    for index, event in enumerate(trace):
        yield (
            f"{EVENT_PREFIX}|{configuration_id}|{index}|"
            f"{event.kind.value}|{event.size}|{event.request_id}|{event.timestamp}"
        )


class ProfilingLogWriter:
    """Writes profiling logs for one or many configurations.

    Parameters
    ----------
    stream:
        Any text file-like object.  Use :meth:`open` for a path-based writer.
    include_events:
        When True, every trace event is echoed into the log — this is what
        makes real logs huge and what the parsing-speed benchmark exercises.
    """

    def __init__(self, stream: io.TextIOBase, include_events: bool = False) -> None:
        self.stream = stream
        self.include_events = include_events
        self.lines_written = 0

    @classmethod
    def open(cls, path: str | Path, include_events: bool = False) -> "ProfilingLogWriter":
        """Create a writer over a file path (caller must call :meth:`close`)."""
        handle = open(path, "w", encoding="utf-8")
        return cls(handle, include_events=include_events)

    def comment(self, text: str) -> None:
        self._write_line(f"{COMMENT_PREFIX} {text}")

    def write_result(
        self, result: ProfileResult, trace: AllocationTrace | None = None
    ) -> None:
        """Append one profiling run to the log."""
        self._write_line(format_result_line(result))
        for line in format_level_lines(result):
            self._write_line(line)
        for line in format_pool_lines(result):
            self._write_line(line)
        if self.include_events and trace is not None:
            for line in format_event_lines(result.configuration_id, trace):
                self._write_line(line)

    def _write_line(self, line: str) -> None:
        self.stream.write(line + "\n")
        self.lines_written += 1

    def close(self) -> None:
        self.stream.close()


def write_log(
    path: str | Path,
    results: Iterable[ProfileResult],
    trace: AllocationTrace | None = None,
    include_events: bool = False,
) -> int:
    """Write all ``results`` to ``path``; returns the number of lines written."""
    writer = ProfilingLogWriter.open(path, include_events=include_events)
    try:
        writer.comment("dmexplore profiling log")
        for result in results:
            writer.write_result(result, trace)
    finally:
        writer.close()
    return writer.lines_written


def log_to_string(
    results: Iterable[ProfileResult],
    trace: AllocationTrace | None = None,
    include_events: bool = False,
) -> str:
    """Render a log into a string (used by tests and the parser benchmark)."""
    buffer = io.StringIO()
    writer = ProfilingLogWriter(buffer, include_events=include_events)
    writer.comment("dmexplore profiling log")
    for result in results:
        writer.write_result(result, trace)
    return buffer.getvalue()
