"""Metric definitions and result containers.

The exploration compares configurations along the four metrics the paper
profiles: memory accesses, memory footprint, energy consumption and
execution time.  :class:`MetricSet` is the per-run record; :data:`METRICS`
declares, for each metric, its unit and its optimisation direction (all are
"lower is better"), which the Pareto machinery consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MetricSpec:
    """Declarative description of one metric."""

    key: str
    label: str
    unit: str
    lower_is_better: bool = True


#: The metrics produced by every profiling run, keyed by their result field.
METRICS: dict[str, MetricSpec] = {
    "accesses": MetricSpec("accesses", "Memory accesses", "accesses"),
    "footprint": MetricSpec("footprint", "Peak memory footprint", "bytes"),
    "energy_nj": MetricSpec("energy_nj", "Memory energy", "nJ"),
    "cycles": MetricSpec("cycles", "Execution time", "cycles"),
}


def metric_spec(key: str) -> MetricSpec:
    """Look up a metric by key (raises KeyError with the valid list)."""
    try:
        return METRICS[key]
    except KeyError:
        valid = ", ".join(METRICS)
        raise KeyError(f"unknown metric '{key}' (valid: {valid})") from None


def metric_keys() -> list[str]:
    """All metric keys in canonical order."""
    return list(METRICS)


@dataclass
class MetricSet:
    """Values of the four profiled metrics for one configuration run."""

    accesses: int = 0
    footprint: int = 0
    energy_nj: float = 0.0
    cycles: int = 0

    def value(self, key: str) -> float:
        """Return the value of metric ``key``."""
        if key not in METRICS:
            valid = ", ".join(METRICS)
            raise KeyError(f"unknown metric '{key}' (valid: {valid})")
        return float(getattr(self, key))

    def values(self, keys: list[str] | None = None) -> tuple[float, ...]:
        """Values of the requested metrics (all four by default), in order."""
        selected = keys or metric_keys()
        return tuple(self.value(key) for key in selected)

    def as_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "footprint": self.footprint,
            "energy_nj": self.energy_nj,
            "cycles": self.cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricSet":
        return cls(
            accesses=int(data["accesses"]),
            footprint=int(data["footprint"]),
            energy_nj=float(data["energy_nj"]),
            cycles=int(data["cycles"]),
        )


@dataclass
class LevelMetrics:
    """Per-memory-level breakdown of accesses, footprint and energy."""

    module_name: str
    reads: int = 0
    writes: int = 0
    footprint: int = 0
    energy_nj: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def as_dict(self) -> dict:
        return {
            "module": self.module_name,
            "reads": self.reads,
            "writes": self.writes,
            "accesses": self.accesses,
            "footprint": self.footprint,
            "energy_nj": self.energy_nj,
        }


@dataclass
class ProfileResult:
    """Full outcome of profiling one configuration on one trace.

    ``totals`` carries the four exploration metrics; ``per_level`` and
    ``per_pool`` keep the detailed breakdowns used by reports and by the
    profiling-log writer.
    """

    configuration_id: str
    trace_name: str
    totals: MetricSet = field(default_factory=MetricSet)
    per_level: dict[str, LevelMetrics] = field(default_factory=dict)
    per_pool: dict[str, dict] = field(default_factory=dict)
    operation_count: int = 0
    leaked_blocks: int = 0

    def level(self, module_name: str) -> LevelMetrics:
        if module_name not in self.per_level:
            self.per_level[module_name] = LevelMetrics(module_name)
        return self.per_level[module_name]

    def as_dict(self) -> dict:
        return {
            "configuration_id": self.configuration_id,
            "trace_name": self.trace_name,
            "totals": self.totals.as_dict(),
            "per_level": {name: lvl.as_dict() for name, lvl in self.per_level.items()},
            "per_pool": self.per_pool,
            "operation_count": self.operation_count,
            "leaked_blocks": self.leaked_blocks,
        }


def improvement_factor(worst: float, best: float) -> float:
    """Ratio worst/best, the "decrease by a factor of X" figure of the paper.

    Returns ``inf`` when best is zero and worst is not; 1.0 when both are
    zero (no range at all).
    """
    if worst < 0 or best < 0:
        raise ValueError("metric values must be non-negative")
    if best == 0:
        return float("inf") if worst > 0 else 1.0
    return worst / best


def percent_decrease(worst: float, best: float) -> float:
    """Percentage decrease from worst to best, as the paper quotes (e.g. 71.74%)."""
    if worst < 0 or best < 0:
        raise ValueError("metric values must be non-negative")
    if worst == 0:
        return 0.0
    return 100.0 * (worst - best) / worst
