"""Fast profiling-log parser.

The reproduction of the paper's Perl/O'Caml back-end: reads the
line-oriented logs produced by :mod:`repro.profiling.logformat` and rebuilds
the per-configuration metric summaries the Pareto analysis needs.  The
parser is deliberately a single streaming pass over the text with no
intermediate object per raw event line, so that multi-hundred-megabyte logs
parse in seconds (see ``benchmarks/test_parser_speed.py`` for the
paper's "< 20 seconds" claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .logformat import (
    COMMENT_PREFIX,
    EVENT_PREFIX,
    LEVEL_PREFIX,
    POOL_PREFIX,
    RESULT_PREFIX,
)
from .metrics import LevelMetrics, MetricSet, ProfileResult


class LogParseError(ValueError):
    """Raised on malformed log lines when strict parsing is requested."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        self.line_number = line_number
        self.line = line
        super().__init__(f"line {line_number}: {reason}: {line!r}")


@dataclass
class ParsedLog:
    """Outcome of parsing one profiling log."""

    results: dict[str, ProfileResult] = field(default_factory=dict)
    event_lines: int = 0
    total_lines: int = 0
    skipped_lines: int = 0
    #: Malformed *final* lines tolerated as a torn tail (a crashed or still
    #: running writer leaves a truncated last line; like the result store's
    #: torn-tail repair, the parser skips it with a counter instead of
    #: raising — strict mode included).  Always 0 or 1, and also counted in
    #: :attr:`skipped_lines`.
    truncated_tail: int = 0

    def configuration_ids(self) -> list[str]:
        return list(self.results)

    def result_for(self, configuration_id: str) -> ProfileResult:
        return self.results[configuration_id]

    def metric_table(self) -> list[dict]:
        """Flat table (one dict per configuration) for CSV/report export."""
        table = []
        for config_id, result in self.results.items():
            row = {"configuration_id": config_id, "trace": result.trace_name}
            row.update(result.totals.as_dict())
            table.append(row)
        return table


class ProfilingLogParser:
    """Streaming parser for profiling logs.

    Parameters
    ----------
    strict:
        When True malformed lines raise :class:`LogParseError`; when False
        (default, matching a robust Perl-style parser) they are counted in
        ``skipped_lines`` and ignored.
    keep_events:
        When True raw event lines are counted per configuration in
        ``per_pool['__events__']``; the lines themselves are never stored.
    """

    def __init__(self, strict: bool = False, keep_events: bool = False) -> None:
        self.strict = strict
        self.keep_events = keep_events

    # -- entry points ------------------------------------------------------

    def parse_path(self, path: str | Path) -> ParsedLog:
        """Parse a log file from disk (streaming, line by line)."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.parse_lines(handle)

    def parse_string(self, text: str) -> ParsedLog:
        """Parse a log held in memory."""
        return self.parse_lines(text.splitlines())

    def parse_lines(self, lines: Iterable[str]) -> ParsedLog:
        """Parse an iterable of log lines.

        One line of lookahead distinguishes a malformed line *inside* the
        log (a real format error: raised in strict mode, counted otherwise)
        from a malformed *final* line (the torn tail a crashed writer
        leaves): the tail is skipped with ``truncated_tail`` set, never
        raised, so a log captured mid-write still parses.
        """
        parsed = ParsedLog()
        event_counts: dict[str, int] = {}
        iterator = iter(lines)
        line_number = 0
        pending = next(iterator, None)
        while pending is not None:
            raw_line = pending
            pending = next(iterator, None)
            line_number += 1
            line = raw_line.rstrip("\n")
            parsed.total_lines += 1
            if not line or line.startswith(COMMENT_PREFIX):
                continue
            prefix, _, rest = line.partition("|")
            try:
                if prefix == RESULT_PREFIX:
                    self._parse_result(rest, parsed)
                elif prefix == LEVEL_PREFIX:
                    self._parse_level(rest, parsed)
                elif prefix == POOL_PREFIX:
                    self._parse_pool(rest, parsed)
                elif prefix == EVENT_PREFIX:
                    parsed.event_lines += 1
                    if self.keep_events:
                        config_id = rest.split("|", 1)[0]
                        event_counts[config_id] = event_counts.get(config_id, 0) + 1
                else:
                    raise ValueError(f"unknown record type '{prefix}'")
            except (ValueError, IndexError) as exc:
                if pending is None:
                    parsed.truncated_tail += 1
                    parsed.skipped_lines += 1
                elif self.strict:
                    raise LogParseError(line_number, line, str(exc)) from exc
                else:
                    parsed.skipped_lines += 1
        if self.keep_events:
            for config_id, count in event_counts.items():
                if config_id in parsed.results:
                    parsed.results[config_id].per_pool["__events__"] = {"count": count}
        return parsed

    # -- record handlers ------------------------------------------------------

    @staticmethod
    def _parse_result(rest: str, parsed: ParsedLog) -> None:
        fields = rest.split("|")
        if len(fields) != 6:
            raise ValueError(f"result record needs 6 fields, got {len(fields)}")
        config_id, trace_name, accesses, footprint, energy, cycles = fields
        result = ProfileResult(configuration_id=config_id, trace_name=trace_name)
        result.totals = MetricSet(
            accesses=int(accesses),
            footprint=int(footprint),
            energy_nj=float(energy),
            cycles=int(cycles),
        )
        parsed.results[config_id] = result

    @staticmethod
    def _parse_level(rest: str, parsed: ParsedLog) -> None:
        fields = rest.split("|")
        if len(fields) != 6:
            raise ValueError(f"level record needs 6 fields, got {len(fields)}")
        config_id, module, reads, writes, footprint, energy = fields
        result = parsed.results.get(config_id)
        if result is None:
            raise ValueError(f"level record for unknown configuration '{config_id}'")
        result.per_level[module] = LevelMetrics(
            module_name=module,
            reads=int(reads),
            writes=int(writes),
            footprint=int(footprint),
            energy_nj=float(energy),
        )

    @staticmethod
    def _parse_pool(rest: str, parsed: ParsedLog) -> None:
        fields = rest.split("|")
        if len(fields) != 5:
            raise ValueError(f"pool record needs 5 fields, got {len(fields)}")
        config_id, pool_name, module, accesses, peak_footprint = fields
        result = parsed.results.get(config_id)
        if result is None:
            raise ValueError(f"pool record for unknown configuration '{config_id}'")
        result.per_pool[pool_name] = {
            "module": module,
            "accesses": int(accesses),
            "peak_footprint": int(peak_footprint),
        }


def parse_log(path: str | Path, strict: bool = False) -> ParsedLog:
    """Convenience wrapper: parse a log file."""
    return ProfilingLogParser(strict=strict).parse_path(path)


def parse_log_text(text: str, strict: bool = False) -> ParsedLog:
    """Convenience wrapper: parse a log held in a string."""
    return ProfilingLogParser(strict=strict).parse_string(text)


def iter_result_metrics(path: str | Path) -> Iterator[tuple[str, MetricSet]]:
    """Stream only the summary metric lines of a log (lowest-memory path)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.startswith(RESULT_PREFIX + "|"):
                continue
            fields = line.rstrip("\n").split("|")
            if len(fields) != 7:
                continue
            _, config_id, _trace, accesses, footprint, energy, cycles = fields
            yield config_id, MetricSet(
                accesses=int(accesses),
                footprint=int(footprint),
                energy_nj=float(energy),
                cycles=int(cycles),
            )
