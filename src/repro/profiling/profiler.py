"""Trace-driven profiler.

Replays an :class:`~repro.profiling.tracer.AllocationTrace` through a
composed allocator mapped onto a memory hierarchy, and produces a
:class:`~repro.profiling.metrics.ProfileResult` — the per-configuration
"simulation (i.e. execution) of our dynamic application" step of the
DATE'06 flow.

Besides the allocator's own metadata accesses, the profiler charges the
*application's* accesses to the allocated payloads (``payload_access_factor``
accesses per allocated byte, charged to the level the owning pool lives on):
data placed in the scratchpad is not only cheaper to manage but also cheaper
to use, which is what makes the pool-mapping parameter matter for energy,
exactly as in the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..allocator.composed import ComposedAllocator
from ..allocator.errors import OutOfMemoryError
from ..memhier.access import breakdown_accesses, footprint_by_level
from ..memhier.energy import EnergyModel
from ..memhier.mapping import PoolMapping
from .metrics import MetricSet, ProfileResult
from .tracer import AllocationTrace

#: Application data accesses charged per allocated payload byte (one write to
#: initialise plus an average of one read of the data during its lifetime).
DEFAULT_PAYLOAD_ACCESS_FACTOR = 2.0


@dataclass
class ProfilerOptions:
    """Tunables of the profiling run."""

    payload_access_factor: float = DEFAULT_PAYLOAD_ACCESS_FACTOR
    fail_on_oom: bool = False
    track_footprint_timeline: bool = False


class Profiler:
    """Replays traces through configured allocators and collects metrics."""

    def __init__(
        self,
        mapping: PoolMapping,
        energy_model: EnergyModel | None = None,
        options: ProfilerOptions | None = None,
    ) -> None:
        self.mapping = mapping
        self.energy_model = energy_model or EnergyModel(mapping.hierarchy)
        self.options = options or ProfilerOptions()

    def run(
        self,
        allocator: ComposedAllocator,
        trace: AllocationTrace,
        configuration_id: str = "",
    ) -> ProfileResult:
        """Profile ``allocator`` over ``trace`` and return the metrics."""
        address_of: dict[int, int] = {}
        payload_accesses_by_pool: dict[str, float] = {}
        oom_failures = 0
        footprint_timeline: list[tuple[int, int]] = []

        for event in trace:
            if event.is_alloc:
                try:
                    address = allocator.malloc(event.size)
                except OutOfMemoryError:
                    oom_failures += 1
                    if self.options.fail_on_oom:
                        raise
                    continue
                address_of[event.request_id] = address
                owner = allocator.owner_of(address)
                if owner is not None:
                    payload_accesses_by_pool[owner.name] = (
                        payload_accesses_by_pool.get(owner.name, 0.0)
                        + event.size * self.options.payload_access_factor
                    )
            else:
                address = address_of.pop(event.request_id, None)
                if address is None:
                    # The matching allocation failed (OOM) and was skipped.
                    continue
                allocator.free(address)
            if self.options.track_footprint_timeline:
                footprint_timeline.append(
                    (event.timestamp, allocator.total_footprint)
                )

        result = self._collect(allocator, trace, configuration_id, payload_accesses_by_pool)
        result.per_pool["__profile__"] = {
            "oom_failures": oom_failures,
            "footprint_timeline_points": len(footprint_timeline),
        }
        if self.options.track_footprint_timeline:
            result.per_pool["__timeline__"] = footprint_timeline
        return result

    def _collect(
        self,
        allocator: ComposedAllocator,
        trace: AllocationTrace,
        configuration_id: str,
        payload_accesses_by_pool: dict[str, float],
    ) -> ProfileResult:
        """Turn raw allocator counters into a :class:`ProfileResult`."""
        breakdown = breakdown_accesses(allocator, self.mapping)
        footprints = footprint_by_level(allocator, self.mapping, peak=True)

        # The "memory accesses" metric of the paper counts the accesses of
        # the DM allocation subsystem itself (metadata reads/writes), so it
        # is recorded before application payload accesses are added.
        allocator_accesses = breakdown.total

        # Charge application payload accesses to the level of the owning
        # pool: they do not count towards the accesses metric but they do
        # make the pool-mapping parameter matter for energy and time.
        for pool_name, payload_accesses in payload_accesses_by_pool.items():
            module = self.mapping.module_of(pool_name)
            level = breakdown.level(module.name)
            # Half the payload accesses are writes (initialisation), half reads.
            level.reads += int(payload_accesses / 2)
            level.writes += int(payload_accesses / 2)

        result = ProfileResult(
            configuration_id=configuration_id or allocator.name,
            trace_name=trace.name,
        )
        operation_count = sum(1 for _ in trace)
        result.operation_count = operation_count
        result.leaked_blocks = allocator.live_blocks

        total_energy = self.energy_model.total_energy_nj(
            breakdown, footprints, operation_count
        )
        total_cycles = self.energy_model.execution_cycles(breakdown, operation_count)

        result.totals = MetricSet(
            accesses=allocator_accesses,
            footprint=sum(footprints.values()),
            energy_nj=total_energy,
            cycles=total_cycles,
        )

        for module in self.mapping.hierarchy:
            level = result.level(module.name)
            accesses = breakdown.levels.get(module.name)
            if accesses is not None:
                level.reads = accesses.reads
                level.writes = accesses.writes
            level.footprint = footprints.get(module.name, 0)
            level.energy_nj = module.energy_for(level.reads, level.writes)

        for pool in allocator.pools:
            result.per_pool[pool.name] = pool.stats.snapshot()
            result.per_pool[pool.name]["module"] = self.mapping.module_of(pool.name).name

        return result


def profile_trace(
    allocator: ComposedAllocator,
    trace: AllocationTrace,
    mapping: PoolMapping,
    energy_model: EnergyModel | None = None,
    configuration_id: str = "",
    options: ProfilerOptions | None = None,
) -> ProfileResult:
    """One-shot convenience wrapper around :class:`Profiler`."""
    profiler = Profiler(mapping, energy_model, options)
    return profiler.run(allocator, trace, configuration_id)
