"""Trace-driven profiler.

Replays an :class:`~repro.profiling.tracer.AllocationTrace` through a
composed allocator mapped onto a memory hierarchy, and produces a
:class:`~repro.profiling.metrics.ProfileResult` — the per-configuration
"simulation (i.e. execution) of our dynamic application" step of the
DATE'06 flow.

Besides the allocator's own metadata accesses, the profiler charges the
*application's* accesses to the allocated payloads (``payload_access_factor``
accesses per allocated byte, charged to the level the owning pool lives on):
data placed in the scratchpad is not only cheaper to manage but also cheaper
to use, which is what makes the pool-mapping parameter matter for energy,
exactly as in the paper's methodology.

Two replay implementations produce byte-identical results:

* the **fast path** (:meth:`Profiler._replay_compiled`, the default)
  iterates the trace's columnar :class:`~repro.profiling.compiled
  .CompiledTrace` form — no event objects, live addresses in a flat slot
  table, the composed allocator's size→pool routing table instead of
  per-event ``accepts()`` scans, and an inline kernel for dedicated
  fixed-size pools whose :class:`~repro.allocator.stats.PoolStats` counter
  updates are batched into local integers and flushed once per run;
* the **legacy path** (:meth:`Profiler._replay_events`, selected with
  ``ProfilerOptions(fast_replay=False)``) walks the event objects and calls
  ``malloc``/``free`` per event.  It is the executable specification the
  fast path is tested against (see ``tests/test_fast_replay.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..allocator.blocks import Block, BlockStatus
from ..allocator.composed import ComposedAllocator
from ..allocator.errors import OutOfMemoryError
from ..allocator.freelist import LIFOFreeList
from ..allocator.pool import FixedSizePool
from ..memhier.access import breakdown_accesses, footprint_by_level
from ..memhier.energy import EnergyModel
from ..memhier.mapping import PoolMapping
from .compiled import CompiledTrace
from .metrics import MetricSet, ProfileResult
from .tracer import AllocationTrace

#: Application data accesses charged per allocated payload byte (one write to
#: initialise plus an average of one read of the data during its lifetime).
DEFAULT_PAYLOAD_ACCESS_FACTOR = 2.0


@dataclass
class ProfilerOptions:
    """Tunables of the profiling run."""

    payload_access_factor: float = DEFAULT_PAYLOAD_ACCESS_FACTOR
    fail_on_oom: bool = False
    track_footprint_timeline: bool = False
    #: Replay over the compiled (columnar) trace form.  The fast path is
    #: byte-identical to the legacy event loop on every metric; disable it
    #: only to measure or to cross-check (the identity tests do).
    fast_replay: bool = True


class Profiler:
    """Replays traces through configured allocators and collects metrics."""

    def __init__(
        self,
        mapping: PoolMapping,
        energy_model: EnergyModel | None = None,
        options: ProfilerOptions | None = None,
    ) -> None:
        self.mapping = mapping
        self.energy_model = energy_model or EnergyModel(mapping.hierarchy)
        self.options = options or ProfilerOptions()

    def run(
        self,
        allocator: ComposedAllocator,
        trace: AllocationTrace,
        configuration_id: str = "",
    ) -> ProfileResult:
        """Profile ``allocator`` over ``trace`` and return the metrics."""
        # The fast path manipulates ComposedAllocator internals (owner map,
        # dispatch counter); a subclass could redefine those, so only the
        # exact type takes it.  Malformed streams that re-allocate a live
        # request id (see CompiledTrace.has_live_rebinding) cannot be
        # resolved statically and take the event loop too.
        compiled = (
            trace.compiled()
            if self.options.fast_replay and type(allocator) is ComposedAllocator
            else None
        )
        if compiled is not None and not compiled.has_live_rebinding:
            replay = self._replay_compiled(allocator, compiled)
        else:
            replay = self._replay_events(allocator, trace)
        payload_accesses_by_pool, oom_failures, footprint_timeline = replay

        result = self._collect(allocator, trace, configuration_id, payload_accesses_by_pool)
        result.per_pool["__profile__"] = {
            "oom_failures": oom_failures,
            "footprint_timeline_points": len(footprint_timeline),
        }
        if self.options.track_footprint_timeline:
            result.per_pool["__timeline__"] = footprint_timeline
        return result

    # -- replay: legacy event loop ----------------------------------------

    def _replay_events(
        self, allocator: ComposedAllocator, trace: AllocationTrace
    ) -> tuple[dict[str, float], int, list[tuple[int, int]]]:
        """Replay the event objects one by one (the reference semantics)."""
        address_of: dict[int, int] = {}
        payload_accesses_by_pool: dict[str, float] = {}
        oom_failures = 0
        footprint_timeline: list[tuple[int, int]] = []

        for event in trace:
            if event.is_alloc:
                try:
                    address = allocator.malloc(event.size)
                except OutOfMemoryError:
                    oom_failures += 1
                    if self.options.fail_on_oom:
                        raise
                    continue
                address_of[event.request_id] = address
                owner = allocator.owner_of(address)
                if owner is not None:
                    payload_accesses_by_pool[owner.name] = (
                        payload_accesses_by_pool.get(owner.name, 0.0)
                        + event.size * self.options.payload_access_factor
                    )
            else:
                address = address_of.pop(event.request_id, None)
                if address is None:
                    # The matching allocation failed (OOM) and was skipped.
                    continue
                allocator.free(address)
            if self.options.track_footprint_timeline:
                footprint_timeline.append(
                    (event.timestamp, allocator.total_footprint)
                )
        return payload_accesses_by_pool, oom_failures, footprint_timeline

    # -- replay: compiled fast path ----------------------------------------

    def _replay_compiled(
        self, allocator: ComposedAllocator, compiled: CompiledTrace
    ) -> tuple[dict[str, float], int, list[tuple[int, int]]]:
        """Replay the columnar trace form; byte-identical to the event loop.

        Per event the loop touches flat arrays and local names only: the
        kind byte, the size column, the precomputed slot of the matching
        allocation (instead of a request-id dict), the allocator's memoised
        size→pool route, and — for dedicated fixed-size pools, the paper's
        hot-size pools — an inlined allocate/free kernel whose PoolStats
        counter updates accumulate in local integers that are flushed onto
        the stats objects once, after the loop.
        """
        options = self.options
        factor = options.payload_access_factor
        fail_on_oom = options.fail_on_oom
        track_timeline = options.track_footprint_timeline

        kinds = compiled.kinds
        sizes = compiled.sizes
        slots = compiled.slots
        timestamps = compiled.timestamps

        slot_sizes = compiled.slot_sizes

        pools = allocator.pools
        pool_count = len(pools)
        position_of = {pool: index for index, pool in enumerate(pools)}
        owner_of = allocator._owner_of

        # Inline-kernel state per pool position.  A pool is kernel-eligible
        # when it is an exact FixedSizePool with the stock LIFO free list
        # and no pre-existing blocks (what the factory hands out): the
        # kernel then tracks its free list as a plain stack of *addresses*
        # and rebuilds the Block-level pool state once, at flush time —
        # every fixed-pool block has the pool's gross size, so the block
        # objects carry no information the flush cannot reconstruct.
        int_stacks: list[list | None] = [None] * pool_count
        lists_: list[LIFOFreeList | None] = [None] * pool_count
        stats_of = [pool.stats for pool in pools]
        live_of = [pool._live for pool in pools]
        freed_of = [pool._freed_addresses for pool in pools]
        freed_bounded = [pool._freed_order is not None for pool in pools]
        gross_of = [getattr(pool, "gross_size", 0) for pool in pools]
        spaces = [pool.space for pool in pools]
        carve_pushed = [False] * pool_count
        for index, pool in enumerate(pools):
            if (
                type(pool) is FixedSizePool
                and type(pool.free_list) is LIFOFreeList
                and not pool.free_list._blocks
                and not pool._live
            ):
                int_stacks[index] = []
                lists_[index] = pool.free_list

        # Batched PoolStats deltas: a warm kernel allocate always charges
        # 1 read + 2 writes + 1 visit and a kernel free 1 read + 1 write,
        # so two counters per pool capture everything and the flush derives
        # the reads/writes/visits/ops/live deltas once per run.  Peaked
        # quantities (live_payload/peak_live_payload, footprint) are NOT
        # batched: they are order-sensitive, so the kernel updates them on
        # the stats object in event order like every other path does.
        warm_allocs = [0] * pool_count
        warm_frees = [0] * pool_count

        # Payload-access accumulation in first-allocation order, exactly the
        # insertion order the legacy dict would have.
        payload_totals = [0.0] * pool_count
        payload_touched = [False] * pool_count
        payload_order: list[int] = []

        # size -> (route entries, position of a kernel-backed first pool or
        # -1).  Entries pair each routed pool with its position so the slow
        # path can run the kernel for fixed pools at *any* route position
        # (capacity spills may reach a second dedicated pool).
        plans: dict[int, tuple[tuple, int]] = {}
        routed_pools = allocator.routed_pools

        # Per-slot live address and owning-pool position.  The owner map of
        # the allocator is reconciled once at flush time (surviving slots in
        # allocation order — the exact content and order the per-event dict
        # maintenance would leave behind).
        addresses: list[int | None] = [None] * compiled.slot_count
        owners = bytearray(compiled.slot_count) if pool_count <= 255 else None
        if owners is None:  # pragma: no cover - absurd pool count
            owners = [0] * compiled.slot_count
        oom_failures = 0
        footprint_timeline: list[tuple[int, int]] = []
        dispatch = 0

        def allocate_slow(size: int, entries: tuple) -> tuple:
            """Route ``size`` through the plan's pools, kernels included.

            Handles everything the warm inline path does not: cold kernel
            pools (grow + carve, on integer addresses), non-kernel pools
            (their own ``allocate``), and capacity spills along the route.
            Returns ``(address, position, last_oom)`` with ``address`` None
            when every pool refused.
            """
            last_oom = None
            for pool, position in entries:
                stack = int_stacks[position]
                if stack is None:
                    try:
                        return pool.allocate(size), position, None
                    except OutOfMemoryError as exc:
                        last_oom = exc
                        continue
                stats = stats_of[position]
                if stack:
                    # Warm kernel allocate reached through a spill.
                    address = stack.pop()
                    warm_allocs[position] += 1
                else:
                    # Cold kernel allocate: grow the backing store and
                    # carve it (inlined FixedSizePool cold path — direct
                    # stats updates, they commute with the batched ones).
                    gross = gross_of[position]
                    try:
                        grown = spaces[position].grow(gross)
                    except OutOfMemoryError as exc:
                        stats.failed_allocs += 1
                        last_oom = exc
                        continue
                    footprint = stats.footprint + grown.size
                    stats.footprint = footprint
                    if footprint > stats.peak_footprint:
                        stats.peak_footprint = footprint
                    count = grown.size // gross
                    address = grown.start
                    if count > 1:
                        stack.extend(
                            range(address + gross, address + count * gross, gross)
                        )
                        carve_pushed[position] = True
                    stats.accesses.writes += count + 1
                    stats.alloc_ops += 1
                    stats.live_blocks += 1
                    stats.live_gross += gross
                live_payload = stats.live_payload + size
                stats.live_payload = live_payload
                if live_payload > stats.peak_live_payload:
                    stats.peak_live_payload = live_payload
                freed_of[position].discard(address)
                return address, position, None
            return None, -1, last_oom

        try:
            for index, kind in enumerate(kinds):
                if kind:
                    size = sizes[index]
                    plan = plans.get(size)
                    if plan is None:
                        route = routed_pools(size)
                        entries = tuple(
                            (pool, position_of[pool]) for pool in route
                        )
                        first = entries[0][1] if entries else -1
                        if first >= 0 and int_stacks[first] is None:
                            first = -1
                        plan = (entries, first)
                        plans[size] = plan
                    entries, first = plan
                    dispatch += 1
                    if first >= 0:
                        stack = int_stacks[first]
                        if stack:
                            # Inline FixedSizePool allocate, warm path: pop
                            # the newest free address, charge one read + two
                            # writes (head follow, head update, header) —
                            # batched into warm_allocs.
                            address = stack.pop()
                            warm_allocs[first] += 1
                            stats = stats_of[first]
                            live_payload = stats.live_payload + size
                            stats.live_payload = live_payload
                            if live_payload > stats.peak_live_payload:
                                stats.peak_live_payload = live_payload
                            freed_of[first].discard(address)
                            slot = slots[index]
                            addresses[slot] = address
                            owners[slot] = first
                            payload_totals[first] += size * factor
                            if not payload_touched[first]:
                                payload_touched[first] = True
                                payload_order.append(first)
                            if track_timeline:
                                footprint_timeline.append(
                                    (timestamps[index], allocator.total_footprint)
                                )
                            continue
                    address, position, last_oom = allocate_slow(size, entries)
                    if address is None:
                        oom_failures += 1
                        if fail_on_oom:
                            if last_oom is not None:
                                raise last_oom
                            raise OutOfMemoryError(size, pool=allocator.name)
                        continue
                    slot = slots[index]
                    addresses[slot] = address
                    owners[slot] = position
                    payload_totals[position] += size * factor
                    if not payload_touched[position]:
                        payload_touched[position] = True
                        payload_order.append(position)
                else:
                    slot = slots[index]
                    address = addresses[slot] if slot >= 0 else None
                    if address is None:
                        # Never-allocated id, double free in the trace, or
                        # the matching allocation failed (OOM): skipped.
                        continue
                    addresses[slot] = None
                    dispatch += 1
                    position = owners[slot]
                    stack = int_stacks[position]
                    if stack is not None:
                        # Inline FixedSizePool free: header read + free-list
                        # link write (batched into warm_frees), push the
                        # address back on the stack.
                        if freed_bounded[position]:
                            pools[position]._note_freed(address)
                        else:
                            freed_of[position].add(address)
                        warm_frees[position] += 1
                        stats_of[position].live_payload -= slot_sizes[slot]
                        stack.append(address)
                    else:
                        pools[position].free(address)
                if track_timeline:
                    footprint_timeline.append(
                        (timestamps[index], allocator.total_footprint)
                    )
        finally:
            allocator._dispatch_accesses += dispatch
            for position in range(pool_count):
                allocs = warm_allocs[position]
                frees = warm_frees[position]
                if allocs or frees:
                    stats = stats_of[position]
                    accesses = stats.accesses
                    accesses.reads += allocs + frees
                    accesses.writes += 2 * allocs + frees
                    stats.free_list_visits += allocs
                    stats.alloc_ops += allocs
                    stats.free_ops += frees
                    stats.live_blocks += allocs - frees
                    stats.live_gross += (allocs - frees) * gross_of[position]
                stack = int_stacks[position]
                if stack is None:
                    continue
                # Rebuild the Block-level free list the legacy path would
                # have left behind (same order, same field values).
                if stack:
                    gross = gross_of[position]
                    name = pools[position].name
                    lists_[position]._blocks += [
                        Block(address, gross, pool_name=name) for address in stack
                    ]
                if frees or carve_pushed[position]:
                    # The legacy push() records its single-node visit.
                    lists_[position].last_insertion_visits = 1
            # Reconcile the owner map and the kernel pools' live tables:
            # surviving (leaked) allocations, in allocation order — exactly
            # what per-event maintenance leaves behind.
            for slot, address in enumerate(addresses):
                if address is not None:
                    position = owners[slot]
                    pool = pools[position]
                    owner_of[address] = pool
                    if int_stacks[position] is not None:
                        live_of[position][address] = Block(
                            address,
                            gross_of[position],
                            BlockStatus.ALLOCATED,
                            slot_sizes[slot],
                            pool.name,
                        )

        payload_accesses_by_pool = {
            pools[position].name: payload_totals[position]
            for position in payload_order
        }
        return payload_accesses_by_pool, oom_failures, footprint_timeline

    def _collect(
        self,
        allocator: ComposedAllocator,
        trace: AllocationTrace,
        configuration_id: str,
        payload_accesses_by_pool: dict[str, float],
    ) -> ProfileResult:
        """Turn raw allocator counters into a :class:`ProfileResult`."""
        breakdown = breakdown_accesses(allocator, self.mapping)
        footprints = footprint_by_level(allocator, self.mapping, peak=True)

        # The "memory accesses" metric of the paper counts the accesses of
        # the DM allocation subsystem itself (metadata reads/writes), so it
        # is recorded before application payload accesses are added.
        allocator_accesses = breakdown.total

        # Charge application payload accesses to the level of the owning
        # pool: they do not count towards the accesses metric but they do
        # make the pool-mapping parameter matter for energy and time.
        for pool_name, payload_accesses in payload_accesses_by_pool.items():
            module = self.mapping.module_of(pool_name)
            level = breakdown.level(module.name)
            # Half the payload accesses are writes (initialisation), half reads.
            level.reads += int(payload_accesses / 2)
            level.writes += int(payload_accesses / 2)

        result = ProfileResult(
            configuration_id=configuration_id or allocator.name,
            trace_name=trace.name,
        )
        # The trace knows its length (the compiled form even without
        # materialised events); re-iterating every event just to count them
        # was a measurable slice of short-trace profiling.
        operation_count = len(trace)
        result.operation_count = operation_count
        result.leaked_blocks = allocator.live_blocks

        total_energy = self.energy_model.total_energy_nj(
            breakdown, footprints, operation_count
        )
        total_cycles = self.energy_model.execution_cycles(breakdown, operation_count)

        result.totals = MetricSet(
            accesses=allocator_accesses,
            footprint=sum(footprints.values()),
            energy_nj=total_energy,
            cycles=total_cycles,
        )

        for module in self.mapping.hierarchy:
            level = result.level(module.name)
            accesses = breakdown.levels.get(module.name)
            if accesses is not None:
                level.reads = accesses.reads
                level.writes = accesses.writes
            level.footprint = footprints.get(module.name, 0)
            level.energy_nj = module.energy_for(level.reads, level.writes)

        for pool in allocator.pools:
            result.per_pool[pool.name] = pool.stats.snapshot()
            result.per_pool[pool.name]["module"] = self.mapping.module_of(pool.name).name

        return result


class _TraceHandle:
    """Duck-typed stand-in for a trace in :meth:`Profiler._collect`.

    ``_collect`` only reads ``trace.name`` and ``len(trace)``; a streaming
    session has no :class:`AllocationTrace` object to hand it, just the name
    and the running event count.
    """

    __slots__ = ("name", "_length")

    def __init__(self, name: str, length: int) -> None:
        self.name = name
        self._length = length

    def __len__(self) -> int:
        return self._length


class SegmentReplaySession:
    """Replays :class:`CompiledTrace` *segments*, carrying state across them.

    The streaming layer (:mod:`repro.stream`) compiles an unbounded event
    stream into bounded segments; this session replays them one by one
    through a single allocator, so the final counters — and the
    :class:`~repro.profiling.metrics.ProfileResult` built from them — are
    byte-identical to a one-shot :meth:`Profiler.run` over the whole trace
    (property-tested over random segmentations in ``tests/test_stream.py``).

    How the identity is kept:

    * each segment replays through a per-segment copy of the compiled fast
      path.  Kernel eligibility is recomputed per segment, so a pool warmed
      by an earlier segment (its free list or live table is populated)
      naturally drops to its own ``allocate``/``free`` methods — the
      reference semantics — while untouched pools still take the kernel;
    * allocations surviving a segment are carried in a ``global slot ->
      (address, pool position, size)`` table; a FREE whose slot predates the
      segment (``slot < slot_base``) releases through the owning pool
      exactly as :meth:`ComposedAllocator.free` would (dispatch charge,
      owner-map pop, ``pool.free``);
    * payload-access attribution, OOM counts and the footprint timeline
      accumulate across segments in event order.

    Between segments the caller may take a :meth:`snapshot` — a cumulative
    :class:`ProfileResult` at the segment boundary — which is what windowed
    analysis differentiates into per-window metrics.

    With ``ProfilerOptions(fast_replay=False)`` (or a subclassed allocator)
    the session replays each segment's reconstructed events through the
    legacy ``malloc``/``free`` loop, carrying the live address table
    instead; streams that re-bind a live request id (malformed; rejected by
    ``AllocationTrace.validate``) are only supported by that mode.
    """

    def __init__(
        self,
        profiler: Profiler,
        allocator: ComposedAllocator,
        name: str = "stream",
    ) -> None:
        self.profiler = profiler
        self.allocator = allocator
        self.name = name
        options = profiler.options
        self._fast = bool(options.fast_replay) and type(allocator) is ComposedAllocator
        self.oom_failures = 0
        self.footprint_timeline: list[tuple[int, int]] = []
        self.events_seen = 0
        self.segments_replayed = 0
        #: global slot -> (address, pool position, payload size) of
        #: allocations alive across a segment boundary (fast mode).
        self._survivors: dict[int, tuple[int, int, int]] = {}
        #: request id -> address of live allocations (legacy mode).
        self._address_of: dict[int, int] = {}
        # Pool tables that are valid for the allocator's whole lifetime.
        pools = allocator.pools
        self._pools = pools
        self._position_of = {pool: index for index, pool in enumerate(pools)}
        self._stats_of = [pool.stats for pool in pools]
        self._live_of = [pool._live for pool in pools]
        self._freed_of = [pool._freed_addresses for pool in pools]
        self._freed_bounded = [pool._freed_order is not None for pool in pools]
        self._gross_of = [getattr(pool, "gross_size", 0) for pool in pools]
        self._spaces = [pool.space for pool in pools]
        # Payload-access accumulation in global first-touch order: folding
        # each segment's local first-touch order preserves it.
        self._payload_totals = [0.0] * len(pools)
        self._payload_touched = [False] * len(pools)
        self._payload_order: list[int] = []
        self._payload_by_name: dict[str, float] = {}

    # -- segment replay ----------------------------------------------------

    def replay_segment(self, segment: CompiledTrace) -> None:
        """Replay one segment, updating the carried state."""
        if self._fast:
            if segment.has_live_rebinding:
                raise ValueError(
                    "streaming fast replay requires a well-formed trace "
                    "(an ALLOC re-binds a live request id); replay with "
                    "ProfilerOptions(fast_replay=False)"
                )
            self._replay_segment_fast(segment)
        else:
            self._replay_segment_events(segment)
        self.events_seen += len(segment)
        self.segments_replayed += 1

    def _replay_segment_events(self, segment: CompiledTrace) -> None:
        """Legacy per-event replay of one segment (reference semantics)."""
        allocator = self.allocator
        options = self.profiler.options
        address_of = self._address_of
        payload = self._payload_by_name
        for event in segment.events():
            if event.is_alloc:
                try:
                    address = allocator.malloc(event.size)
                except OutOfMemoryError:
                    self.oom_failures += 1
                    if options.fail_on_oom:
                        raise
                    continue
                address_of[event.request_id] = address
                owner = allocator.owner_of(address)
                if owner is not None:
                    payload[owner.name] = (
                        payload.get(owner.name, 0.0)
                        + event.size * options.payload_access_factor
                    )
            else:
                address = address_of.pop(event.request_id, None)
                if address is None:
                    continue
                allocator.free(address)
            if options.track_footprint_timeline:
                self.footprint_timeline.append(
                    (event.timestamp, allocator.total_footprint)
                )

    def _replay_segment_fast(self, segment: CompiledTrace) -> None:
        """Fast-path replay of one segment (columnar, kernels, batching).

        A transcription of :meth:`Profiler._replay_compiled` with three
        changes: kernel eligibility is recomputed here (per segment), the
        slot table is local to the segment (``slot - slot_base``), and
        cross-segment FREEs go through the carried survivor table.  The
        one-shot method itself is left untouched — it is the proven hot
        path the identity tests compare against.
        """
        allocator = self.allocator
        options = self.profiler.options
        factor = options.payload_access_factor
        fail_on_oom = options.fail_on_oom
        track_timeline = options.track_footprint_timeline

        kinds = segment.kinds
        sizes = segment.sizes
        slots = segment.slots
        timestamps = segment.timestamps
        slot_sizes = segment.slot_sizes
        slot_base = segment.slot_base

        pools = self._pools
        pool_count = len(pools)
        position_of = self._position_of
        owner_of = allocator._owner_of
        stats_of = self._stats_of
        live_of = self._live_of
        freed_of = self._freed_of
        freed_bounded = self._freed_bounded
        gross_of = self._gross_of
        spaces = self._spaces
        payload_totals = self._payload_totals
        payload_touched = self._payload_touched
        payload_order = self._payload_order
        survivors = self._survivors

        # Kernel eligibility, recomputed per segment: a pool warmed by an
        # earlier segment has free-list blocks or live entries and drops to
        # its own allocate/free; a still-fresh pool takes the kernel.
        int_stacks: list[list | None] = [None] * pool_count
        lists_: list[LIFOFreeList | None] = [None] * pool_count
        carve_pushed = [False] * pool_count
        for index, pool in enumerate(pools):
            if (
                type(pool) is FixedSizePool
                and type(pool.free_list) is LIFOFreeList
                and not pool.free_list._blocks
                and not pool._live
            ):
                int_stacks[index] = []
                lists_[index] = pool.free_list

        warm_allocs = [0] * pool_count
        warm_frees = [0] * pool_count

        # Route plans are per segment because they bake in eligibility.
        plans: dict[int, tuple[tuple, int]] = {}
        routed_pools = allocator.routed_pools

        addresses: list[int | None] = [None] * segment.slot_count
        owners = bytearray(segment.slot_count) if pool_count <= 255 else None
        if owners is None:  # pragma: no cover - absurd pool count
            owners = [0] * segment.slot_count
        oom_failures = 0
        footprint_timeline = self.footprint_timeline
        dispatch = 0

        def allocate_slow(size: int, entries: tuple) -> tuple:
            last_oom = None
            for pool, position in entries:
                stack = int_stacks[position]
                if stack is None:
                    try:
                        return pool.allocate(size), position, None
                    except OutOfMemoryError as exc:
                        last_oom = exc
                        continue
                stats = stats_of[position]
                if stack:
                    address = stack.pop()
                    warm_allocs[position] += 1
                else:
                    gross = gross_of[position]
                    try:
                        grown = spaces[position].grow(gross)
                    except OutOfMemoryError as exc:
                        stats.failed_allocs += 1
                        last_oom = exc
                        continue
                    footprint = stats.footprint + grown.size
                    stats.footprint = footprint
                    if footprint > stats.peak_footprint:
                        stats.peak_footprint = footprint
                    count = grown.size // gross
                    address = grown.start
                    if count > 1:
                        stack.extend(
                            range(address + gross, address + count * gross, gross)
                        )
                        carve_pushed[position] = True
                    stats.accesses.writes += count + 1
                    stats.alloc_ops += 1
                    stats.live_blocks += 1
                    stats.live_gross += gross
                live_payload = stats.live_payload + size
                stats.live_payload = live_payload
                if live_payload > stats.peak_live_payload:
                    stats.peak_live_payload = live_payload
                freed_of[position].discard(address)
                return address, position, None
            return None, -1, last_oom

        try:
            for index, kind in enumerate(kinds):
                if kind:
                    size = sizes[index]
                    plan = plans.get(size)
                    if plan is None:
                        route = routed_pools(size)
                        entries = tuple(
                            (pool, position_of[pool]) for pool in route
                        )
                        first = entries[0][1] if entries else -1
                        if first >= 0 and int_stacks[first] is None:
                            first = -1
                        plan = (entries, first)
                        plans[size] = plan
                    entries, first = plan
                    dispatch += 1
                    if first >= 0:
                        stack = int_stacks[first]
                        if stack:
                            address = stack.pop()
                            warm_allocs[first] += 1
                            stats = stats_of[first]
                            live_payload = stats.live_payload + size
                            stats.live_payload = live_payload
                            if live_payload > stats.peak_live_payload:
                                stats.peak_live_payload = live_payload
                            freed_of[first].discard(address)
                            local = slots[index] - slot_base
                            addresses[local] = address
                            owners[local] = first
                            payload_totals[first] += size * factor
                            if not payload_touched[first]:
                                payload_touched[first] = True
                                payload_order.append(first)
                            if track_timeline:
                                footprint_timeline.append(
                                    (timestamps[index], allocator.total_footprint)
                                )
                            continue
                    address, position, last_oom = allocate_slow(size, entries)
                    if address is None:
                        oom_failures += 1
                        if fail_on_oom:
                            if last_oom is not None:
                                raise last_oom
                            raise OutOfMemoryError(size, pool=allocator.name)
                        continue
                    local = slots[index] - slot_base
                    addresses[local] = address
                    owners[local] = position
                    payload_totals[position] += size * factor
                    if not payload_touched[position]:
                        payload_touched[position] = True
                        payload_order.append(position)
                else:
                    slot = slots[index]
                    if slot >= slot_base:
                        # Same-segment free: the local slot table.
                        local = slot - slot_base
                        address = addresses[local]
                        if address is None:
                            continue
                        addresses[local] = None
                        dispatch += 1
                        position = owners[local]
                        stack = int_stacks[position]
                        if stack is not None:
                            if freed_bounded[position]:
                                pools[position]._note_freed(address)
                            else:
                                freed_of[position].add(address)
                            warm_frees[position] += 1
                            stats_of[position].live_payload -= slot_sizes[local]
                            stack.append(address)
                        else:
                            pools[position].free(address)
                    elif slot >= 0:
                        # Cross-segment free: release through the carried
                        # survivor table, exactly as ComposedAllocator.free
                        # would (dispatch charge, owner pop, pool free).
                        entry = survivors.pop(slot, None)
                        if entry is None:
                            continue
                        address, position, _size = entry
                        dispatch += 1
                        owner_of.pop(address, None)
                        pools[position].free(address)
                    else:
                        # Never-allocated id or double free: skipped.
                        continue
                if track_timeline:
                    footprint_timeline.append(
                        (timestamps[index], allocator.total_footprint)
                    )
        finally:
            allocator._dispatch_accesses += dispatch
            for position in range(pool_count):
                allocs = warm_allocs[position]
                frees = warm_frees[position]
                if allocs or frees:
                    stats = stats_of[position]
                    accesses = stats.accesses
                    accesses.reads += allocs + frees
                    accesses.writes += 2 * allocs + frees
                    stats.free_list_visits += allocs
                    stats.alloc_ops += allocs
                    stats.free_ops += frees
                    stats.live_blocks += allocs - frees
                    stats.live_gross += (allocs - frees) * gross_of[position]
                stack = int_stacks[position]
                if stack is None:
                    continue
                if stack:
                    gross = gross_of[position]
                    name = pools[position].name
                    lists_[position]._blocks += [
                        Block(address, gross, pool_name=name) for address in stack
                    ]
                if frees or carve_pushed[position]:
                    lists_[position].last_insertion_visits = 1
            # Reconcile this segment's survivors into the owner map, the
            # kernel pools' live tables, and the carried survivor table.
            for local, address in enumerate(addresses):
                if address is not None:
                    position = owners[local]
                    pool = pools[position]
                    owner_of[address] = pool
                    if int_stacks[position] is not None:
                        live_of[position][address] = Block(
                            address,
                            gross_of[position],
                            BlockStatus.ALLOCATED,
                            slot_sizes[local],
                            pool.name,
                        )
                    survivors[slot_base + local] = (
                        address,
                        position,
                        slot_sizes[local],
                    )
            self.oom_failures += oom_failures

    # -- results -----------------------------------------------------------

    def _payload_accesses(self) -> dict[str, float]:
        if self._fast:
            return {
                self._pools[position].name: self._payload_totals[position]
                for position in self._payload_order
            }
        return dict(self._payload_by_name)

    def snapshot(self, configuration_id: str = "") -> ProfileResult:
        """Cumulative :class:`ProfileResult` at the current segment boundary.

        A pure read of the live counters — taking snapshots does not change
        what later segments or :meth:`finish` produce.  Windowed analysis
        differentiates consecutive snapshots into per-window metrics.
        """
        return self.profiler._collect(
            self.allocator,
            _TraceHandle(self.name, self.events_seen),
            configuration_id,
            self._payload_accesses(),
        )

    def finish(self, configuration_id: str = "") -> ProfileResult:
        """Final :class:`ProfileResult` over everything replayed so far.

        Byte-identical to what :meth:`Profiler.run` returns for the
        concatenated trace (same totals, per-level metrics, per-pool
        snapshots and ``__profile__`` section).
        """
        result = self.snapshot(configuration_id)
        result.per_pool["__profile__"] = {
            "oom_failures": self.oom_failures,
            "footprint_timeline_points": len(self.footprint_timeline),
        }
        if self.profiler.options.track_footprint_timeline:
            result.per_pool["__timeline__"] = self.footprint_timeline
        return result


def profile_trace(
    allocator: ComposedAllocator,
    trace: AllocationTrace,
    mapping: PoolMapping,
    energy_model: EnergyModel | None = None,
    configuration_id: str = "",
    options: ProfilerOptions | None = None,
) -> ProfileResult:
    """One-shot convenience wrapper around :class:`Profiler`."""
    profiler = Profiler(mapping, energy_model, options)
    return profiler.run(allocator, trace, configuration_id)
