"""Allocation trace container and validation.

:class:`AllocationTrace` wraps an ordered list of
:class:`~repro.profiling.events.AllocationEvent` with the consistency checks
and summary statistics the exploration relies on (well-formedness, live-byte
profile, size histogram, hot sizes).

Because the same trace is replayed once per explored configuration, the
trace also owns two derived-once caches:

* :meth:`AllocationTrace.fingerprint` — the content hash keying the result
  store and artefact provenance;
* :meth:`AllocationTrace.compiled` — the columnar
  :class:`~repro.profiling.compiled.CompiledTrace` the fast replay loop and
  the process-pool backend consume.

Both caches are invalidated by :meth:`append`/:meth:`extend` (or an
assignment to :attr:`events`).  Mutating the ``events`` list in place
bypasses the invalidation — call :meth:`invalidate_caches` afterwards if
you must do that.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from .compiled import CompiledTrace, compile_trace
from .events import AllocationEvent, EventKind


class TraceError(ValueError):
    """Raised when a trace is malformed (free-before-alloc, double free...)."""


@dataclass
class TraceSummary:
    """Aggregate statistics of a trace (used by reports and workload tests)."""

    event_count: int
    alloc_count: int
    free_count: int
    total_requested_bytes: int
    peak_live_bytes: int
    peak_live_blocks: int
    distinct_sizes: int
    max_size: int
    min_size: int
    leaked_blocks: int

    def as_dict(self) -> dict:
        return {
            "event_count": self.event_count,
            "alloc_count": self.alloc_count,
            "free_count": self.free_count,
            "total_requested_bytes": self.total_requested_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "peak_live_blocks": self.peak_live_blocks,
            "distinct_sizes": self.distinct_sizes,
            "max_size": self.max_size,
            "min_size": self.min_size,
            "leaked_blocks": self.leaked_blocks,
        }


class AllocationTrace:
    """Ordered sequence of allocation events produced by one application run.

    A trace can be constructed from an event list (the usual case) or from a
    :class:`~repro.profiling.compiled.CompiledTrace` via
    :meth:`from_compiled`; in the latter case the event objects are only
    materialised on first access to :attr:`events` (replay and length
    queries never need them), which is what keeps worker-process traces
    cheap.
    """

    def __init__(
        self, events: list[AllocationEvent] | None = None, name: str = "trace"
    ) -> None:
        self._events: list[AllocationEvent] | None = (
            events if events is not None else []
        )
        self.name = name
        self._compiled: CompiledTrace | None = None
        self._fingerprint: str | None = None

    @property
    def events(self) -> list[AllocationEvent]:
        """The event list (materialised from the compiled form on demand)."""
        if self._events is None:
            assert self._compiled is not None
            self._events = self._compiled.events()
        return self._events

    @events.setter
    def events(self, value: list[AllocationEvent]) -> None:
        self._events = value
        self.invalidate_caches()

    def __len__(self) -> int:
        if self._events is None and self._compiled is not None:
            return len(self._compiled)
        return len(self.events)

    def __iter__(self) -> Iterator[AllocationEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> AllocationEvent:
        return self.events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AllocationTrace):
            return NotImplemented
        return self.name == other.name and self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"AllocationTrace(name={self.name!r}, events=<{len(self)} events>)"

    def append(self, event: AllocationEvent) -> None:
        self.events.append(event)
        self.invalidate_caches()

    def extend(self, events: Iterable[AllocationEvent]) -> None:
        self.events.extend(events)
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Drop the cached fingerprint/compiled form after a mutation."""
        self._compiled = None
        self._fingerprint = None

    # -- compiled (columnar) form ------------------------------------------

    def compiled(self) -> CompiledTrace:
        """The columnar form of this trace (computed once, then cached).

        The compiled form is what the profiler's fast replay loop iterates
        and what the process-pool backend ships to workers; it carries the
        trace's :meth:`fingerprint` so a receiver can key caches without
        rehashing the events.
        """
        if self._compiled is None:
            self._compiled = compile_trace(
                self.events, name=self.name, fingerprint=self.fingerprint()
            )
        return self._compiled

    @classmethod
    def from_compiled(cls, compiled: CompiledTrace) -> "AllocationTrace":
        """Wrap a compiled trace without materialising event objects.

        The returned trace replays, measures ``len`` and fingerprints
        without ever touching :attr:`events`; accessing :attr:`events`
        reconstructs the objects (tags are not preserved by the compiled
        form).
        """
        trace = cls.__new__(cls)
        trace._events = None
        trace.name = compiled.name
        trace._compiled = compiled
        trace._fingerprint = compiled.fingerprint or None
        return trace

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check well-formedness; raises :class:`TraceError` on violations.

        Rules: a FREE must refer to a previously allocated, not-yet-freed
        request id; an ALLOC must introduce a fresh id; timestamps must be
        non-decreasing.
        """
        live: set[int] = set()
        seen: set[int] = set()
        last_timestamp = 0
        for index, event in enumerate(self.events):
            if event.timestamp < last_timestamp:
                raise TraceError(
                    f"event {index}: timestamp {event.timestamp} goes backwards "
                    f"(previous {last_timestamp})"
                )
            last_timestamp = event.timestamp
            if event.is_alloc:
                if event.request_id in seen:
                    raise TraceError(
                        f"event {index}: request id {event.request_id} allocated twice"
                    )
                seen.add(event.request_id)
                live.add(event.request_id)
            else:
                if event.request_id not in seen:
                    raise TraceError(
                        f"event {index}: free of never-allocated id {event.request_id}"
                    )
                if event.request_id not in live:
                    raise TraceError(
                        f"event {index}: double free of id {event.request_id}"
                    )
                live.remove(event.request_id)

    # -- identity --------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of the event stream (hex SHA-256).

        Two traces with the same events — whatever their :attr:`name` — map
        to the same fingerprint, so a renamed copy of a workload trace still
        hits the persistent result store.  The fingerprint covers everything
        that can influence profiling (kind, request id, size, timestamp and
        tag of every event, in order); it is the trace component of the
        result-store key and of result-artefact provenance.

        The hash is computed once and cached; :meth:`append`/:meth:`extend`
        invalidate it.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for event in self.events:
                digest.update(
                    f"{event.kind.value}|{event.request_id}|{event.size}"
                    f"|{event.timestamp}|{event.tag}\n".encode()
                )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # -- statistics -----------------------------------------------------------

    def summary(self) -> TraceSummary:
        """Compute aggregate statistics (single pass)."""
        live_bytes = 0
        live_blocks = 0
        peak_live_bytes = 0
        peak_live_blocks = 0
        total_requested = 0
        alloc_count = 0
        free_count = 0
        sizes: Counter[int] = Counter()
        size_of: dict[int, int] = {}
        for event in self.events:
            if event.is_alloc:
                alloc_count += 1
                total_requested += event.size
                sizes[event.size] += 1
                size_of[event.request_id] = event.size
                live_bytes += event.size
                live_blocks += 1
                peak_live_bytes = max(peak_live_bytes, live_bytes)
                peak_live_blocks = max(peak_live_blocks, live_blocks)
            else:
                free_count += 1
                live_bytes -= size_of.get(event.request_id, 0)
                live_blocks -= 1
        return TraceSummary(
            event_count=len(self.events),
            alloc_count=alloc_count,
            free_count=free_count,
            total_requested_bytes=total_requested,
            peak_live_bytes=peak_live_bytes,
            peak_live_blocks=peak_live_blocks,
            distinct_sizes=len(sizes),
            max_size=max(sizes) if sizes else 0,
            min_size=min(sizes) if sizes else 0,
            leaked_blocks=alloc_count - free_count,
        )

    def size_histogram(self) -> dict[int, int]:
        """Allocation count per requested size (descending by count)."""
        counts = Counter(event.size for event in self.events if event.is_alloc)
        return dict(counts.most_common())

    def hot_sizes(self, top: int = 5) -> list[int]:
        """The ``top`` most frequently allocated sizes (most frequent first).

        These are the sizes the paper's methodology gives dedicated pools to.
        """
        if top <= 0:
            raise ValueError(f"top must be positive, got {top}")
        counts = Counter(event.size for event in self.events if event.is_alloc)
        return [size for size, _count in counts.most_common(top)]

    def live_profile(self) -> list[tuple[int, int]]:
        """(timestamp, live bytes) after every event — the footprint lower bound."""
        profile: list[tuple[int, int]] = []
        live_bytes = 0
        size_of: dict[int, int] = {}
        for event in self.events:
            if event.is_alloc:
                size_of[event.request_id] = event.size
                live_bytes += event.size
            else:
                live_bytes -= size_of.get(event.request_id, 0)
            profile.append((event.timestamp, live_bytes))
        return profile

    def slice(self, start: int, stop: int) -> "AllocationTrace":
        """Return a sub-trace of events[start:stop] (no validation)."""
        return AllocationTrace(events=self.events[start:stop], name=f"{self.name}[{start}:{stop}]")
