"""Streaming workload subsystem.

Bounded-memory trace ingestion (:mod:`repro.stream.sources`,
:mod:`repro.stream.ingest`) and windowed phase analysis
(:mod:`repro.stream.windows`): million-event allocation logs stream
through chunked compilation and segment replay without ever being
materialised, producing results byte-identical to the in-memory paths,
and a per-window Pareto analysis shows which configurations dominate each
traffic phase.  See ``docs/workloads.md``.
"""

from .ingest import (
    DEFAULT_SEGMENT_EVENTS,
    StreamOutcome,
    compile_stream,
    iter_event_chunks,
    stream_profile,
)
from .sources import (
    ProfilingLogSource,
    StreamFormatError,
    SyntheticSource,
    TraceFileSource,
    TraceSource,
    open_event_stream,
)
from .windows import (
    WindowSpec,
    WindowedAnalysis,
    compile_windows,
    windowed_exploration,
)

__all__ = [
    "DEFAULT_SEGMENT_EVENTS",
    "ProfilingLogSource",
    "StreamFormatError",
    "StreamOutcome",
    "SyntheticSource",
    "TraceFileSource",
    "TraceSource",
    "WindowSpec",
    "WindowedAnalysis",
    "compile_stream",
    "compile_windows",
    "iter_event_chunks",
    "open_event_stream",
    "stream_profile",
    "windowed_exploration",
]
