"""Chunked compilation and segment replay: the streaming pipeline core.

One segment at a time: a chunk of events is compiled into a columnar
:class:`~repro.profiling.compiled.CompiledTrace` segment by the
carry-state :class:`~repro.profiling.compiled.SegmentedTraceCompiler`,
replayed through a :class:`~repro.profiling.profiler.SegmentReplaySession`
(which keeps pool state across segment boundaries), and then dropped.
Peak memory is bounded by the segment size plus the live allocation set —
never by the stream length — while the produced
:class:`~repro.profiling.metrics.ProfileResult` is byte-identical to a
whole-trace compile-and-replay (``tests/test_stream.py`` proves it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..allocator.composed import ComposedAllocator
from ..memhier.energy import EnergyModel
from ..memhier.mapping import PoolMapping
from ..profiling.compiled import CompiledTrace, SegmentedTraceCompiler
from ..profiling.events import AllocationEvent
from ..profiling.metrics import ProfileResult
from ..profiling.profiler import Profiler, ProfilerOptions, SegmentReplaySession

#: Default events per compiled segment.  Large enough that the per-segment
#: replay setup cost vanishes, small enough that a segment's columns stay
#: comfortably inside cache-friendly territory.
DEFAULT_SEGMENT_EVENTS = 65536


def iter_event_chunks(
    events: Iterable[AllocationEvent], segment_events: int
) -> Iterator[list[AllocationEvent]]:
    """Split an event iterable into lists of at most ``segment_events``."""
    if segment_events < 1:
        raise ValueError("segment_events must be >= 1")
    chunk: list[AllocationEvent] = []
    for event in events:
        chunk.append(event)
        if len(chunk) >= segment_events:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _event_iterator(source) -> Iterator[AllocationEvent]:
    """Events of a :class:`TraceSource`, or of any plain event iterable."""
    events = getattr(source, "events", None)
    if callable(events):
        return iter(events())
    return iter(source)


def compile_stream(
    source,
    name: str | None = None,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
    compiler: SegmentedTraceCompiler | None = None,
) -> Iterator[CompiledTrace]:
    """Compile a source into :class:`CompiledTrace` segments, lazily.

    ``source`` is a :class:`~repro.stream.sources.TraceSource` or any
    iterable of events.  Pass your own ``compiler`` to read the stream
    fingerprint and event totals after the generator is exhausted; the
    concatenated segment columns equal a one-shot
    :func:`~repro.profiling.compiled.compile_trace` of the same events.
    """
    if compiler is None:
        compiler = SegmentedTraceCompiler(name or getattr(source, "name", "stream"))
    for chunk in iter_event_chunks(_event_iterator(source), segment_events):
        yield compiler.feed(chunk)


@dataclass
class StreamOutcome:
    """What one streamed profiling run produced.

    ``fingerprint`` is the same content hash
    :meth:`~repro.profiling.tracer.AllocationTrace.fingerprint` would give
    the full trace, so streamed results key the result store and artefact
    provenance identically to in-memory runs.
    """

    result: ProfileResult
    fingerprint: str
    events: int
    segments: int
    oom_failures: int


def stream_profile(
    source,
    mapping: PoolMapping,
    allocator: ComposedAllocator,
    energy_model: EnergyModel | None = None,
    options: ProfilerOptions | None = None,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
    configuration_id: str = "",
    name: str | None = None,
) -> StreamOutcome:
    """Profile a streamed trace in bounded memory.

    The streaming counterpart of :meth:`repro.profiling.profiler.Profiler.run`:
    compiles and replays one segment at a time, so only one segment's
    columns (plus the allocator's live state) are ever resident.  The
    returned result is byte-identical to profiling the fully materialised
    trace through the same allocator.
    """
    profiler = Profiler(mapping, energy_model=energy_model, options=options)
    trace_name = name or getattr(source, "name", "stream")
    compiler = SegmentedTraceCompiler(trace_name)
    session = SegmentReplaySession(profiler, allocator, name=trace_name)
    for segment in compile_stream(
        source, name=trace_name, segment_events=segment_events, compiler=compiler
    ):
        session.replay_segment(segment)
    result = session.finish(configuration_id)
    return StreamOutcome(
        result=result,
        fingerprint=compiler.fingerprint(),
        events=compiler.events_seen,
        segments=compiler.segments,
        oom_failures=session.oom_failures,
    )
