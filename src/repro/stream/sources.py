"""Bounded-memory event sources for streaming trace ingestion.

The paper's profiling step produces raw allocation logs that "can reach
Gigabytes for one single configuration" — far beyond what the in-memory
:class:`~repro.profiling.tracer.AllocationTrace` container was built for.
This module is the input half of the streaming pipeline: every source
yields :class:`~repro.profiling.events.AllocationEvent` objects one at a
time from a file, a compressed archive or a generator, never holding more
than one line (or one live-set entry) in memory.  The other half —
chunked compilation and segment replay — lives in
:mod:`repro.stream.ingest`.

Three concrete sources cover the formats the repository already writes:

* :class:`TraceFileSource` — the ``A``/``F`` trace text format of
  :mod:`repro.workloads.traces` (plain, gzipped, or stdin);
* :class:`ProfilingLogSource` — the enriched ``E``-record echo lines of
  :mod:`repro.profiling.logformat` profiling logs;
* :class:`SyntheticSource` — a seeded server-style generator used by the
  scale benchmark to stream millions of events without a file at all.
"""

from __future__ import annotations

import gzip
import random
import sys
from pathlib import Path
from typing import IO, Iterator, Protocol, runtime_checkable

from ..profiling.events import AllocationEvent, EventKind, alloc, free
from ..profiling.logformat import COMMENT_PREFIX, EVENT_PREFIX


class StreamFormatError(ValueError):
    """Raised when a streamed line cannot be parsed (strict sources only)."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        self.line_number = line_number
        self.line = line
        super().__init__(f"line {line_number}: {reason}: {line!r}")


@runtime_checkable
class TraceSource(Protocol):
    """Anything that can stream allocation events in order.

    A source is re-iterable when its backing medium is (files are, stdin
    is not); the streaming pipeline only ever asks for one pass.
    """

    name: str

    def events(self) -> Iterator[AllocationEvent]:
        """Yield the source's events, in trace order, one at a time."""
        ...


def open_event_stream(path: str | Path) -> IO[str]:
    """Open a text line stream over ``path``.

    ``-`` reads standard input (the conventional pipe spelling), a
    ``.gz`` suffix transparently decompresses, anything else opens as a
    plain text file.  Callers must close the returned handle unless it is
    ``sys.stdin``.
    """
    if str(path) == "-":
        return sys.stdin
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _close_stream(handle: IO[str]) -> None:
    if handle is not sys.stdin:
        handle.close()


class TraceFileSource:
    """Streams the ``A``/``F`` trace text format line by line.

    Reads exactly what :func:`repro.workloads.traces.save_trace` writes
    (``A <id> <size> <timestamp> [tag]`` / ``F <id> <timestamp> [tag]``,
    ``#`` comments, a ``# trace NAME`` header naming the trace) without
    materialising the event list — :func:`~repro.workloads.traces.load_trace`
    is the whole-file counterpart.  A malformed line raises
    :class:`StreamFormatError` when ``strict`` (the default, matching
    ``load_trace``) and is skipped with :attr:`skipped_lines` counted
    otherwise; like the profiling-log parser, a malformed *final* line is
    always tolerated as a torn tail (:attr:`truncated_tail`).
    """

    def __init__(self, path: str | Path, name: str | None = None, strict: bool = True) -> None:
        self.path = path
        stem = Path(str(path)).stem if str(path) != "-" else "stdin"
        self.name = name or stem
        self._explicit_name = name is not None
        self.strict = strict
        self.skipped_lines = 0
        self.truncated_tail = 0

    def events(self) -> Iterator[AllocationEvent]:
        handle = open_event_stream(self.path)
        try:
            iterator = iter(handle)
            line_number = 0
            pending = next(iterator, None)
            while pending is not None:
                raw_line = pending
                pending = next(iterator, None)
                line_number += 1
                line = raw_line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    comment = line[1:].strip()
                    if comment.startswith("trace ") and not self._explicit_name:
                        self.name = comment[len("trace "):].strip() or self.name
                    continue
                try:
                    event = self._parse_line(line)
                except ValueError as exc:
                    if pending is None:
                        self.truncated_tail += 1
                        self.skipped_lines += 1
                    elif self.strict:
                        raise StreamFormatError(line_number, line, str(exc)) from exc
                    else:
                        self.skipped_lines += 1
                    continue
                yield event
        finally:
            _close_stream(handle)

    @staticmethod
    def _parse_line(line: str) -> AllocationEvent:
        fields = line.split()
        kind = fields[0]
        if kind == "A":
            if len(fields) < 4:
                raise ValueError("ALLOC lines need id, size and timestamp")
            tag = fields[4] if len(fields) > 4 else ""
            return alloc(int(fields[1]), int(fields[2]), int(fields[3]), tag)
        if kind == "F":
            if len(fields) < 3:
                raise ValueError("FREE lines need id and timestamp")
            tag = fields[3] if len(fields) > 3 else ""
            return free(int(fields[1]), int(fields[2]), tag)
        raise ValueError(f"unknown record type '{kind}'")


class ProfilingLogSource:
    """Streams the event echo (``E`` records) out of a profiling log.

    The enriched echo format
    (``E|<config_id>|<op_index>|<kind>|<size>|<request_id>|<timestamp>``)
    is a complete record of the replayed trace, so a multi-gigabyte log is
    itself a trace source: this class filters one configuration's event
    lines out of the log — by default the first configuration whose
    events appear — and reconstructs the events.  Every non-event record
    (``R``/``L``/``P``/comments) is passed over without parsing; malformed
    event lines are skipped with :attr:`skipped_lines` counted, matching
    the torn-tail tolerance of :class:`~repro.profiling.parser.ProfilingLogParser`.
    """

    def __init__(
        self,
        path: str | Path,
        configuration_id: str | None = None,
        name: str | None = None,
    ) -> None:
        self.path = path
        self.configuration_id = configuration_id
        stem = Path(str(path)).stem if str(path) != "-" else "stdin"
        self.name = name or stem
        self.skipped_lines = 0

    def events(self) -> Iterator[AllocationEvent]:
        prefix = EVENT_PREFIX + "|"
        wanted = self.configuration_id
        handle = open_event_stream(self.path)
        try:
            for line in handle:
                if not line.startswith(prefix):
                    continue
                fields = line.rstrip("\n").split("|")
                try:
                    if len(fields) != 7:
                        raise ValueError("event record needs 7 fields")
                    _, config_id, _index, kind, size, request_id, timestamp = fields
                    if wanted is None:
                        # Lock onto the first configuration seen; later
                        # configurations' echoes repeat the same trace.
                        wanted = config_id
                    elif config_id != wanted:
                        continue
                    if kind == EventKind.ALLOC.value:
                        event = alloc(int(request_id), int(size), int(timestamp))
                    elif kind == EventKind.FREE.value:
                        event = free(int(request_id), int(timestamp))
                    else:
                        raise ValueError(f"unknown event kind '{kind}'")
                except ValueError:
                    self.skipped_lines += 1
                    continue
                yield event
        finally:
            _close_stream(handle)


class SyntheticSource:
    """Seeded server-style event generator with a bounded live set.

    Streams ``operations`` alloc/free operations (plus the drain frees for
    whatever is still live at the end) without ever holding more than
    ``live_limit`` outstanding allocations — the generator itself runs in
    O(live_limit) memory, which is what lets the scale benchmark push
    millions of events through the ingestion pipeline and assert that peak
    memory tracks the *segment* size, not the stream length.  Identical
    seeds produce identical streams.
    """

    def __init__(
        self,
        operations: int,
        live_limit: int = 256,
        sizes: tuple[int, ...] = (24, 32, 48, 64, 128, 256, 512),
        seed: int = 0,
        name: str = "synthetic",
    ) -> None:
        if operations < 1:
            raise ValueError("operations must be >= 1")
        if live_limit < 1:
            raise ValueError("live_limit must be >= 1")
        self.operations = operations
        self.live_limit = live_limit
        self.sizes = tuple(sizes)
        self.seed = seed
        self.name = name

    def events(self) -> Iterator[AllocationEvent]:
        rng = random.Random(self.seed)
        live: list[int] = []
        next_id = 0
        clock = 0
        for _ in range(self.operations):
            at_limit = len(live) >= self.live_limit
            if live and (at_limit or rng.random() < 0.5):
                # Swap-pop a random live allocation: O(1), order-free.
                index = rng.randrange(len(live))
                request_id = live[index]
                live[index] = live[-1]
                live.pop()
                yield free(request_id, clock)
            else:
                size = rng.choice(self.sizes)
                yield alloc(next_id, size, clock)
                live.append(next_id)
                next_id += 1
            clock += 1
        for request_id in live:
            yield free(request_id, clock)
            clock += 1
