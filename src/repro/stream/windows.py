"""Windowed (phase) Pareto analysis over a segmented replay.

Server traffic is not stationary: session churn, request bursts and
diurnal load curves mean the allocator configuration that wins the whole
trace can lose badly during individual phases.  This module cuts a trace
into windows (a fixed event count or a fixed timestamp span), replays
every configuration segment by segment with a
:class:`~repro.profiling.profiler.SegmentReplaySession`, and keeps one
:class:`~repro.core.pareto.IncrementalParetoFront` *per window* over the
per-window metric deltas — so a report can show not just the global front
but which configurations dominate each phase, and where the front shifts.

The cumulative totals of the windowed replay are byte-identical to the
one-shot batch evaluation path (``tests/test_stream.py`` asserts it), so
the :class:`~repro.core.results.ResultDatabase` this analysis produces is
the same artefact ``dmexplore explore`` would write, with a ``windows``
section attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.pareto import IncrementalParetoFront
from ..core.results import ExplorationRecord, ResultDatabase
from ..profiling.compiled import CompiledTrace, SegmentedTraceCompiler
from ..profiling.events import AllocationEvent
from ..profiling.metrics import MetricSet, metric_keys
from ..profiling.profiler import Profiler, ProfilerOptions, SegmentReplaySession


@dataclass(frozen=True)
class WindowSpec:
    """How to cut a trace into analysis windows.

    Exactly one of ``events`` (window = that many consecutive events) and
    ``time`` (window = that many timestamp ticks: events whose timestamp
    falls in ``[k*time, (k+1)*time)``) must be set.  Time windows split on
    bucket *increase* only, so a trace with non-monotonic timestamps still
    yields contiguous event runs; empty buckets produce no window.
    """

    events: int | None = None
    time: int | None = None

    def __post_init__(self) -> None:
        if (self.events is None) == (self.time is None):
            raise ValueError("set exactly one of events= and time=")
        size = self.events if self.events is not None else self.time
        if size < 1:
            raise ValueError("window size must be >= 1")

    @property
    def mode(self) -> str:
        return "events" if self.events is not None else "time"

    @property
    def size(self) -> int:
        return self.events if self.events is not None else self.time

    def split(self, events: Iterable[AllocationEvent]) -> list[list[AllocationEvent]]:
        """Cut an event sequence into the window chunks this spec defines."""
        chunks: list[list[AllocationEvent]] = []
        current: list[AllocationEvent] = []
        if self.events is not None:
            for event in events:
                current.append(event)
                if len(current) >= self.events:
                    chunks.append(current)
                    current = []
        else:
            bucket: int | None = None
            for event in events:
                position = event.timestamp // self.time
                if bucket is None:
                    bucket = position
                elif position > bucket:
                    chunks.append(current)
                    current = []
                    bucket = position
                current.append(event)
        if current:
            chunks.append(current)
        return chunks

    def as_dict(self) -> dict:
        return {"mode": self.mode, "size": self.size}


class WindowedAnalysis:
    """Per-window Pareto fronts accumulated while configurations stream in.

    One :class:`IncrementalParetoFront` per window, fed the per-window
    metric deltas of every configuration offered to :meth:`offer`.  The
    analysis never stores per-configuration window metrics outside the
    fronts, so memory is O(windows x front size), not O(windows x
    configurations).
    """

    def __init__(
        self,
        spec: WindowSpec,
        boundaries: list[dict],
        metrics: list[str] | None = None,
    ) -> None:
        self.spec = spec
        #: Per-window descriptors: index, event count, end timestamp.
        self.boundaries = boundaries
        self.metrics = list(metrics) if metrics else metric_keys()
        self.fronts: list[IncrementalParetoFront] = [
            IncrementalParetoFront() for _ in boundaries
        ]
        self.configurations = 0

    def __len__(self) -> int:
        return len(self.boundaries)

    def offer(self, label: str, window_metrics: list[MetricSet]) -> None:
        """Offer one configuration's per-window metrics to every front."""
        if len(window_metrics) != len(self.fronts):
            raise ValueError(
                f"expected {len(self.fronts)} window metric sets, "
                f"got {len(window_metrics)}"
            )
        self.configurations += 1
        for front, metric_set in zip(self.fronts, window_metrics):
            front.add(
                {"label": label, "metrics": metric_set},
                metric_set.values(self.metrics),
            )

    def front_labels(self, index: int) -> list[str]:
        return [member["label"] for member in self.fronts[index]]

    def shifts(self) -> list[int]:
        """Window indices whose front membership differs from the previous.

        The phase-change signal: a shift at window ``k`` means the set of
        configurations that are optimal *within* window ``k`` is not the
        set that was optimal within window ``k-1``.
        """
        shifted = []
        for index in range(1, len(self.fronts)):
            if set(self.front_labels(index)) != set(self.front_labels(index - 1)):
                shifted.append(index)
        return shifted

    def status_line(self) -> str:
        """One-line live summary (consumed by the dashboard sink)."""
        if not self.fronts:
            return f"windows   : none ({self.spec.mode} {self.spec.size})"
        last = len(self.fronts) - 1
        sizes = [len(front) for front in self.fronts]
        return (
            f"windows   : {len(self.fronts)} x {self.spec.size} {self.spec.mode}"
            f" | front[{last}] {sizes[last]}"
            f" | fronts {min(sizes)}..{max(sizes)}"
        )

    def as_dict(self) -> dict:
        """The ``windows`` artefact section (JSON-serialisable)."""
        shifted = set(self.shifts())
        windows = []
        for boundary, front in zip(self.boundaries, self.fronts):
            entry = dict(boundary)
            entry["front_size"] = len(front)
            entry["shifted"] = boundary["index"] in shifted
            entry["front"] = [
                {"label": member["label"], "metrics": member["metrics"].as_dict()}
                for member in front
            ]
            windows.append(entry)
        return {
            "mode": self.spec.mode,
            "size": self.spec.size,
            "count": len(self.fronts),
            "metrics": list(self.metrics),
            "configurations": self.configurations,
            "shifts": sorted(shifted),
            "windows": windows,
        }


def compile_windows(
    trace, spec: WindowSpec
) -> tuple[list[CompiledTrace], list[dict], str]:
    """Compile a trace into window-aligned segments, once.

    Segments are allocator-independent, so one compilation is shared by
    every configuration of the sweep.  Returns the segments, the window
    boundary descriptors, and the stream fingerprint (equal to
    ``trace.fingerprint()``).
    """
    chunks = spec.split(trace)
    compiler = SegmentedTraceCompiler(trace.name)
    segments = [compiler.feed(chunk) for chunk in chunks]
    boundaries = [
        {
            "index": index,
            "events": len(chunk),
            "end_timestamp": chunk[-1].timestamp,
        }
        for index, chunk in enumerate(chunks)
    ]
    return segments, boundaries, compiler.fingerprint()


def _window_deltas(snapshots: list[MetricSet]) -> list[MetricSet]:
    """Differentiate cumulative boundary totals into per-window metrics.

    Accesses, energy and cycles are flow quantities (the window's delta);
    footprint is a running peak, so each window reports the cumulative
    peak at its end — the memory a platform must actually provision to
    survive through that window.
    """
    deltas = []
    previous = MetricSet()
    for totals in snapshots:
        deltas.append(
            MetricSet(
                accesses=totals.accesses - previous.accesses,
                footprint=totals.footprint,
                energy_nj=totals.energy_nj - previous.energy_nj,
                cycles=totals.cycles - previous.cycles,
            )
        )
        previous = totals
    return deltas


def windowed_exploration(
    engine,
    spec: WindowSpec,
    metrics: list[str] | None = None,
    sink=None,
) -> tuple[ResultDatabase, WindowedAnalysis]:
    """Run a windowed exploration over an engine's whole enumeration.

    Every enumerated configuration is replayed segment by segment with a
    :class:`SegmentReplaySession`; cumulative snapshots at each window
    boundary are differentiated into per-window metrics and offered to the
    per-window fronts.  The returned database holds the *final* records —
    byte-identical to :meth:`ExplorationEngine.explore` — with the
    analysis attached as its ``windows`` section; when the engine has a
    result store, each window's record is persisted under the
    window-qualified fingerprint ``<fingerprint>:w<index>`` (and the final
    record under the plain fingerprint, warming ordinary explorations).
    """
    trace = engine.trace
    segments, boundaries, fingerprint = compile_windows(trace, spec)
    assert fingerprint == trace.fingerprint()
    metrics = list(metrics) if metrics else list(engine.settings.metrics)
    analysis = WindowedAnalysis(spec, boundaries, metrics=metrics)
    if sink is not None and hasattr(sink, "attach_windows"):
        sink.attach_windows(analysis)
    database = ResultDatabase(name=f"{trace.name}-windowed")
    database.windows = {}
    profiler_options = ProfilerOptions(
        payload_access_factor=engine.settings.payload_access_factor
    )
    store = engine.store
    for index, point in engine.enumerate_points():
        label = f"{engine.settings.label_prefix}{index:05d}"
        configuration = engine.configuration_for(point, label=label)
        built = engine.factory.build(configuration)
        profiler = Profiler(
            built.mapping, energy_model=engine.energy_model, options=profiler_options
        )
        session = SegmentReplaySession(profiler, built.allocator, name=trace.name)
        snapshots = []
        for segment in segments:
            session.replay_segment(segment)
            snapshots.append(session.snapshot(configuration.configuration_id).totals)
        profile = session.finish(configuration.configuration_id)
        window_metrics = _window_deltas(snapshots)
        analysis.offer(configuration.configuration_id, window_metrics)
        record = ExplorationRecord(
            configuration=configuration,
            metrics=profile.totals,
            trace_name=trace.name,
            oom_failures=session.oom_failures,
        )
        database.add(record)
        if sink is not None:
            sink.accept(record)
        if store is not None:
            store.put(engine.fingerprint, point, record, spec_hash=engine.spec_hash)
            for window_index, metric_set in enumerate(window_metrics):
                window_record = ExplorationRecord(
                    configuration=configuration,
                    metrics=metric_set,
                    trace_name=f"{trace.name}",
                    oom_failures=session.oom_failures,
                )
                store.put(
                    f"{engine.fingerprint}:w{window_index}",
                    point,
                    window_record,
                    spec_hash=engine.spec_hash,
                )
    engine._attach_provenance(database)
    database.windows = analysis.as_dict()
    return database, analysis
