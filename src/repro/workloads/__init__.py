"""Workload models: the applications whose traces drive the exploration."""

from .base import LiveObject, TraceBuilder, Workload
from .easyport import (
    DEFAULT_CONTROL_SIZES,
    DEFAULT_FLOW_STATE_SIZES,
    DEFAULT_PACKET_SIZES,
    EasyportWorkload,
    easyport_reference_trace,
)
from .synthetic import (
    BurstyWorkload,
    FixedSizesWorkload,
    PhasedWorkload,
    UniformRandomWorkload,
)
from .server import (
    DiurnalWorkload,
    RequestBurstWorkload,
    SessionChurnWorkload,
)
from .traces import TraceFormatError, load_trace, round_trip_equal, save_trace
from .vtc import (
    BITSTREAM_SEGMENT_BYTES,
    STRIPE_BUFFER_BYTES,
    TREE_NODE_BYTES,
    VTCWorkload,
    vtc_reference_trace,
)

__all__ = [
    "BITSTREAM_SEGMENT_BYTES",
    "BurstyWorkload",
    "DEFAULT_CONTROL_SIZES",
    "DEFAULT_FLOW_STATE_SIZES",
    "DEFAULT_PACKET_SIZES",
    "DiurnalWorkload",
    "EasyportWorkload",
    "FixedSizesWorkload",
    "LiveObject",
    "PhasedWorkload",
    "RequestBurstWorkload",
    "SessionChurnWorkload",
    "STRIPE_BUFFER_BYTES",
    "TREE_NODE_BYTES",
    "TraceBuilder",
    "TraceFormatError",
    "UniformRandomWorkload",
    "VTCWorkload",
    "Workload",
    "easyport_reference_trace",
    "load_trace",
    "round_trip_equal",
    "save_trace",
    "vtc_reference_trace",
]
