"""Workload interface.

A *workload* is a deterministic generator of allocation traces that stands
in for one of the paper's dynamic applications.  Workloads are seeded so the
exact same trace can be replayed against every configuration of an
exploration — the paper runs the same application binary per configuration;
we replay the same trace, which is the equivalent guarantee.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..profiling.events import alloc, free
from ..profiling.tracer import AllocationTrace


class Workload:
    """Base class for trace-producing application models."""

    #: Name used in reports and result databases.
    name = "workload"

    def generate(self, seed: int = 0) -> AllocationTrace:
        """Produce the allocation trace of one application run."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description of the modelled application."""
        return self.name


@dataclass
class LiveObject:
    """Bookkeeping entry for an object that has been allocated but not freed."""

    request_id: int
    size: int
    free_at: int
    tag: str = ""


class TraceBuilder:
    """Helper for writing workload generators.

    Keeps the request-id counter, the logical clock and the set of live
    objects, and guarantees the produced trace is well-formed (every
    allocation is eventually freed unless explicitly leaked, frees never
    precede their allocation, timestamps are monotone).
    """

    def __init__(self, name: str, seed: int = 0) -> None:
        self.trace = AllocationTrace(name=name)
        self.rng = random.Random(seed)
        self._next_id = 0
        self._clock = 0
        self._pending: list[LiveObject] = []

    @property
    def clock(self) -> int:
        """Current logical time (timestamp assigned to the next event)."""
        return self._clock

    def tick(self, amount: int = 1) -> None:
        """Advance the logical clock."""
        if amount < 0:
            raise ValueError("clock cannot go backwards")
        self._clock += amount

    def allocate(self, size: int, lifetime: int | None = None, tag: str = "") -> int:
        """Emit an ALLOC event; returns the request id.

        ``lifetime`` (in clock ticks) schedules an automatic free emitted by
        :meth:`flush_due`; ``None`` means the caller frees it explicitly
        through :meth:`release`.
        """
        request_id = self._next_id
        self._next_id += 1
        self.trace.append(alloc(request_id, size, timestamp=self._clock, tag=tag))
        if lifetime is not None:
            if lifetime < 0:
                raise ValueError("lifetime must be non-negative")
            self._pending.append(
                LiveObject(request_id, size, free_at=self._clock + lifetime, tag=tag)
            )
        return request_id

    def release(self, request_id: int, tag: str = "") -> None:
        """Emit a FREE event for an explicitly managed object."""
        self.trace.append(free(request_id, timestamp=self._clock, tag=tag))

    def flush_due(self) -> int:
        """Free every scheduled object whose lifetime has expired.

        Returns the number of objects freed.  Objects are freed in
        expiration order to keep the trace deterministic.
        """
        due = [obj for obj in self._pending if obj.free_at <= self._clock]
        if not due:
            return 0
        due.sort(key=lambda obj: (obj.free_at, obj.request_id))
        for obj in due:
            self.trace.append(free(obj.request_id, timestamp=self._clock, tag=obj.tag))
        self._pending = [obj for obj in self._pending if obj.free_at > self._clock]
        return len(due)

    def flush_all(self) -> int:
        """Free every still-live scheduled object (end-of-run cleanup)."""
        remaining = sorted(self._pending, key=lambda obj: (obj.free_at, obj.request_id))
        for obj in remaining:
            self.trace.append(free(obj.request_id, timestamp=self._clock, tag=obj.tag))
        count = len(remaining)
        self._pending = []
        return count

    def finish(self, validate: bool = True) -> AllocationTrace:
        """Flush pending frees, optionally validate, and return the trace."""
        self.flush_all()
        if validate:
            self.trace.validate()
        return self.trace
