"""Easyport-like wireless/DSL port-aggregation workload.

The paper's first case study is the Infineon *Easyport* application — a
multi-port network processing application (xDSL/wireless port aggregation)
that allocates and frees packet descriptors, payload buffers and per-flow
state at line rate.  The real source is proprietary; this module generates
an allocation trace with the characteristics the paper and its companion
work (Atienza et al., DATE'04) describe for that class of applications:

* the vast majority of allocations come from a handful of *hot block sizes*
  (small descriptors and a few canonical packet payload sizes, including
  the paper's running-example 74-byte blocks and 1500-byte frames),
* lifetimes are short (a packet is processed and its buffers released),
* arrivals are bursty (traffic bursts per port),
* a small number of long-lived per-flow/per-port state objects exist.

The resulting trace is what the exploration engine replays per
configuration; dedicated pools for the hot sizes mapped to the scratchpad
should dominate the Pareto front, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..profiling.tracer import AllocationTrace
from .base import TraceBuilder, Workload

#: Canonical Easyport hot block sizes (bytes) and their relative frequency.
#: 28/44/74 bytes are descriptor/header structures (the 74-byte block is the
#: paper's running example), 492 and 1500 bytes are ATM-AAL5 and Ethernet
#: MTU payload buffers.
DEFAULT_PACKET_SIZES: dict[int, float] = {
    28: 0.26,
    44: 0.22,
    74: 0.30,
    492: 0.12,
    1500: 0.10,
}

#: Sizes of long-lived per-flow/per-port state structures.
DEFAULT_FLOW_STATE_SIZES: list[int] = [220, 356, 512]

#: Sizes of occasional management/control-plane messages.
DEFAULT_CONTROL_SIZES: list[int] = [96, 160, 304, 2048]


@dataclass
class EasyportWorkload(Workload):
    """Synthetic Easyport-style packet processing trace generator.

    Parameters
    ----------
    packets:
        Number of packets processed over the run.
    ports:
        Number of aggregated ports; bursts are generated per port.
    burst_length:
        Mean packets per traffic burst.
    packet_sizes:
        Mapping of hot payload/descriptor sizes to their probability.
    flows:
        Number of long-lived flow-state objects allocated at start-up.
    control_ratio:
        Fraction of packets that additionally trigger a control-plane
        allocation of irregular size.
    packet_lifetime:
        Mean number of packet arrivals a packet's buffers stay live for
        (processing pipeline depth).
    """

    packets: int = 6000
    ports: int = 4
    burst_length: int = 24
    packet_sizes: dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_PACKET_SIZES)
    )
    flows: int = 32
    control_ratio: float = 0.02
    packet_lifetime: int = 12
    name: str = "easyport"

    def __post_init__(self) -> None:
        if self.packets <= 0:
            raise ValueError("packets must be positive")
        if self.ports <= 0:
            raise ValueError("ports must be positive")
        if not self.packet_sizes:
            raise ValueError("packet_sizes must not be empty")
        if not 0 <= self.control_ratio <= 1:
            raise ValueError("control_ratio must be in [0, 1]")

    # -- generation -----------------------------------------------------------

    def generate(self, seed: int = 0) -> AllocationTrace:
        """Produce one run: long-lived per-flow state allocated at start-up,
        then bursty per-packet descriptor/payload/control allocations until
        ``packets`` packets have been emitted, then flow-state tear-down."""
        builder = TraceBuilder(self.name, seed)
        rng = builder.rng
        sizes = list(self.packet_sizes)
        weights = [self.packet_sizes[size] for size in sizes]

        # Long-lived per-flow state allocated during start-up; freed at the end.
        flow_ids = []
        for flow in range(self.flows):
            size = rng.choice(DEFAULT_FLOW_STATE_SIZES)
            flow_ids.append(builder.allocate(size, tag="flow_state"))
            builder.tick()

        packets_emitted = 0
        while packets_emitted < self.packets:
            # One traffic burst on a randomly chosen port.
            burst = max(1, int(rng.expovariate(1.0 / self.burst_length)))
            burst = min(burst, self.packets - packets_emitted)
            for _ in range(burst):
                payload_size = rng.choices(sizes, weights=weights)[0]
                lifetime = max(1, int(rng.expovariate(1.0 / self.packet_lifetime)))
                # Every packet allocates a descriptor and a payload buffer.
                builder.allocate(payload_size, lifetime=lifetime, tag="packet")
                descriptor_size = 28 if payload_size >= 128 else payload_size
                builder.allocate(descriptor_size, lifetime=lifetime, tag="descriptor")
                if rng.random() < self.control_ratio:
                    control_size = rng.choice(DEFAULT_CONTROL_SIZES)
                    builder.allocate(
                        control_size,
                        lifetime=lifetime * 4,
                        tag="control",
                    )
                builder.tick()
                builder.flush_due()
                packets_emitted += 1
            # Inter-burst gap lets the pipeline drain.
            builder.tick(max(1, self.burst_length // 2))
            builder.flush_due()

        # Tear-down: release flow state.
        for request_id in flow_ids:
            builder.release(request_id, tag="flow_state")
        return builder.finish()

    # -- introspection -----------------------------------------------------------

    def hot_sizes(self) -> list[int]:
        """The hot block sizes, most frequent first (dedicated-pool candidates)."""
        ordered = sorted(self.packet_sizes.items(), key=lambda item: -item[1])
        return [size for size, _weight in ordered]

    def describe(self) -> str:
        """One-line description: packet/port counts and the hot size set."""
        return (
            f"Easyport-style port aggregation: {self.packets} packets over "
            f"{self.ports} ports, hot sizes {self.hot_sizes()}"
        )


def easyport_reference_trace(seed: int = 2006, packets: int = 6000) -> AllocationTrace:
    """The canonical Easyport trace used by examples and benchmarks.

    Fixed seed so every benchmark, example and test sees the same trace.
    """
    return EasyportWorkload(packets=packets).generate(seed=seed)
