"""Server-traffic workload generators.

The paper's case studies are embedded applications; modern allocator
exploration (e.g. block allocation in LLM inference servers) faces the
same configuration problem under *server* traffic: sessions arriving and
departing with long-lived state, requests bursting short-lived buffers,
and load that swings over the day.  These three generators model those
patterns deterministically so the same exploration flow — and the
windowed phase analysis of :mod:`repro.stream.windows`, which is what
makes their non-stationarity visible — applies unchanged.

All three are seeded: identical seeds produce identical traces, so every
configuration of a sweep replays the exact same traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..profiling.tracer import AllocationTrace
from .base import TraceBuilder, Workload


@dataclass
class SessionChurnWorkload(Workload):
    """Session arrival/departure churn with per-session state blocks.

    Each arriving session allocates a long-lived state block (connection
    context) plus a handful of short-lived setup buffers; sessions depart
    after an exponentially distributed dwell time, releasing their state.
    The live-session population wanders around ``target_sessions``,
    producing the slowly-shifting footprint floor typical of connection
    servers.
    """

    ticks: int = 1200
    target_sessions: int = 40
    session_state: int = 512
    setup_sizes: tuple[int, ...] = (64, 96, 160)
    mean_dwell: int = 200
    name: str = "session_churn"

    def generate(self, seed: int = 0) -> AllocationTrace:
        """One arrival-rate-balanced run of ``ticks`` server ticks."""
        builder = TraceBuilder(self.name, seed)
        rng = builder.rng
        sessions: list[int] = []  # live session-state request ids
        arrival_rate = self.target_sessions / self.mean_dwell
        for _ in range(self.ticks):
            # Arrivals: Bernoulli-thinned Poisson around the balance rate,
            # biased up when under target and down when over.
            pressure = 1.0 - len(sessions) / (2.0 * self.target_sessions)
            if rng.random() < arrival_rate * (1.0 + pressure):
                sessions.append(
                    builder.allocate(self.session_state, tag="session")
                )
                for size in self.setup_sizes:
                    builder.allocate(
                        size,
                        lifetime=rng.randint(1, 8),
                        tag="setup",
                    )
            # Departures: each live session leaves with prob 1/mean_dwell.
            if sessions and rng.random() < len(sessions) / self.mean_dwell:
                index = rng.randrange(len(sessions))
                request_id = sessions[index]
                sessions[index] = sessions[-1]
                sessions.pop()
                builder.release(request_id, tag="session")
            builder.tick()
            builder.flush_due()
        for request_id in sessions:
            builder.release(request_id, tag="session")
        return builder.finish()

    def describe(self) -> str:
        """One-line description: tick count and target session population."""
        return (
            f"{self.ticks} ticks of session churn around "
            f"{self.target_sessions} live sessions"
        )


@dataclass
class RequestBurstWorkload(Workload):
    """Request/response bursts of short-lived blocks over pooled sessions.

    Models the block-allocation pattern of a batching inference server:
    each request claims a chain of fixed-size blocks (grown in steps as
    the response streams out) and releases the whole chain on completion.
    Requests arrive in bursts of varying depth, so the footprint sawtooths
    the way a vLLM-style block pool does under bursty decode traffic.
    """

    bursts: int = 60
    max_batch: int = 12
    block_size: int = 256
    max_blocks: int = 8
    header_size: int = 48
    gap_ticks: int = 6
    name: str = "request_bursts"

    def generate(self, seed: int = 0) -> AllocationTrace:
        """Emit ``bursts`` request batches, each streamed block by block."""
        builder = TraceBuilder(self.name, seed)
        rng = builder.rng
        for _ in range(self.bursts):
            batch = rng.randint(1, self.max_batch)
            chains: list[list[int]] = []
            for _request in range(batch):
                chain = [builder.allocate(self.header_size, tag="request")]
                blocks = rng.randint(1, self.max_blocks)
                for _block in range(blocks):
                    chain.append(builder.allocate(self.block_size, tag="kvblock"))
                    builder.tick()
                chains.append(chain)
            # Responses complete in arrival order; each chain is released
            # newest block first (stack order, the pool-friendly pattern).
            for chain in chains:
                for request_id in reversed(chain):
                    builder.release(request_id, tag="kvblock")
                builder.tick()
            builder.tick(self.gap_ticks)
        return builder.finish()

    def describe(self) -> str:
        """One-line description: burst count, batch width and block size."""
        return (
            f"{self.bursts} request bursts (batch <= {self.max_batch}, "
            f"{self.block_size}-byte blocks)"
        )


@dataclass
class DiurnalWorkload(Workload):
    """Sinusoidal day/night load curve over a mixed allocation profile.

    The request rate follows one (or more) sine periods between
    ``min_rate`` and ``max_rate`` allocations per tick, with sizes drawn
    from a heavy-tailed mix.  Peak hours and troughs give the windowed
    analysis clearly distinct phases on a single trace.
    """

    ticks: int = 1440
    periods: int = 2
    min_rate: int = 1
    max_rate: int = 6
    sizes: tuple[int, ...] = (32, 64, 64, 128, 128, 256, 1024)
    mean_lifetime: int = 30
    name: str = "diurnal"

    def generate(self, seed: int = 0) -> AllocationTrace:
        """One run of ``ticks`` ticks over ``periods`` full load cycles."""
        builder = TraceBuilder(self.name, seed)
        rng = builder.rng
        span = self.max_rate - self.min_rate
        for tick in range(self.ticks):
            phase = 2.0 * math.pi * self.periods * tick / self.ticks
            rate = self.min_rate + span * 0.5 * (1.0 - math.cos(phase))
            count = int(rate) + (1 if rng.random() < rate - int(rate) else 0)
            for _ in range(count):
                size = rng.choice(self.sizes)
                lifetime = max(
                    1, int(rng.expovariate(1.0 / self.mean_lifetime))
                )
                builder.allocate(size, lifetime=lifetime, tag="diurnal")
            builder.tick()
            builder.flush_due()
        return builder.finish()

    def describe(self) -> str:
        """One-line description: tick count and the load-rate swing."""
        return (
            f"{self.ticks} ticks of diurnal load, "
            f"{self.min_rate}-{self.max_rate} allocations/tick over "
            f"{self.periods} period(s)"
        )
