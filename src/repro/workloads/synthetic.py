"""Generic synthetic workload generators.

These are not tied to either case study; they are used by unit tests,
property tests and the ablation benchmarks to stress specific allocator
behaviours: uniform random sizes (fragmentation stress), a fixed small set
of sizes (dedicated-pool friendly), bursty arrivals (footprint peaks) and
phased behaviour (lifetime clustering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..profiling.tracer import AllocationTrace
from .base import TraceBuilder, Workload


@dataclass
class UniformRandomWorkload(Workload):
    """Uncorrelated allocations with uniformly random sizes and lifetimes."""

    operations: int = 2000
    min_size: int = 8
    max_size: int = 2048
    min_lifetime: int = 1
    max_lifetime: int = 200
    name: str = "uniform_random"

    def generate(self, seed: int = 0) -> AllocationTrace:
        """Produce ``operations`` allocations with i.i.d. sizes and lifetimes."""
        builder = TraceBuilder(self.name, seed)
        for _ in range(self.operations):
            size = builder.rng.randint(self.min_size, self.max_size)
            lifetime = builder.rng.randint(self.min_lifetime, self.max_lifetime)
            builder.allocate(size, lifetime=lifetime, tag="uniform")
            builder.tick()
            builder.flush_due()
        return builder.finish()

    def describe(self) -> str:
        """One-line description: operation count and size range."""
        return (
            f"{self.operations} uniform allocations of "
            f"{self.min_size}-{self.max_size} bytes"
        )


@dataclass
class FixedSizesWorkload(Workload):
    """Allocations drawn from a small fixed set of sizes with given weights.

    The friendliest possible workload for dedicated pools — useful to bound
    the best case of the exploration.
    """

    sizes: list[int] = field(default_factory=lambda: [32, 64, 128])
    weights: list[float] | None = None
    operations: int = 2000
    mean_lifetime: int = 50
    name: str = "fixed_sizes"

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("at least one size is required")
        if self.weights is not None and len(self.weights) != len(self.sizes):
            raise ValueError("weights must match sizes in length")

    def generate(self, seed: int = 0) -> AllocationTrace:
        """Draw every allocation size from ``sizes`` (weighted when given),
        with exponentially distributed lifetimes around ``mean_lifetime``."""
        builder = TraceBuilder(self.name, seed)
        for _ in range(self.operations):
            size = builder.rng.choices(self.sizes, weights=self.weights)[0]
            lifetime = max(1, int(builder.rng.expovariate(1.0 / self.mean_lifetime)))
            builder.allocate(size, lifetime=lifetime, tag="fixed")
            builder.tick()
            builder.flush_due()
        return builder.finish()

    def describe(self) -> str:
        """One-line description: operation count and the fixed size set."""
        return f"{self.operations} allocations from sizes {self.sizes}"


@dataclass
class BurstyWorkload(Workload):
    """Alternating bursts of allocations and quiet periods of frees.

    Produces the footprint peaks that distinguish releasable pools (slabs)
    from monotone ones, and that make coalescing pay off.
    """

    bursts: int = 20
    burst_length: int = 100
    quiet_length: int = 100
    min_size: int = 16
    max_size: int = 1024
    name: str = "bursty"

    def generate(self, seed: int = 0) -> AllocationTrace:
        """Emit ``bursts`` rounds of back-to-back allocations, each followed
        by a quiet period in which the whole burst is freed (in random
        order, to exercise free-list reordering)."""
        builder = TraceBuilder(self.name, seed)
        for _burst in range(self.bursts):
            live_ids = []
            for _ in range(self.burst_length):
                size = builder.rng.randint(self.min_size, self.max_size)
                live_ids.append(builder.allocate(size, tag="burst"))
                builder.tick()
            # Quiet period: everything allocated in the burst is released.
            builder.tick(self.quiet_length)
            builder.rng.shuffle(live_ids)
            for request_id in live_ids:
                builder.release(request_id, tag="burst")
        return builder.finish()

    def describe(self) -> str:
        """One-line description: burst count, burst length and size range."""
        return (
            f"{self.bursts} bursts of {self.burst_length} allocations "
            f"({self.min_size}-{self.max_size} bytes)"
        )


@dataclass
class PhasedWorkload(Workload):
    """Distinct phases, each with its own size mix and lifetimes.

    Models applications (like the VTC decoder) whose allocation behaviour
    changes between processing stages.
    """

    phases: list[dict] = field(
        default_factory=lambda: [
            {"operations": 500, "sizes": [24, 40], "mean_lifetime": 30},
            {"operations": 300, "sizes": [512, 1024], "mean_lifetime": 150},
            {"operations": 500, "sizes": [24, 64, 96], "mean_lifetime": 20},
        ]
    )
    name: str = "phased"

    def generate(self, seed: int = 0) -> AllocationTrace:
        """Run the configured phases back to back; a long quiet gap at every
        phase boundary lets the previous phase's objects die, recreating the
        lifetime clustering of stage-structured applications."""
        builder = TraceBuilder(self.name, seed)
        for phase_index, phase in enumerate(self.phases):
            operations = int(phase.get("operations", 100))
            sizes = list(phase.get("sizes", [64]))
            mean_lifetime = int(phase.get("mean_lifetime", 50))
            for _ in range(operations):
                size = builder.rng.choice(sizes)
                lifetime = max(1, int(builder.rng.expovariate(1.0 / mean_lifetime)))
                builder.allocate(size, lifetime=lifetime, tag=f"phase{phase_index}")
                builder.tick()
                builder.flush_due()
            # Phase boundary: everything from the phase dies.
            builder.tick(mean_lifetime * 2)
            builder.flush_due()
        return builder.finish()

    def describe(self) -> str:
        """One-line description: number of configured phases."""
        return f"{len(self.phases)}-phase workload"
