"""Trace file I/O.

Traces can be saved to and loaded from a compact line-oriented text format so
that expensive workload generation runs once and the exact same trace is fed
to every configuration (and can be shipped alongside experiment results).

Format: one event per line, ``A <id> <size> <timestamp> [tag]`` for
allocations and ``F <id> <timestamp> [tag]`` for frees; ``#`` starts a
comment.
"""

from __future__ import annotations

from pathlib import Path

from ..profiling.events import alloc, free
from ..profiling.tracer import AllocationTrace


class TraceFormatError(ValueError):
    """Raised when a trace file line cannot be parsed."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        self.line_number = line_number
        self.line = line
        super().__init__(f"line {line_number}: {reason}: {line!r}")


def save_trace(trace: AllocationTrace, path: str | Path) -> int:
    """Write ``trace`` to ``path``; returns the number of lines written."""
    lines = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# trace {trace.name}\n")
        lines += 1
        for event in trace:
            if event.is_alloc:
                record = f"A {event.request_id} {event.size} {event.timestamp}"
            else:
                record = f"F {event.request_id} {event.timestamp}"
            if event.tag:
                record += f" {event.tag}"
            handle.write(record + "\n")
            lines += 1
    return lines


def load_trace(path: str | Path, validate: bool = True) -> AllocationTrace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    trace = AllocationTrace(name=path.stem)
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("#"):
                comment = line[1:].strip()
                if comment.startswith("trace "):
                    trace.name = comment[len("trace "):].strip() or trace.name
                continue
            fields = line.split()
            kind = fields[0]
            try:
                if kind == "A":
                    if len(fields) < 4:
                        raise ValueError("ALLOC lines need id, size and timestamp")
                    request_id, size, timestamp = (
                        int(fields[1]),
                        int(fields[2]),
                        int(fields[3]),
                    )
                    tag = fields[4] if len(fields) > 4 else ""
                    trace.append(alloc(request_id, size, timestamp, tag))
                elif kind == "F":
                    if len(fields) < 3:
                        raise ValueError("FREE lines need id and timestamp")
                    request_id, timestamp = int(fields[1]), int(fields[2])
                    tag = fields[3] if len(fields) > 3 else ""
                    trace.append(free(request_id, timestamp, tag))
                else:
                    raise ValueError(f"unknown record type '{kind}'")
            except ValueError as exc:
                raise TraceFormatError(line_number, line, str(exc)) from exc
    if validate:
        trace.validate()
    return trace


def round_trip_equal(first: AllocationTrace, second: AllocationTrace) -> bool:
    """True when two traces contain the same events in the same order."""
    if len(first) != len(second):
        return False
    for left, right in zip(first, second):
        if (
            left.kind != right.kind
            or left.request_id != right.request_id
            or left.size != right.size
            or left.timestamp != right.timestamp
            or left.tag != right.tag
        ):
            return False
    return True
